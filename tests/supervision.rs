//! Property tests for the campaign supervision policy: the backoff
//! schedule is a deterministic, cap-bounded function of its inputs, and a
//! tripped circuit breaker produces exactly one `Trip` event plus one
//! `Shed` record (and matching `Shed` event) per shed cell — never a
//! silent drop.

use critics::core::campaign::{
    self, CampaignSpec, CellStatus, PlannedFault, Scheme, SupervisionPolicy,
};
use critics::core::design::DesignPoint;
use critics::core::error::RunError;
use critics::obs::Telemetry;
use critics::workloads::suite::Suite;
use critics::workloads::{AppSpec, Fault};
use proptest::prelude::*;

fn policy(base: u64, cap: u64, seed: u64) -> SupervisionPolicy {
    SupervisionPolicy {
        backoff_base_millis: base,
        backoff_cap_millis: cap,
        backoff_seed: seed,
        ..SupervisionPolicy::default()
    }
}

proptest! {
    // Pure-function property: cheap, so sweep widely.
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The backoff schedule is bit-deterministic per
    /// `(seed, app, scheme)`, every delay (jitter included) stays at or
    /// under the cap, and delays never undershoot half the nominal
    /// exponential step — the jitter window is `[delay/2, delay]`.
    #[test]
    fn backoff_schedule_is_deterministic_and_cap_bounded(
        base in 1u64..=1_000,
        cap in 1u64..=5_000,
        seed in any::<u64>(),
        retries in 0u32..=8,
        app in prop::sample::select(vec!["Acrobat", "Angrybirds", "Chrome", "x"]),
        scheme in prop::sample::select(vec!["critic", "opp16", "hoist", "baseline"]),
    ) {
        let policy = policy(base, cap, seed);
        let first = policy.backoff_schedule(app, scheme, retries);
        let second = policy.backoff_schedule(app, scheme, retries);
        prop_assert_eq!(&first, &second, "same inputs, same schedule");
        prop_assert_eq!(first.len(), retries as usize);
        for (k, &delay) in first.iter().enumerate() {
            let nominal = base.saturating_mul(1u64 << k.min(20)).min(cap);
            prop_assert!(delay <= cap, "retry {k}: {delay} > cap {cap}");
            prop_assert!(
                delay >= nominal / 2,
                "retry {k}: {delay} under jitter floor {}",
                nominal / 2
            );
        }
        // Draws happen in retry order, so a shorter schedule is a strict
        // prefix of a longer one — retrying further never reshuffles the
        // delays already served.
        let longer = policy.backoff_schedule(app, scheme, retries + 2);
        prop_assert_eq!(&first[..], &longer[..retries as usize]);
    }

    /// Different jitter seeds are actually different policies: across a
    /// spread of seeds at least one schedule differs (the jitter is not a
    /// constant function of the nominal delay).
    #[test]
    fn backoff_jitter_depends_on_the_seed(base in 3u64..=1_000) {
        let cap = base * 64;
        let schedules: Vec<_> = (0u64..16)
            .map(|seed| policy(base, cap, seed).backoff_schedule("app", "scheme", 4))
            .collect();
        prop_assert!(
            schedules.iter().any(|s| s != &schedules[0]),
            "16 seeds, identical schedules: {:?}",
            schedules[0]
        );
    }
}

fn breaker_spec(fault_seed: u64, trace_len: usize) -> (CampaignSpec, String) {
    let apps: Vec<AppSpec> = Suite::Mobile.apps().into_iter().take(2).collect();
    let schemes = vec![
        Scheme::new("critic", DesignPoint::critic()),
        Scheme::new("opp16", DesignPoint::opp16()),
        Scheme::new("hoist", DesignPoint::hoist()),
        Scheme::new("ideal", DesignPoint::critic_ideal()),
    ];
    let victim = apps[0].name.clone();
    let mut spec = CampaignSpec::new(apps, schemes, trace_len);
    spec.workers = 1;
    spec.telemetry = Telemetry::enabled();
    spec.supervision.breaker_threshold = 2;
    for scheme in ["critic", "opp16", "hoist", "ideal"] {
        spec.faults.push(PlannedFault {
            app: victim.clone(),
            scheme: scheme.into(),
            fault: Fault::DanglingTerminator,
            seed: fault_seed,
        });
    }
    (spec, victim)
}

proptest! {
    // Each case runs an eight-cell campaign; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For any fault seed and trace length, sabotaging every scheme of one
    /// app trips that app's breaker exactly once; the next submission runs
    /// as the half-open probe (fails, silently re-opens), the one after
    /// that sheds (one `Shed` record *and* one `Shed` event each), and the
    /// healthy app is untouched.
    #[test]
    fn tripped_breaker_emits_one_trip_and_one_shed_per_shed_cell(
        fault_seed in 0u64..=1_000,
        trace_len in 2_000usize..6_000,
    ) {
        let (spec, victim) = breaker_spec(fault_seed, trace_len);
        let summary = campaign::run_campaign(&spec).expect("campaign runs");
        prop_assert_eq!(summary.records.len(), 8, "every cell accounted");

        let failed = summary
            .records
            .iter()
            .filter(|r| r.status == CellStatus::Failed)
            .count();
        prop_assert_eq!(
            failed,
            3,
            "threshold failures precede the trip, plus the failed probe"
        );

        let shed = summary.shed();
        prop_assert_eq!(shed.len(), 1, "{}", summary.render());
        for record in &shed {
            prop_assert_eq!(&record.app, &victim);
            prop_assert_eq!(record.attempts, 0, "shed cells never run");
            prop_assert!(
                matches!(&record.error, Some(RunError::Shed(msg)) if msg.contains("breaker")),
                "shed reason must name the breaker: {:?}",
                record.error
            );
        }
        let healthy_ok = summary
            .records
            .iter()
            .filter(|r| r.app != victim && r.status == CellStatus::Ok)
            .count();
        prop_assert_eq!(healthy_ok, 4, "{}", summary.render());

        let aggregate = summary.telemetry.as_ref().expect("telemetry aggregate");
        prop_assert_eq!(aggregate.supervision().trips, 1, "exactly one trip");
        prop_assert_eq!(
            aggregate.supervision().sheds,
            shed.len() as u64,
            "one Shed event per shed record"
        );
        prop_assert_eq!(
            aggregate.service().probes,
            1,
            "the cell after the trip is the half-open probe"
        );
    }
}
