//! Property-based tests (proptest) on the core data structures and
//! invariants: ISA encode/decode round trips, cache behaviour, chain
//! extraction, and compiler semantics preservation, across arbitrary
//! inputs and generator seeds.

use critics::isa::{encode, Cond, Insn, Opcode, Reg, Width};
use critics::mem::{Cache, CacheConfig};
use critics::profiler::{Profiler, ProfilerConfig};
use critics::workloads::{ExecutionPath, GenParams, ProgramGenerator, Trace};
use proptest::prelude::*;

fn arb_low_reg() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(|i| Reg::from_index(i).expect("low register"))
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..15).prop_map(|i| Reg::from_index(i).expect("register below pc"))
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn arb_alu_op() -> impl Strategy<Value = Opcode> {
    prop::sample::select(vec![
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Orr,
        Opcode::Eor,
        Opcode::Lsl,
        Opcode::Lsr,
    ])
}

proptest! {
    /// Every ARM-encodable ALU instruction decodes back to itself.
    #[test]
    fn arm32_alu_round_trips(
        op in arb_alu_op(),
        cond in arb_cond(),
        dst in arb_reg(),
        a in arb_reg(),
        b in arb_reg(),
    ) {
        let insn = Insn::alu(op, dst, &[a, b]).with_cond(cond);
        let encoded = encode::encode(&insn).expect("alu reg form encodes");
        let decoded = match encoded {
            encode::Encoded::Word(w) => encode::decode_arm32(w).expect("decodes"),
            encode::Encoded::Half(_) => unreachable!("arm32 width"),
        };
        prop_assert_eq!(decoded, insn);
    }

    /// ARM immediates round-trip across the full 9-bit signed field.
    #[test]
    fn arm32_imm_round_trips(
        dst in arb_reg(),
        src in arb_reg(),
        imm in encode::ARM_IMM_MIN..=encode::ARM_IMM_MAX,
    ) {
        let insn = Insn::alu_imm(Opcode::Add, dst, src, imm);
        let encoded = encode::encode(&insn).expect("imm form encodes");
        let decoded = match encoded {
            encode::Encoded::Word(w) => encode::decode_arm32(w).expect("decodes"),
            encode::Encoded::Half(_) => unreachable!("arm32 width"),
        };
        prop_assert_eq!(decoded, insn);
    }

    /// Every Thumb-convertible instruction's 16-bit form decodes back to the
    /// same semantics.
    #[test]
    fn thumb_round_trips_when_convertible(
        op in arb_alu_op(),
        dst in arb_low_reg(),
        a in arb_low_reg(),
        b in arb_low_reg(),
    ) {
        let insn = Insn::alu(op, dst, &[a, b]);
        prop_assume!(insn.thumb_convertible().is_ok());
        let thumbed = insn.to_thumb().expect("checked");
        let encoded = encode::encode(&thumbed).expect("thumb encodes");
        prop_assert_eq!(encoded.bytes(), 2);
        let decoded = match encoded {
            encode::Encoded::Half(h) => encode::decode_thumb16(h).expect("decodes"),
            encode::Encoded::Word(_) => unreachable!("thumb width"),
        };
        prop_assert_eq!(decoded.to_arm32(), insn);
    }

    /// Conversion to Thumb and back never changes an instruction.
    #[test]
    fn thumb_conversion_is_lossless(
        op in arb_alu_op(),
        cond in arb_cond(),
        dst in arb_reg(),
        a in arb_reg(),
    ) {
        let insn = Insn::alu(op, dst, &[a]).with_cond(cond);
        if let Ok(thumbed) = insn.to_thumb() {
            prop_assert_eq!(thumbed.to_arm32(), insn);
            prop_assert_eq!(thumbed.fetch_bytes(), 2);
        }
    }

    /// A cache access immediately repeated always hits, whatever came first.
    #[test]
    fn cache_rereference_hits(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cache = Cache::new(CacheConfig::new(4096, 2, 64, 2));
        for &addr in &addrs {
            let _ = cache.access(addr);
            prop_assert!(cache.access(addr), "immediate re-reference must hit");
        }
    }

    /// Cache statistics stay consistent: misses never exceed accesses.
    #[test]
    fn cache_stats_are_consistent(addrs in prop::collection::vec(0u64..100_000, 1..300)) {
        let mut cache = Cache::new(CacheConfig::new(1024, 2, 64, 2));
        for &addr in &addrs {
            let _ = cache.access(addr);
        }
        let stats = cache.stats();
        prop_assert!(stats.misses <= stats.accesses);
        prop_assert_eq!(stats.accesses, addrs.len() as u64 * 2 / 2);
    }

    /// The cone fanout dominates the windowed direct fanout and respects
    /// its bound, for arbitrary generated workloads.
    #[test]
    fn cone_fanout_brackets(seed in 0u64..500) {
        let mut params = GenParams::mobile(seed);
        params.num_functions = 10;
        let program = ProgramGenerator::new(params).generate();
        let path = ExecutionPath::generate(&program, seed ^ 0xF0, 2_000);
        let trace = Trace::expand(&program, &path);
        let cone = trace.compute_cone_fanout(128);
        for &c in &cone {
            prop_assert!(c <= 128);
        }
    }

    /// Profiles select only dependence-linked, block-local chains, for
    /// arbitrary seeds.
    #[test]
    fn profile_chains_are_well_formed(seed in 0u64..200) {
        let mut params = GenParams::mobile(seed);
        params.num_functions = 16;
        let program = ProgramGenerator::new(params).generate();
        let path = ExecutionPath::generate(&program, seed ^ 0xAB, 8_000);
        let trace = Trace::expand(&program, &path);
        let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
        for chain in &profile.chains {
            let block = program.block(chain.block);
            let positions: Vec<usize> = chain
                .uids
                .iter()
                .map(|&uid| block.position_of(uid).expect("uid present"))
                .collect();
            prop_assert!(positions.windows(2).all(|w| w[0] < w[1]));
            for w in positions.windows(2) {
                let producer = block.insns[w[0]].insn;
                let consumer = block.insns[w[1]].insn;
                let dst = producer.dst().expect("members define values");
                prop_assert!(consumer.srcs().iter().any(|s| s == dst));
            }
        }
    }

    /// The CritIC pass preserves the per-uid memory-address streams for
    /// arbitrary seeds (data behaviour never changes).
    #[test]
    fn compiler_preserves_memory_streams(seed in 0u64..100) {
        let mut params = GenParams::mobile(seed);
        params.num_functions = 16;
        let program = ProgramGenerator::new(params).generate();
        let path = ExecutionPath::generate(&program, seed ^ 0xCD, 6_000);
        let trace = Trace::expand(&program, &path);
        let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
        let mut optimized = program.clone();
        critics::compiler::apply_critic_pass(
            &mut optimized,
            &profile,
            critics::compiler::CriticPassOptions::default(),
        );
        let rewritten = Trace::expand(&optimized, &path);
        let mems = |t: &Trace| -> Vec<(u32, u64)> {
            let mut v: Vec<(u32, u64)> =
                t.iter().filter_map(|e| e.mem_addr.map(|a| (e.uid.0, a))).collect();
            v.sort();
            v
        };
        prop_assert_eq!(mems(&trace), mems(&rewritten));
    }

    /// Thumb width halves fetch bytes, exactly.
    #[test]
    fn widths_have_exact_sizes(op in arb_alu_op(), dst in arb_low_reg(), a in arb_low_reg()) {
        let insn = Insn::alu(op, dst, &[a, Reg::R0]);
        prop_assert_eq!(insn.fetch_bytes(), 4);
        if let Ok(t) = insn.to_thumb() {
            prop_assert_eq!(t.fetch_bytes(), 2);
            prop_assert_eq!(t.width(), Width::Thumb16);
        }
    }
}
