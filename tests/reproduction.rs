//! Smoke-scale checks of the paper's headline directional claims. The full
//! numbers live in EXPERIMENTS.md; these tests pin the *orderings* the
//! reproduction preserves so regressions are caught.

use critics::core::design::DesignPoint;
use critics::core::experiments;
use critics::core::runner::Workbench;
use critics::workloads::suite::Suite;

const LEN: usize = 60_000;

#[test]
fn critic_beats_baseline_on_mobile_apps() {
    // Paper Fig. 10a: every app speeds up under CritIC.
    let mut wins = 0;
    for app in Suite::Mobile.apps().iter().take(4) {
        let mut bench = Workbench::new(app, LEN);
        let base = bench.run(&DesignPoint::baseline());
        let critic = bench.run(&DesignPoint::critic());
        if critic.sim.speedup_over(&base.sim) > 1.0 {
            wins += 1;
        }
    }
    assert!(
        wins >= 3,
        "CritIC should beat baseline on most apps, won {wins}/4"
    );
}

#[test]
fn prefetching_helps_spec_more_than_mobile() {
    // Paper Fig. 1a: critical-load prefetching is a SPEC optimization.
    let rows = experiments::fig1a(LEN, 2);
    let mobile = rows
        .iter()
        .find(|r| r.suite == "Android")
        .expect("android row");
    let float = rows
        .iter()
        .find(|r| r.suite == "SPEC.float")
        .expect("float row");
    assert!(
        float.prefetch_speedup > mobile.prefetch_speedup,
        "SPEC.float prefetch {:.4} should exceed Android {:.4}",
        float.prefetch_speedup,
        mobile.prefetch_speedup
    );
}

#[test]
fn mobile_has_the_most_critical_instructions() {
    // Paper Fig. 1a right axis. Averaged over three apps per suite: single
    // hot loops can give one SPEC program an idiosyncratic critical spike.
    let rows = experiments::fig1a(LEN, 3);
    let mobile = rows
        .iter()
        .find(|r| r.suite == "Android")
        .expect("android row");
    for row in &rows {
        if row.suite != "Android" {
            assert!(
                mobile.critical_frac > row.critical_frac,
                "Android {:.4} should exceed {} {:.4}",
                mobile.critical_frac,
                row.suite,
                row.critical_frac
            );
        }
    }
}

#[test]
fn mobile_criticals_are_fetch_side_spec_backend_side() {
    // Paper Fig. 3a: the bottleneck shifts from rear to front.
    let rows = experiments::fig3(LEN, 2);
    let mobile = rows
        .iter()
        .find(|r| r.suite == "Android")
        .expect("android row");
    let int = rows
        .iter()
        .find(|r| r.suite == "SPEC.int")
        .expect("int row");
    let fetch = |r: &experiments::Fig3Row| r.stage_shares[0] + r.stage_shares[1];
    let backend = |r: &experiments::Fig3Row| r.stage_shares[3] + r.stage_shares[4];
    assert!(
        fetch(mobile) > fetch(int),
        "mobile fetch share must exceed SPEC.int's"
    );
    assert!(
        backend(int) > backend(mobile),
        "SPEC.int backend share must exceed mobile's"
    );
}

#[test]
fn spec_chains_dwarf_mobile_chains() {
    // Paper Fig. 5a: SPEC ICs reach kilo-instruction lengths.
    let rows = experiments::fig5a(LEN, 2);
    let mobile = rows
        .iter()
        .find(|r| r.suite == "Android")
        .expect("android row");
    let float = rows
        .iter()
        .find(|r| r.suite == "SPEC.float")
        .expect("float row");
    assert!(float.shape.max_len > 3 * mobile.shape.max_len);
}

#[test]
fn critic_converts_fewer_instructions_than_opp16() {
    // Paper Fig. 13b.
    let rows = experiments::fig13(LEN, 2);
    let critic = rows.iter().find(|r| r.scheme == "CritIC").expect("critic");
    let opp = rows.iter().find(|r| r.scheme == "OPP16").expect("opp16");
    let compress = rows
        .iter()
        .find(|r| r.scheme == "Compress")
        .expect("compress");
    assert!(critic.converted_frac < opp.converted_frac);
    assert!(opp.converted_frac < compress.converted_frac);
}

#[test]
fn profiling_more_of_the_execution_never_hurts_much() {
    // Paper Fig. 12b: speedup grows with profile coverage.
    let rows = experiments::fig12b(LEN, 2, &[0.2, 1.0]);
    assert!(
        rows[1].speedup >= rows[0].speedup - 0.005,
        "full profiling {:.4} should be at least partial {:.4}",
        rows[1].speedup,
        rows[0].speedup
    );
}

#[test]
fn ideal_upper_bound_is_close_to_realistic_critic() {
    // Paper Sec. IV-E: the gap between CritIC and CritIC.Ideal is small.
    let rows = experiments::fig10(LEN, 3);
    for row in &rows {
        assert!(
            (row.critic_ideal - row.critic).abs() < 0.05,
            "{}: ideal {:.4} vs critic {:.4}",
            row.app,
            row.critic_ideal,
            row.critic
        );
    }
}
