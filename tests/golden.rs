//! Golden snapshot tests for the `figures` outputs: the Fig. 3
//! critical-instruction breakdown and the Fig. 13 headline speedup table,
//! rendered from fixed-seed runs and compared byte-for-byte against
//! committed fixtures.
//!
//! When a change legitimately moves the numbers, regenerate with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! and review the fixture diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use critics::core::experiments as exp;

const TRACE_LEN: usize = 10_000;
const APPS: usize = 2;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `rendered` against the committed fixture, printing the first
/// diverging line on mismatch; `UPDATE_GOLDEN=1` rewrites the fixture
/// instead.
fn assert_matches_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::write(&path, rendered).expect("write golden fixture");
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden to create it",
            path.display()
        )
    });
    if rendered == expected {
        return;
    }
    for (lineno, (got, want)) in rendered.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "{name}:{}: first diverging line (got vs golden); \
             rerun with UPDATE_GOLDEN=1 if the change is intended",
            lineno + 1
        );
    }
    panic!(
        "{name}: line count changed ({} vs {} lines); \
         rerun with UPDATE_GOLDEN=1 if the change is intended",
        rendered.lines().count(),
        expected.lines().count()
    );
}

/// Fig. 3a/3b: where critical instructions spend their time, per suite.
#[test]
fn fig3_breakdown_matches_golden() {
    let rows = exp::fig3(TRACE_LEN, APPS);
    let mut out = String::new();
    writeln!(out, "fig3 trace_len={TRACE_LEN} apps_per_suite={APPS}").unwrap();
    for r in &rows {
        writeln!(
            out,
            "{:10} fetch {:.4} decode {:.4} issue {:.4} execute {:.4} rob {:.4} | \
             stall_for_i {:.4} stall_for_rd {:.4} | latency {:.4}/{:.4}/{:.4}",
            r.suite,
            r.stage_shares[0],
            r.stage_shares[1],
            r.stage_shares[2],
            r.stage_shares[3],
            r.stage_shares[4],
            r.stall_for_i,
            r.stall_for_rd,
            r.latency_mix[0],
            r.latency_mix[1],
            r.latency_mix[2],
        )
        .unwrap();
    }
    assert_matches_golden("fig3.golden", &out);
}

/// Fig. 13: the headline speedup table — conversion schemes vs baseline.
#[test]
fn fig13_speedup_table_matches_golden() {
    let rows = exp::fig13(TRACE_LEN, APPS);
    let mut out = String::new();
    writeln!(out, "fig13 trace_len={TRACE_LEN} apps={APPS}").unwrap();
    for r in &rows {
        writeln!(
            out,
            "{:14} speedup {:.4} converted_frac {:.4}",
            r.scheme, r.speedup, r.converted_frac
        )
        .unwrap();
    }
    assert_matches_golden("fig13.golden", &out);
}

/// The cycle ledger itself is part of the snapshot: exact per-bucket
/// counts for the mobile suite's first apps, so any attribution change is
/// visible in review rather than silently reshaping Fig. 3.
#[test]
fn ledger_audit_matches_golden() {
    let rows = exp::ledger_audit(TRACE_LEN, APPS);
    let mut out = String::new();
    writeln!(out, "ledger trace_len={TRACE_LEN} apps_per_suite={APPS}").unwrap();
    for r in &rows {
        assert!(r.balanced, "{}: unbalanced ledger", r.app);
        writeln!(
            out,
            "{:12} {:10} cycles {} i {} br {} bp {} dec {} iss {} exe {} mem {} com {} idle {}",
            r.app,
            r.suite,
            r.cycles,
            r.ledger.fetch_stall_icache,
            r.ledger.fetch_stall_branch,
            r.ledger.fetch_stall_backpressure,
            r.ledger.decode,
            r.ledger.issue,
            r.ledger.execute,
            r.ledger.mem,
            r.ledger.commit,
            r.ledger.squash_idle,
        )
        .unwrap();
    }
    assert_matches_golden("ledger.golden", &out);
}
