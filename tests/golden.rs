//! Golden snapshot tests for the `figures` outputs: the Fig. 3
//! critical-instruction breakdown and the Fig. 13 headline speedup table,
//! rendered from fixed-seed runs and compared byte-for-byte against
//! committed fixtures.
//!
//! When a change legitimately moves the numbers, regenerate with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! and review the fixture diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use critics::core::experiments as exp;

const TRACE_LEN: usize = 10_000;
const APPS: usize = 2;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `rendered` against the committed fixture, printing the first
/// diverging line on mismatch; `UPDATE_GOLDEN=1` rewrites the fixture
/// instead.
fn assert_matches_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::write(&path, rendered).expect("write golden fixture");
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden to create it",
            path.display()
        )
    });
    if rendered == expected {
        return;
    }
    for (lineno, (got, want)) in rendered.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "{name}:{}: first diverging line (got vs golden); \
             rerun with UPDATE_GOLDEN=1 if the change is intended",
            lineno + 1
        );
    }
    panic!(
        "{name}: line count changed ({} vs {} lines); \
         rerun with UPDATE_GOLDEN=1 if the change is intended",
        rendered.lines().count(),
        expected.lines().count()
    );
}

/// Fig. 3a/3b: where critical instructions spend their time, per suite.
#[test]
fn fig3_breakdown_matches_golden() {
    let rows = exp::fig3(TRACE_LEN, APPS);
    let mut out = String::new();
    writeln!(out, "fig3 trace_len={TRACE_LEN} apps_per_suite={APPS}").unwrap();
    for r in &rows {
        writeln!(
            out,
            "{:10} fetch {:.4} decode {:.4} issue {:.4} execute {:.4} rob {:.4} | \
             stall_for_i {:.4} stall_for_rd {:.4} | latency {:.4}/{:.4}/{:.4}",
            r.suite,
            r.stage_shares[0],
            r.stage_shares[1],
            r.stage_shares[2],
            r.stage_shares[3],
            r.stage_shares[4],
            r.stall_for_i,
            r.stall_for_rd,
            r.latency_mix[0],
            r.latency_mix[1],
            r.latency_mix[2],
        )
        .unwrap();
    }
    assert_matches_golden("fig3.golden", &out);
}

/// Fig. 13: the headline speedup table — conversion schemes vs baseline.
#[test]
fn fig13_speedup_table_matches_golden() {
    let rows = exp::fig13(TRACE_LEN, APPS);
    let mut out = String::new();
    writeln!(out, "fig13 trace_len={TRACE_LEN} apps={APPS}").unwrap();
    for r in &rows {
        writeln!(
            out,
            "{:14} speedup {:.4} converted_frac {:.4}",
            r.scheme, r.speedup, r.converted_frac
        )
        .unwrap();
    }
    assert_matches_golden("fig13.golden", &out);
}

/// Per-(app, scheme) [`SimResult`] and [`CycleLedger`] snapshot for the
/// data-oriented/batched engine, with the scalar reference run in the loop
/// as an oracle: every row is asserted bit-identical across all four
/// paths (reference walk, data-oriented core, lockstep batch, and the
/// chunked streaming front-end) *before* it is rendered, so the fixture
/// can only ever record numbers all engines agree on — and any legitimate
/// change to the model shows up as an exact integer diff in review.
#[test]
fn sim_engine_snapshot_matches_golden() {
    use critics::core::{campaign::default_schemes, DesignPoint, Workbench};
    use critics::pipeline::{BatchSimulator, SimScratch, Simulator, StreamScratch};
    use critics::workloads::{StreamConfig, Suite, Trace, TraceStream};

    let apps: Vec<_> = Suite::Mobile.apps().into_iter().take(APPS).collect();
    let mut out = String::new();
    writeln!(out, "engines trace_len={TRACE_LEN} apps={APPS}").unwrap();
    for app in &apps {
        let mut wb = Workbench::try_new(app, TRACE_LEN).expect("workbench");
        let base_trace = wb.baseline_trace().clone();
        let base_fanout = wb.baseline_fanout().to_vec();
        let mut batch = BatchSimulator::new();
        let mut scratch = SimScratch::new();
        let mut stream_scratch = StreamScratch::new();
        // Baseline plus every default scheme, plus one hardware-only
        // point (2xFD) to pin the config-sensitive baseline replay.
        let mut points = vec![("baseline".to_string(), DesignPoint::baseline())];
        points.extend(default_schemes().into_iter().map(|s| (s.name, s.point)));
        points.push(("hw-2xfd".to_string(), DesignPoint::double_fd()));
        for (name, point) in points {
            let is_baseline = matches!(point.software, critics::core::Software::Baseline);
            let (program, trace, fanout) = if is_baseline {
                (wb.program.clone(), base_trace.clone(), base_fanout.clone())
            } else {
                let (program, _pass) = wb.try_variant(&point.software).expect("variant");
                let trace = Trace::expand(&program, &wb.path);
                let fanout = trace.compute_fanout();
                (program, trace, fanout)
            };
            let sim = Simulator::new(point.cpu_config(), point.mem_config());
            let (res_ref, led_ref) = sim.run_reference(&trace, &fanout);
            let (res_dec, led_dec) = sim.run_with_ledger(&trace, &fanout, &mut scratch);
            let (res_bat, led_bat) = if is_baseline {
                batch.run_base(&sim, &trace, &fanout)
            } else {
                batch.run_variant(&sim, &trace, &base_trace)
            };
            led_ref
                .check(res_ref.cycles)
                .expect("ledger partitions the run");
            assert_eq!(
                res_dec, res_ref,
                "{}/{name}: data-oriented diverges",
                app.name
            );
            assert_eq!(
                led_dec, led_ref,
                "{}/{name}: data-oriented ledger diverges",
                app.name
            );
            assert_eq!(res_bat, res_ref, "{}/{name}: batched diverges", app.name);
            assert_eq!(
                led_bat, led_ref,
                "{}/{name}: batched ledger diverges",
                app.name
            );
            // Fourth engine: the bounded-memory streaming front-end,
            // re-expanding (program, path) in 512-instruction windows.
            let mut stream = TraceStream::new(&program, &wb.path, StreamConfig::with_window(512));
            let (res_str, led_str, _) = sim.run_streamed(&mut stream, &mut stream_scratch);
            assert_eq!(res_str, res_ref, "{}/{name}: streamed diverges", app.name);
            assert_eq!(
                led_str, led_ref,
                "{}/{name}: streamed ledger diverges",
                app.name
            );
            writeln!(
                out,
                "{:12} {:14} cycles {} committed {} cdp {} thumb {} misp {} icm {} dcm {} | \
                 ledger i {} br {} bp {} dec {} iss {} exe {} mem {} com {} idle {}",
                app.name,
                name,
                res_bat.cycles,
                res_bat.committed,
                res_bat.cdp_switches,
                res_bat.thumb_fetched,
                res_bat.bpu.mispredicts,
                res_bat.mem.icache.misses,
                res_bat.mem.dcache.misses,
                led_bat.fetch_stall_icache,
                led_bat.fetch_stall_branch,
                led_bat.fetch_stall_backpressure,
                led_bat.decode,
                led_bat.issue,
                led_bat.execute,
                led_bat.mem,
                led_bat.commit,
                led_bat.squash_idle,
            )
            .unwrap();
        }
    }
    assert_matches_golden("engines.golden", &out);
}

/// Per-(app, scheme, window) snapshot of the streaming pipeline: each row
/// is rendered only after the streamed run was asserted bit-identical to
/// the materialized data-oriented run on both result and ledger, so the
/// fixture records window-invariance as reviewable fact — every window of
/// the same (app, scheme) must print the same numbers, and a windowing
/// bug shows up as an exact integer diff.
#[test]
fn stream_snapshot_matches_golden() {
    use critics::core::{campaign::default_schemes, DesignPoint, Workbench};
    use critics::pipeline::{SimScratch, Simulator, StreamScratch};
    use critics::workloads::{StreamConfig, Suite, Trace, TraceStream};

    const WINDOWS: [usize; 3] = [64, 4_096, 2 * TRACE_LEN];

    let apps: Vec<_> = Suite::Mobile.apps().into_iter().take(APPS).collect();
    let mut out = String::new();
    writeln!(out, "stream trace_len={TRACE_LEN} apps={APPS}").unwrap();
    let mut scratch = SimScratch::new();
    let mut stream_scratch = StreamScratch::new();
    for app in &apps {
        let mut wb = Workbench::try_new(app, TRACE_LEN).expect("workbench");
        let mut points = vec![("baseline".to_string(), DesignPoint::baseline())];
        points.extend(default_schemes().into_iter().map(|s| (s.name, s.point)));
        for (name, point) in points {
            let is_baseline = matches!(point.software, critics::core::Software::Baseline);
            let (program, trace, fanout) = if is_baseline {
                let trace = wb.baseline_trace().clone();
                let fanout = wb.baseline_fanout().to_vec();
                (wb.program.clone(), trace, fanout)
            } else {
                let (program, _pass) = wb.try_variant(&point.software).expect("variant");
                let trace = Trace::expand(&program, &wb.path);
                let fanout = trace.compute_fanout();
                (program, trace, fanout)
            };
            let sim = Simulator::new(point.cpu_config(), point.mem_config());
            let (mat, mat_ledger) = sim.run_with_ledger(&trace, &fanout, &mut scratch);
            mat_ledger
                .check(mat.cycles)
                .expect("ledger partitions the run");
            for window in WINDOWS {
                let mut stream =
                    TraceStream::new(&program, &wb.path, StreamConfig::with_window(window));
                let (streamed, streamed_ledger, stats) =
                    sim.run_streamed(&mut stream, &mut stream_scratch);
                assert_eq!(
                    streamed, mat,
                    "{}/{name} w={window}: streamed diverges",
                    app.name
                );
                assert_eq!(
                    streamed_ledger, mat_ledger,
                    "{}/{name} w={window}: streamed ledger diverges",
                    app.name
                );
                writeln!(
                    out,
                    "{:12} {:14} window {:5} cycles {} committed {} thumb {} misp {} \
                     icm {} dcm {} | i {} br {} bp {} dec {} iss {} exe {} mem {} com {} \
                     idle {}",
                    app.name,
                    name,
                    window,
                    streamed.cycles,
                    streamed.committed,
                    streamed.thumb_fetched,
                    streamed.bpu.mispredicts,
                    streamed.mem.icache.misses,
                    streamed.mem.dcache.misses,
                    streamed_ledger.fetch_stall_icache,
                    streamed_ledger.fetch_stall_branch,
                    streamed_ledger.fetch_stall_backpressure,
                    streamed_ledger.decode,
                    streamed_ledger.issue,
                    streamed_ledger.execute,
                    streamed_ledger.mem,
                    streamed_ledger.commit,
                    streamed_ledger.squash_idle,
                )
                .unwrap();
                assert_eq!(stats.ring_capacity.count_ones(), 1, "pow2 ring");
            }
        }
    }
    assert_matches_golden("stream.golden", &out);
}

/// The cycle ledger itself is part of the snapshot: exact per-bucket
/// counts for the mobile suite's first apps, so any attribution change is
/// visible in review rather than silently reshaping Fig. 3.
#[test]
fn ledger_audit_matches_golden() {
    let rows = exp::ledger_audit(TRACE_LEN, APPS);
    let mut out = String::new();
    writeln!(out, "ledger trace_len={TRACE_LEN} apps_per_suite={APPS}").unwrap();
    for r in &rows {
        assert!(r.balanced, "{}: unbalanced ledger", r.app);
        writeln!(
            out,
            "{:12} {:10} cycles {} i {} br {} bp {} dec {} iss {} exe {} mem {} com {} idle {}",
            r.app,
            r.suite,
            r.cycles,
            r.ledger.fetch_stall_icache,
            r.ledger.fetch_stall_branch,
            r.ledger.fetch_stall_backpressure,
            r.ledger.decode,
            r.ledger.issue,
            r.ledger.execute,
            r.ledger.mem,
            r.ledger.commit,
            r.ledger.squash_idle,
        )
        .unwrap();
    }
    assert_matches_golden("ledger.golden", &out);
}
