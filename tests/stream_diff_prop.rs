//! Differential property battery for the streaming trace pipeline.
//!
//! The chunked [`TraceStream`] producer, the sliding-window profiler fold,
//! and the streaming simulator front-end must be *bit-identical* to the
//! materialized path — same expanded entries, same direct and cone fanout,
//! same [`Profile`], same [`SimResult`] and [`CycleLedger`] — for any app,
//! core, memory system, and window size. These properties drive randomized
//! points through both paths and diff every output, including the ledger
//! partition invariant (`sum == cycles`). Degenerate geometries are pinned
//! explicitly: window = 1, window ≥ trace length, and a look-ahead sitting
//! exactly at the cone-window boundary.

use critics::mem::MemConfig;
use critics::pipeline::{CpuConfig, SimScratch, Simulator, StreamScratch};
use critics::profiler::{Profiler, ProfilerConfig};
use critics::workloads::suite::Suite;
use critics::workloads::{
    AppSpec, ExecutionPath, Program, StreamConfig, Trace, TraceStream, DEFAULT_LOOKAHEAD,
};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// A randomized core, mirroring the engine differential suite's ranges.
fn random_cpu(rng: &mut TestRng) -> CpuConfig {
    let mut cpu = CpuConfig::google_tablet();
    cpu.width = 2 + (rng.next_u64() % 3) as u32;
    cpu.fetch_width = (1 + (rng.next_u64() % 4) as u32).max(cpu.width / 2);
    cpu.rob_entries = 16 + (rng.next_u64() % 81) as usize;
    cpu.iq_entries = 8 + (rng.next_u64() % 41) as usize;
    cpu.fetch_buffer = (4 + (rng.next_u64() % 13) as usize).max(cpu.fetch_width as usize);
    cpu.fetch_bytes_per_cycle = [8, 16, 32][(rng.next_u64() % 3) as usize];
    cpu.taken_bubble = (rng.next_u64() % 3) as u32;
    cpu.redirect_penalty = 2 + (rng.next_u64() % 9) as u32;
    cpu.cdp_bubble = (rng.next_u64() % 3) as u32;
    cpu.perfect_branch = rng.next_u64().is_multiple_of(4);
    cpu.prioritize_critical = rng.next_u64().is_multiple_of(3);
    cpu.crit_threshold = 2 + (rng.next_u64() % 11) as u32;
    cpu
}

/// A randomized memory system over the Fig. 11 knobs.
fn random_mem(rng: &mut TestRng) -> MemConfig {
    let mut mem = MemConfig::google_tablet();
    if rng.next_u64().is_multiple_of(3) {
        mem = mem.with_4x_icache();
    }
    if rng.next_u64().is_multiple_of(3) {
        mem = mem.with_clpt();
    }
    if rng.next_u64().is_multiple_of(3) {
        mem = mem.with_efetch();
    }
    mem
}

/// A randomized app world: real generated program, random function count,
/// path seed, and trace length.
fn random_world(rng: &mut TestRng) -> (Program, ExecutionPath) {
    let apps: Vec<AppSpec> = Suite::Mobile.apps();
    let mut app = apps[(rng.next_u64() as usize) % apps.len()].clone();
    app.params.num_functions = 8 + (rng.next_u64() % 25) as u32;
    let program = app.generate_program();
    let seed = 1 + rng.next_u64() % 1_000;
    let len = 800 + (rng.next_u64() % 2_200) as usize;
    let path = ExecutionPath::generate(&program, seed, len);
    (program, path)
}

/// A randomized stream geometry, biased toward the degenerate corners the
/// issue pins: window 1, window ≥ trace length, look-ahead exactly at the
/// cone-window boundary, plus arbitrary mid-range values.
fn random_stream_config(rng: &mut TestRng, trace_len: usize, cone: Option<usize>) -> StreamConfig {
    let window = match rng.next_u64() % 5 {
        0 => 1,
        1 => trace_len + 1 + (rng.next_u64() % 64) as usize,
        2 => trace_len.max(1),
        _ => 1 + (rng.next_u64() as usize) % trace_len.max(2),
    };
    let lookahead = match rng.next_u64() % 4 {
        // Exactly at the cone horizon: the clamp keeps it sound, and any
        // off-by-one in the boundary shows up as a fanout diff.
        0 => cone.unwrap_or(DEFAULT_LOOKAHEAD),
        1 => 1,
        2 => DEFAULT_LOOKAHEAD,
        _ => 1 + (rng.next_u64() as usize) % 256,
    };
    StreamConfig {
        window,
        lookahead,
        cone_window: cone,
    }
}

/// Collects the whole stream back into materialized vectors.
fn drain(
    program: &Program,
    path: &ExecutionPath,
    cfg: StreamConfig,
) -> (Vec<critics::workloads::DynInsn>, Vec<u32>, Vec<u32>, usize) {
    let mut stream = TraceStream::new(program, path, cfg);
    let mut entries = Vec::new();
    let mut fanout = Vec::new();
    let mut cone = Vec::new();
    let mut windows = 0usize;
    while let Some(w) = stream.next_window() {
        assert_eq!(w.base, entries.len(), "windows must tile the stream");
        assert!(w.entries.len() <= cfg.window.max(1));
        entries.extend_from_slice(w.entries);
        fanout.extend_from_slice(w.fanout);
        cone.extend_from_slice(w.cone);
        windows += 1;
    }
    assert_eq!(stream.total_len(), entries.len());
    (entries, fanout, cone, windows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The streamed expansion reproduces the materialized trace exactly —
    /// entries, direct fanout, and cone fanout — for any window geometry.
    #[test]
    fn streamed_expansion_matches_materialized(seed: u64) {
        let mut rng = TestRng::new(seed);
        let (program, path) = random_world(&mut rng);
        let trace = Trace::expand(&program, &path);
        let fanout = trace.compute_fanout();
        let cone_window = [1, 2, 64, 127, 128][(rng.next_u64() % 5) as usize];
        let cone = trace.compute_cone_fanout(cone_window);
        let cfg = random_stream_config(&mut rng, trace.len(), Some(cone_window));

        let (s_entries, s_fanout, s_cone, windows) = drain(&program, &path, cfg);
        prop_assert_eq!(&s_entries, &trace.entries, "entries diverge");
        prop_assert_eq!(&s_fanout, &fanout, "direct fanout diverges");
        prop_assert_eq!(&s_cone, &cone, "cone fanout diverges");
        prop_assert_eq!(windows, trace.len().div_ceil(cfg.window.max(1)));
    }

    /// The sliding-window profiler fold produces the same [`Profile`] as
    /// the materialized analysis, for random profile fractions too.
    #[test]
    fn streamed_profile_matches_materialized(seed: u64) {
        let mut rng = TestRng::new(seed);
        let (program, path) = random_world(&mut rng);
        let trace = Trace::expand(&program, &path);
        let config = ProfilerConfig {
            profile_fraction: [0.1, 0.25, 0.5, 1.0][(rng.next_u64() % 4) as usize],
            ..ProfilerConfig::default()
        };
        let profiler = Profiler::new(config);
        let materialized = profiler
            .try_build_profile(&program, &trace)
            .expect("materialized profile");

        // The profiler's contract: ROB-horizon cone, any window/look-ahead.
        let mut cfg = random_stream_config(&mut rng, trace.len(), Some(128));
        cfg.lookahead = [1, 127, 128, DEFAULT_LOOKAHEAD][(rng.next_u64() % 4) as usize];
        let mut stream = TraceStream::new(&program, &path, cfg);
        let streamed = profiler
            .try_build_profile_streamed(&program, &mut stream)
            .expect("streamed profile");
        prop_assert_eq!(&streamed, &materialized, "profiles diverge");
    }

    /// The streaming simulator front-end is bit-identical to the
    /// materialized data-oriented engine — result and ledger — on random
    /// (core, memory, world, window) points, and the ledger partitions
    /// the run.
    #[test]
    fn streamed_simulation_matches_materialized(seed: u64) {
        let mut rng = TestRng::new(seed);
        let cpu = random_cpu(&mut rng);
        let mem = random_mem(&mut rng);
        let (program, path) = random_world(&mut rng);
        let trace = Trace::expand(&program, &path);
        let fanout = trace.compute_fanout();
        let sim = Simulator::new(cpu, mem);

        let mut scratch = SimScratch::new();
        let (mat, mat_ledger) = sim.run_with_ledger(&trace, &fanout, &mut scratch);
        prop_assert!(mat_ledger.check(mat.cycles).is_ok());

        let mut stream_scratch = StreamScratch::new();
        for _ in 0..2 {
            let cfg = random_stream_config(&mut rng, trace.len(), None);
            let mut stream = TraceStream::new(&program, &path, cfg);
            let (streamed, streamed_ledger, stats) =
                sim.run_streamed(&mut stream, &mut stream_scratch);
            prop_assert!(streamed_ledger.check(streamed.cycles).is_ok());
            prop_assert_eq!(&streamed, &mat, "streamed sim diverges (window {})", cfg.window);
            prop_assert_eq!(&streamed_ledger, &mat_ledger, "streamed ledger diverges");
            prop_assert!(stats.peak_resident_bytes > 0);
        }
    }
}

/// The degenerate geometries, pinned deterministically on one world so a
/// corner regression cannot hide behind proptest's random draw: window 1
/// (every entry is its own window), window ≥ trace length (one window, the
/// materialized case re-derived), and look-ahead exactly at the cone
/// boundary on both sides.
#[test]
fn degenerate_windows_are_exact() {
    let app = &Suite::Mobile.apps()[0];
    let program = app.generate_program();
    let path = ExecutionPath::generate(&program, 7, 3_000);
    let trace = Trace::expand(&program, &path);
    let fanout = trace.compute_fanout();
    let cone = trace.compute_cone_fanout(128);
    let sim = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet());
    let mut scratch = SimScratch::new();
    let (mat, mat_ledger) = sim.run_with_ledger(&trace, &fanout, &mut scratch);

    let mut stream_scratch = StreamScratch::new();
    for (window, lookahead) in [
        (1, 1),
        (1, 128),
        (trace.len(), 127),
        (trace.len() + 4096, 128),
        (trace.len() / 3, 129),
    ] {
        let cfg = StreamConfig {
            window,
            lookahead,
            cone_window: Some(128),
        };
        let (entries, s_fanout, s_cone, _) = drain(&program, &path, cfg);
        assert_eq!(entries, trace.entries, "w={window} la={lookahead}");
        assert_eq!(s_fanout, fanout, "w={window} la={lookahead}");
        assert_eq!(s_cone, cone, "w={window} la={lookahead}");

        let mut stream = TraceStream::new(&program, &path, cfg);
        let (streamed, streamed_ledger, _) = sim.run_streamed(&mut stream, &mut stream_scratch);
        streamed_ledger.check(streamed.cycles).expect("partition");
        assert_eq!(streamed, mat, "w={window} la={lookahead}");
        assert_eq!(streamed_ledger, mat_ledger, "w={window} la={lookahead}");
    }
}
