//! Property tests for the service layer's two safety-critical loops:
//! admission-token accounting can never go negative (or mint tokens out
//! of thin air), and a drain always terminates — even when submissions,
//! cancellations (expired deadlines), and crashes (panicking jobs)
//! interleave with it at random.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use critics::core::campaign::{CellRecord, CellStatus};
use critics::core::service::{
    CampaignService, ServiceConfig, SubmitOutcome, TokenBucket, WorkPool,
};
use critics::obs::Telemetry;
use proptest::prelude::*;

/// Mirror of the bucket's internal refill granularity: nanoseconds to
/// mint one millitoken at `rate` tokens/second. Used only to compute a
/// conservative upper bound on what a run may legally mint.
fn nanos_per_millitoken(rate: u64) -> u64 {
    (1_000_000_000u128 / u128::from(rate.max(1)) / 1000).clamp(1, u128::from(u64::MAX)) as u64
}

proptest! {
    // Pure accounting over explicit timestamps: cheap, sweep widely.
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Token conservation: across any take/elapse sequence the level
    /// stays within `[0, capacity]` (the type is unsigned — the property
    /// is that the *accounting* never relies on wrap-around), every
    /// refusal carries a retry hint of at least 1 ms, and the grants
    /// issued never exceed the initial burst plus what the elapsed time
    /// could legally have minted.
    #[test]
    fn token_accounting_never_goes_negative_or_overminted(
        capacity in 1u64..=8,
        rate in 1u64..=1_000,
        steps in prop::collection::vec((0u64..=2_000_000_000, any::<bool>()), 1..=64),
    ) {
        let bucket = TokenBucket::new(capacity, rate);
        let capacity_milli = capacity * 1000;
        let mut now = 0u64;
        let mut grants = 0u64;
        for &(delta, take) in &steps {
            now = now.saturating_add(delta);
            if take {
                match bucket.try_take_at(now) {
                    Ok(()) => grants += 1,
                    Err(retry_ms) => prop_assert!(retry_ms >= 1, "zero retry hint"),
                }
            }
            let level = bucket.millitokens();
            prop_assert!(
                level <= capacity_milli,
                "level {level} above capacity {capacity_milli}"
            );
        }
        let minted_upper = now / nanos_per_millitoken(rate);
        prop_assert!(
            grants * 1000 <= capacity_milli + minted_upper,
            "issued {grants} tokens from a burst of {capacity} plus at most \
             {minted_upper} minted millitokens"
        );
    }

    /// Out-of-order timestamps (a torn monotonic read) refill nothing and
    /// never corrupt the level: replaying any step sequence in reverse
    /// time order keeps the level within `[0, capacity]` throughout.
    #[test]
    fn token_accounting_survives_time_going_backwards(
        capacity in 1u64..=8,
        rate in 1u64..=1_000,
        stamps in prop::collection::vec(0u64..=2_000_000_000, 1..=64),
    ) {
        let bucket = TokenBucket::new(capacity, rate);
        let capacity_milli = capacity * 1000;
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        sorted.reverse();
        for &now in sorted.iter().chain(stamps.iter()) {
            let _ = bucket.try_take_at(now);
            let level = bucket.millitokens();
            prop_assert!(
                level <= capacity_milli,
                "level {level} above capacity {capacity_milli}"
            );
        }
    }
}

/// What one randomized pool job does when a worker claims it; kind 0
/// (fast no-op) is the `match` fall-through.
const JOB_SLEEP: u8 = 1;
const JOB_CRASH: u8 = 2;

fn spawn_job(pool: &WorkPool, kind: u8, ran: &Arc<AtomicUsize>) -> bool {
    let ran = Arc::clone(ran);
    pool.submit(Box::new(move || {
        // Count on entry so a crashing job is still accounted for.
        ran.fetch_add(1, Ordering::SeqCst);
        match kind {
            JOB_SLEEP => std::thread::sleep(Duration::from_millis(1)),
            JOB_CRASH => panic!("injected job crash"),
            _ => {}
        }
    }))
}

/// Runs `drain` on a watchdog thread and returns whether it finished
/// inside `timeout`. A hung drain is the failure mode under test — the
/// watchdog keeps the proptest itself from deadlocking with it.
fn drain_terminates(pool: &Arc<WorkPool>, timeout: Duration) -> bool {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    let pool = Arc::clone(pool);
    let handle = std::thread::spawn(move || {
        pool.drain();
        flag.store(true, Ordering::SeqCst);
    });
    let deadline = Instant::now() + timeout;
    while !done.load(Ordering::SeqCst) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    if done.load(Ordering::SeqCst) {
        let _ = handle.join();
        true
    } else {
        false
    }
}

proptest! {
    // Each case spins up real threads; keep the sweep moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With every submission (fast, slow, or crashing) in place before
    /// the drain starts, the drain terminates, runs each accepted job
    /// exactly once — panics included — and leaves a stopped pool that
    /// refuses further work.
    #[test]
    fn drain_terminates_and_runs_every_accepted_job(
        workers in 1usize..=4,
        jobs in prop::collection::vec(0u8..=2, 0..=24),
    ) {
        let pool = Arc::new(WorkPool::new(workers));
        let ran = Arc::new(AtomicUsize::new(0));
        let mut accepted = 0usize;
        for &kind in &jobs {
            if spawn_job(&pool, kind, &ran) {
                accepted += 1;
            }
        }
        prop_assert!(drain_terminates(&pool, Duration::from_secs(10)), "drain hung");
        prop_assert_eq!(ran.load(Ordering::SeqCst), accepted);
        prop_assert_eq!(pool.queued(), 0);
        prop_assert_eq!(pool.in_flight(), 0);
        prop_assert!(
            !pool.submit(Box::new(|| {})),
            "a drained pool accepted new work"
        );
    }

    /// Submissions racing the drain itself: a second thread keeps
    /// submitting (crashes included) while the drain runs. Whatever the
    /// interleaving, the drain terminates and no accepted job is claimed
    /// twice.
    #[test]
    fn drain_terminates_under_racing_submissions(
        workers in 1usize..=4,
        before in prop::collection::vec(0u8..=2, 0..=8),
        during in prop::collection::vec(0u8..=2, 1..=8),
    ) {
        let pool = Arc::new(WorkPool::new(workers));
        let ran = Arc::new(AtomicUsize::new(0));
        for &kind in &before {
            spawn_job(&pool, kind, &ran);
        }
        let racer_pool = Arc::clone(&pool);
        let racer_ran = Arc::clone(&ran);
        let racer = std::thread::spawn(move || {
            let mut accepted = 0usize;
            for &kind in &during {
                if spawn_job(&racer_pool, kind, &racer_ran) {
                    accepted += 1;
                }
                std::thread::yield_now();
            }
            accepted
        });
        prop_assert!(drain_terminates(&pool, Duration::from_secs(10)), "drain hung");
        let raced = racer.join().expect("racer thread panicked");
        // Termination is the property; completion only bounds from above
        // (a submit that raced the stop may have been accepted yet never
        // claimed).
        prop_assert!(ran.load(Ordering::SeqCst) <= before.len() + raced);
        prop_assert_eq!(pool.in_flight(), 0);
    }
}

proptest! {
    // Full service cells are the expensive case: a handful is enough.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The whole service drains to completion under mixed submissions:
    /// random apps and schemes, deadlines from "already expired" (the
    /// cancellation path) to generous, tiny queues forcing rejects, and
    /// breakers armed. Every accepted submission gets exactly one
    /// response, and the drain itself terminates.
    #[test]
    fn service_drain_answers_every_accepted_submission(
        workers in 1usize..=2,
        queue in 1usize..=4,
        breaker in 0u32..=2,
        cells in prop::collection::vec(
            (
                prop::sample::select(vec!["Acrobat", "Browser", "Email", "Maps"]),
                prop::sample::select(vec!["critic", "opp16", "hoist", "ideal"]),
                prop::sample::select(vec![None, Some(0u64), Some(1), Some(60_000)]),
            ),
            1..=10,
        ),
    ) {
        let mut config = ServiceConfig::new(300);
        config.workers = workers;
        config.queue_capacity = queue;
        config.degrade_watermarks = [1, 2, 3];
        config.admission_rate = 0; // accounting covered above; no pacing here
        config.client_window = 0;
        config.breaker_threshold = breaker;
        config.telemetry = Telemetry::off();
        let service = CampaignService::open(config).expect("in-memory service opens");
        let responses = Arc::new(AtomicUsize::new(0));
        let mut accepted = 0usize;
        for (index, (app, scheme, deadline)) in cells.iter().enumerate() {
            let counter = Arc::clone(&responses);
            match service.submit(index as u64, app, scheme, *deadline, move |_record| {
                counter.fetch_add(1, Ordering::SeqCst);
            }) {
                SubmitOutcome::Accepted => accepted += 1,
                SubmitOutcome::Rejected { retry_after_ms, .. } => {
                    prop_assert!(retry_after_ms >= 1, "zero retry hint on reject");
                }
            }
        }
        service.drain();
        prop_assert_eq!(responses.load(Ordering::SeqCst), accepted);
        prop_assert_eq!(service.queue_depth(), 0);
        prop_assert_eq!(service.in_flight(), 0);
        prop_assert_eq!(service.responded(), accepted as u64);
    }
}

/// The server's `--stream-window` knob reaches `run_service_attempt`
/// and is a pure memory bound: a service simulating through a small
/// bounded window produces bit-identical cell metrics to one that
/// materializes every trace in full.
#[test]
fn stream_windowed_service_matches_materialized_metrics() {
    let run = |window: Option<usize>| {
        let mut config = ServiceConfig::new(300);
        config.workers = 1;
        config.queue_capacity = 8;
        config.admission_rate = 0;
        config.client_window = 0;
        config.breaker_threshold = 0;
        config.telemetry = Telemetry::off();
        config.stream_window = window;
        let service = CampaignService::open(config).expect("in-memory service opens");
        let records: Arc<Mutex<Vec<CellRecord>>> = Arc::new(Mutex::new(Vec::new()));
        for (index, (app, scheme)) in [("Acrobat", "critic"), ("Browser", "opp16")]
            .into_iter()
            .enumerate()
        {
            let sink = Arc::clone(&records);
            let outcome = service.submit(index as u64, app, scheme, None, move |record| {
                sink.lock().unwrap().push(record);
            });
            assert!(matches!(outcome, SubmitOutcome::Accepted));
        }
        service.drain();
        let mut records = Arc::try_unwrap(records)
            .expect("drain returned all callbacks")
            .into_inner()
            .unwrap();
        records.sort_by(|a, b| {
            (a.app.as_str(), a.scheme.as_str()).cmp(&(b.app.as_str(), b.scheme.as_str()))
        });
        records
    };
    let streamed = run(Some(64));
    let materialized = run(None);
    assert_eq!(streamed.len(), 2);
    assert_eq!(materialized.len(), 2);
    for (s, m) in streamed.iter().zip(&materialized) {
        assert_eq!(
            s.status,
            CellStatus::Ok,
            "{}/{} did not complete",
            s.app,
            s.scheme
        );
        assert!(s.metrics.is_some(), "{}/{} has no metrics", s.app, s.scheme);
        assert_eq!(
            s.metrics, m.metrics,
            "stream window changed {}/{} metrics",
            s.app, s.scheme
        );
    }
}
