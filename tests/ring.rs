//! Property-based tests (proptest) on the consistent-hash ring behind
//! `critic router`: placement is a pure function of the key and the
//! shard set (so independently built routers and shards always agree),
//! load spreads across shards within a vnode-variance bound, and
//! growing or shrinking the fleet by one shard remaps only ~1/N of the
//! keyspace — the property that makes shard restarts cheap.

use std::collections::HashMap;

use critics::core::ring::{placement_key, HashRing, DEFAULT_VNODES};
use proptest::prelude::*;

proptest! {
    /// Placement depends only on the *set* of shards, not on
    /// construction order — two processes that learn the fleet in
    /// different orders (a router and a rebuilding shard, say) can
    /// never disagree on an owner.
    #[test]
    fn placement_ignores_construction_order(
        keys in prop::collection::vec(0u64..u64::MAX, 1..64),
        shards in 1u32..9,
    ) {
        let forward = HashRing::new(0..shards, DEFAULT_VNODES);
        let reverse = HashRing::new((0..shards).rev(), DEFAULT_VNODES);
        for key in keys {
            prop_assert_eq!(forward.place(key), reverse.place(key));
        }
    }

    /// Rebuilding the same ring twice gives identical placements for
    /// app × scheme cells — determinism across independent processes,
    /// on the exact keys the service routes by.
    #[test]
    fn placement_is_deterministic_for_cells(
        app_seed in 0u64..1_000,
        shards in 1u32..9,
        vnodes in 16u32..256,
    ) {
        let a = HashRing::new(0..shards, vnodes);
        let b = HashRing::new(0..shards, vnodes);
        let key = placement_key(&format!("app-{app_seed}"), "critic");
        prop_assert_eq!(a.place(key), b.place(key));
        let owner = a.place(key);
        prop_assert!(owner.is_some_and(|s| s < shards));
    }

    /// Keys spread over the fleet within a generous vnode-variance
    /// bound: with 128 vnodes per shard no shard owns more than ~3× or
    /// less than ~1/5 of its fair share over a few thousand keys.
    #[test]
    fn distribution_is_balanced_within_bound(
        seed in 0u64..1_000,
        shards in 2u32..7,
    ) {
        let ring = HashRing::new(0..shards, DEFAULT_VNODES);
        let total = 4_000u64;
        let mut counts: HashMap<u32, u64> = HashMap::new();
        // splitmix64 keys: deterministic, well spread.
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for _ in 0..total {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let key = z ^ (z >> 31);
            let owner = ring.place(key).expect("non-empty ring places");
            *counts.entry(owner).or_default() += 1;
        }
        let fair = total as f64 / shards as f64;
        for shard in 0..shards {
            let got = *counts.get(&shard).unwrap_or(&0) as f64;
            prop_assert!(
                got < fair * 3.0,
                "shard {} owns {} of {} keys, over 3x the fair share {:.0}",
                shard, got, total, fair
            );
            prop_assert!(
                got > fair / 5.0,
                "shard {} owns {} of {} keys, under a fifth of the fair share {:.0}",
                shard, got, total, fair
            );
        }
    }

    /// Adding one shard steals keys *only* for the new shard, and not
    /// many more than its fair 1/(N+1) share — everything else keeps
    /// its owner, which is what lets a router grow (or restart) a shard
    /// without invalidating the rest of the fleet's disk state.
    #[test]
    fn adding_a_shard_remaps_only_its_share(
        seed in 0u64..1_000,
        shards in 2u32..7,
    ) {
        let before = HashRing::new(0..shards, DEFAULT_VNODES);
        let after = HashRing::new(0..shards + 1, DEFAULT_VNODES);
        let total = 4_000u64;
        let mut moved = 0u64;
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(7);
        for _ in 0..total {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let key = z ^ (z >> 31);
            let old = before.place(key);
            let new = after.place(key);
            if old != new {
                moved += 1;
                // A key only ever moves TO the added shard.
                prop_assert_eq!(new, Some(shards));
            }
        }
        let fair = total as f64 / (shards + 1) as f64;
        prop_assert!(
            (moved as f64) < fair * 3.0,
            "{} of {} keys moved when adding shard {}; fair share is {:.0}",
            moved, total, shards, fair
        );
        prop_assert!(moved > 0, "the added shard captured nothing");
    }

    /// Removing a shard is the mirror image: only the dead shard's keys
    /// move, and they land on ring successors — the router's reroute
    /// rule during an outage.
    #[test]
    fn removing_a_shard_moves_only_its_keys(
        seed in 0u64..1_000,
        shards in 2u32..7,
        victim in 0u32..7,
    ) {
        prop_assume!(victim < shards);
        let full = HashRing::new(0..shards, DEFAULT_VNODES);
        let reduced = HashRing::new((0..shards).filter(|&s| s != victim), DEFAULT_VNODES);
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(13);
        for _ in 0..2_000 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let key = z ^ (z >> 31);
            let old = full.place(key);
            let new = reduced.place(key);
            if old == Some(victim) {
                // The victim's keys land on the live successor the full
                // ring would have tried next.
                let successors = full.successors(key);
                let fallback = successors.into_iter().find(|&s| s != victim);
                prop_assert_eq!(new, fallback);
            } else {
                // Everyone else's keys stay put.
                prop_assert_eq!(new, old);
            }
        }
    }
}
