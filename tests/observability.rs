//! Property tests for the observability layer: the cycle-accounting
//! ledger's single-attribution invariant (bucket sum == total cycles,
//! exactly) across randomized cores and workloads, bit-for-bit
//! reproducibility of same-seed runs, and the zero-perturbation guarantee
//! of campaign telemetry.

use critics::core::campaign::{self, CampaignSpec, Scheme};
use critics::core::design::DesignPoint;
use critics::core::runner::Workbench;
use critics::mem::MemConfig;
use critics::obs::Telemetry;
use critics::pipeline::{CpuConfig, SimScratch, Simulator};
use critics::workloads::suite::Suite;
use critics::workloads::AppSpec;
use proptest::prelude::*;

fn all_apps() -> Vec<AppSpec> {
    Suite::ALL.iter().flat_map(|s| s.apps()).collect()
}

/// A randomized core: Table I's Google-Tablet with the structure sizes and
/// front-end penalties perturbed across the plausible design space.
fn arb_cpu() -> impl Strategy<Value = CpuConfig> {
    (
        1u32..=4,      // width
        2usize..=24,   // fetch buffer
        16usize..=192, // ROB entries
        4usize..=48,   // IQ entries
        0u32..=3,      // taken-branch bubble
        1u32..=10,     // redirect penalty
        0u32..=2,      // CDP bubble
        any::<bool>(), // perfect branching
        any::<bool>(), // critical-first issue
    )
        .prop_map(
            |(width, fetch_buffer, rob, iq, taken, redirect, cdp, perfect, prio)| {
                let mut cpu = CpuConfig::google_tablet();
                cpu.width = width;
                cpu.fetch_width = width;
                cpu.fetch_buffer = fetch_buffer;
                cpu.rob_entries = rob;
                cpu.iq_entries = iq;
                cpu.taken_bubble = taken;
                cpu.redirect_penalty = redirect;
                cpu.cdp_bubble = cdp;
                cpu.perfect_branch = perfect;
                cpu.prioritize_critical = prio;
                cpu
            },
        )
}

proptest! {
    // Each case builds a world and simulates it; keep the case count low
    // enough for debug-mode CI while still sweeping the design space.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant: for any core configuration and any Table II
    /// workload, every simulated cycle lands in exactly one ledger bucket.
    #[test]
    fn ledger_partitions_cycles_for_any_core(
        cpu in arb_cpu(),
        app_idx in 0usize..26,
        trace_len in 2_000usize..8_000,
    ) {
        let app = all_apps()[app_idx].clone();
        let bench = Workbench::new(&app, trace_len);
        let sim = Simulator::new(cpu, MemConfig::google_tablet());
        let mut scratch = SimScratch::new();
        let (result, ledger) =
            sim.run_with_ledger(bench.baseline_trace(), bench.baseline_fanout(), &mut scratch);
        prop_assert!(result.cycles > 0);
        if let Err(msg) = ledger.check(result.cycles) {
            prop_assert!(false, "{}: {msg}", app.name);
        }
        // The legacy stall counters are a projection of the ledger, not a
        // second bookkeeping that could drift or double-count.
        prop_assert_eq!(result.fetch_stalls.icache, ledger.fetch_stall_icache);
        prop_assert_eq!(result.fetch_stalls.branch, ledger.fetch_stall_branch);
        prop_assert_eq!(
            result.fetch_stalls.backpressure,
            ledger.fetch_stall_backpressure
        );
    }

    /// Simulation is a pure function of (config, trace): running the same
    /// app through two independently-built worlds gives bit-identical
    /// results and ledgers, and the ledger-returning entry point agrees
    /// exactly with the plain one.
    #[test]
    fn same_seed_runs_are_bit_for_bit_identical(
        app_idx in 0usize..26,
        trace_len in 2_000usize..6_000,
    ) {
        let app = all_apps()[app_idx].clone();
        let point = DesignPoint::baseline();
        let first = Workbench::new(&app, trace_len);
        let second = Workbench::new(&app, trace_len);
        let sim = Simulator::new(point.cpu_config(), point.mem_config());
        let mut scratch = SimScratch::new();
        let (r1, l1) =
            sim.run_with_ledger(first.baseline_trace(), first.baseline_fanout(), &mut scratch);
        let (r2, l2) =
            sim.run_with_ledger(second.baseline_trace(), second.baseline_fanout(), &mut scratch);
        let plain =
            sim.run_with_scratch(first.baseline_trace(), first.baseline_fanout(), &mut scratch);
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(l1, l2);
        prop_assert_eq!(&r1, &plain);
    }
}

/// Telemetry is observation, not simulation: the same campaign with spans
/// on and off produces identical metrics for every cell.
#[test]
fn telemetry_does_not_perturb_campaign_metrics() {
    let apps: Vec<AppSpec> = Suite::Mobile.apps().into_iter().take(3).collect();
    let schemes = vec![
        Scheme::new("critic", DesignPoint::critic()),
        Scheme::new("hoist", DesignPoint::hoist()),
    ];

    let mut silent = CampaignSpec::new(apps.clone(), schemes.clone(), 4_000);
    silent.telemetry = Telemetry::off();
    let mut traced = CampaignSpec::new(apps, schemes, 4_000);
    traced.telemetry = Telemetry::enabled();

    let silent = campaign::run_campaign(&silent).expect("silent campaign");
    let traced = campaign::run_campaign(&traced).expect("traced campaign");
    assert!(silent.telemetry.is_none());
    let aggregate = traced.telemetry.expect("traced campaign aggregates spans");
    assert!(aggregate.sim.count > 0);

    assert_eq!(silent.records.len(), traced.records.len());
    for (s, t) in silent.records.iter().zip(&traced.records) {
        assert_eq!(s.app, t.app);
        assert_eq!(s.scheme, t.scheme);
        assert_eq!(s.status, t.status);
        assert_eq!(s.metrics, t.metrics, "{}/{}", s.app, s.scheme);
        assert!(s.spans.is_none(), "silent cells journal no spans");
        assert!(t.spans.is_some(), "traced cells journal spans");
    }
}
