//! Memory-regression battery for the streaming trace pipeline: the same
//! long-trace allocation budget that kills a materialized campaign cell
//! admits a streamed one, and the streaming simulator's *measured* peak is
//! bounded by the window, not the trace.
//!
//! The campaign half rides the existing [`SysFault::AllocBudget`] meter:
//! `run_cell_body` charges each attempt's dominant allocations against the
//! injected budget (O(trace) bytes on the materialized path, O(window) on
//! the streamed one), so a budget between the two footprints is a hard
//! regression tripwire — if streaming ever rematerializes the trace, the
//! charge model says so and the streamed cell starts failing here.

use std::sync::Arc;

use critics::core::campaign::{run_campaign, CampaignSpec, CellStatus, Scheme};
use critics::core::design::DesignPoint;
use critics::core::error::RunError;
use critics::mem::MemConfig;
use critics::pipeline::{CpuConfig, Simulator, StreamScratch};
use critics::workloads::suite::Suite;
use critics::workloads::{
    AppSpec, ExecutionPath, StreamConfig, SysFault, SysFaultSpec, SysInjector, TraceStream,
    DEFAULT_LOOKAHEAD,
};

/// Long enough that the materialized footprint dwarfs every windowed one:
/// the charges are 64 B/insn for expansion plus 2 × 16 B/insn for the two
/// simulations — ~11.5 MB here — while a 4 Ki window charges ~0.5 MB.
const LONG_TRACE: usize = 120_000;

/// Between the streamed footprint (~0.5 MB) and the materialized one
/// (~11.5 MB), with an order of magnitude of slack on both sides.
const BUDGET_BYTES: u64 = 2_000_000;

const WINDOW: usize = 4_096;

fn one_cell_spec(stream_window: Option<usize>) -> CampaignSpec {
    let mut app: AppSpec = Suite::Mobile.apps().remove(0);
    // A small static program keeps world generation fast; the *dynamic*
    // trace stays long, which is what the budget meters.
    app.params.num_functions = 16;
    let mut spec = CampaignSpec::new(
        vec![app],
        vec![Scheme::new("critic", DesignPoint::critic())],
        LONG_TRACE,
    );
    spec.workers = 1;
    spec.stream_window = stream_window;
    spec.sys = Some(Arc::new(SysInjector::new(vec![SysFaultSpec {
        fault: SysFault::AllocBudget {
            bytes: BUDGET_BYTES,
        },
        at: 0,
    }])));
    spec
}

/// The materialized path charges O(trace) bytes and blows the budget.
#[test]
fn materialized_long_trace_blows_the_alloc_budget() {
    let summary = run_campaign(&one_cell_spec(None)).expect("campaign runs");
    let record = &summary.records[0];
    assert_eq!(record.status, CellStatus::Failed, "{}", summary.render());
    match &record.error {
        Some(RunError::Sys(SysFault::AllocBudget { bytes })) => {
            assert_eq!(*bytes, BUDGET_BYTES)
        }
        other => panic!("expected an AllocBudget failure, got {other:?}"),
    }
}

/// The streamed path charges O(window) bytes and sails under the same
/// budget — producing a real result, not a degraded one.
#[test]
fn streamed_long_trace_fits_the_same_alloc_budget() {
    let summary = run_campaign(&one_cell_spec(Some(WINDOW))).expect("campaign runs");
    let record = &summary.records[0];
    assert_eq!(record.status, CellStatus::Ok, "{}", summary.render());
    assert_eq!(record.attempts, 1, "no retry/degradation was needed");
    let metrics = record.metrics.as_ref().expect("ok cell has metrics");
    assert!(metrics.dyn_insns >= LONG_TRACE / 2, "{metrics:?}");
}

/// The streamed and materialized campaign cells agree on the metrics when
/// the budget is not in the way: same speedup, energy, and instruction
/// counts, bit for bit.
#[test]
fn streamed_campaign_cell_is_bit_identical_to_materialized() {
    let mut materialized = one_cell_spec(None);
    materialized.sys = None;
    let mut streamed = one_cell_spec(Some(WINDOW));
    streamed.sys = None;
    let a = run_campaign(&materialized).expect("materialized campaign");
    let b = run_campaign(&streamed).expect("streamed campaign");
    assert!(a.all_ok() && b.all_ok());
    assert_eq!(
        a.records[0].metrics, b.records[0].metrics,
        "streaming changed a campaign cell's results"
    );
}

/// The measured peak of a streamed long-trace simulation sits under a hard
/// window-derived byte ceiling, far below what materializing the same
/// trace costs — the direct (non-charge-model) half of the regression
/// tripwire.
#[test]
fn streamed_peak_bytes_are_window_bounded_not_trace_bounded() {
    let mut app: AppSpec = Suite::Mobile.apps().remove(0);
    app.params.num_functions = 16;
    let program = app.generate_program();
    let path = ExecutionPath::generate(&program, app.path_seed(), LONG_TRACE);
    let sim = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet());
    let mut scratch = StreamScratch::new();
    let mut stream = TraceStream::new(&program, &path, StreamConfig::with_window(WINDOW));
    let (result, ledger, stats) = sim.run_streamed(&mut stream, &mut scratch);
    ledger.check(result.cycles).expect("ledger partitions");

    // The same fixed O(window) ceiling `critic bench` gates on: 2 KiB per
    // (window + look-ahead) slot, independent of the trace length.
    let ceiling = ((WINDOW + DEFAULT_LOOKAHEAD) * 2048) as u64;
    let peak = stats.peak_resident_bytes as u64;
    assert!(
        peak <= ceiling,
        "streamed peak {peak} B exceeds the O(window) ceiling {ceiling} B"
    );
    // Materializing holds ~164 B per dynamic instruction (entries plus
    // decoded columns); the streamed peak must be far below that.
    let materialized_estimate = (LONG_TRACE as u64) * 164;
    assert!(
        peak * 4 < materialized_estimate,
        "streamed peak {peak} B is not clearly below the materialized \
         footprint {materialized_estimate} B"
    );
}
