//! End-to-end integration: workload generation → profiling → compilation →
//! simulation → energy, across every crate through the facade.

use critics::compiler::{apply_critic_pass, CriticPassOptions};
use critics::core::design::DesignPoint;
use critics::core::runner::Workbench;
use critics::energy::EnergyModel;
use critics::mem::MemConfig;
use critics::pipeline::{CpuConfig, Simulator};
use critics::profiler::{Profiler, ProfilerConfig};
use critics::workloads::suite::Suite;
use critics::workloads::{ExecutionPath, Trace};

fn small_app(suite: Suite, index: usize) -> critics::workloads::AppSpec {
    let mut app = suite.apps()[index].clone();
    app.params.num_functions = app.params.num_functions.min(60);
    app
}

#[test]
fn full_stack_pipeline_runs_for_every_suite() {
    for suite in Suite::ALL {
        let app = small_app(suite, 0);
        let program = app.generate_program();
        let path = ExecutionPath::generate(&program, app.path_seed(), 20_000);
        let trace = Trace::expand(&program, &path);
        let fanout = trace.compute_fanout();
        let result = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet())
            .run(&trace, &fanout);
        assert_eq!(result.committed + result.cdp_switches, trace.len() as u64);
        let energy = EnergyModel::default().evaluate(&result);
        assert!(energy.system_nj() > 0.0);
    }
}

#[test]
fn profile_compile_simulate_round_trip() {
    let app = small_app(Suite::Mobile, 0);
    let program = app.generate_program();
    let path = ExecutionPath::generate(&program, app.path_seed(), 30_000);
    let trace = Trace::expand(&program, &path);
    let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
    assert!(!profile.chains.is_empty());

    let mut optimized = program.clone();
    let report = apply_critic_pass(&mut optimized, &profile, CriticPassOptions::default());
    assert!(report.chains_applied > 0);

    // The rewritten binary replays the identical input.
    let rewritten = Trace::expand(&optimized, &path);
    assert!(rewritten.len() >= trace.len(), "CDPs only add instructions");
    assert!(
        rewritten.fetch_bytes() < trace.fetch_bytes(),
        "and yet fewer bytes"
    );

    let fanout = rewritten.compute_fanout();
    let result = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet())
        .run(&rewritten, &fanout);
    assert!(result.thumb_fetched > 0);
    assert_eq!(
        result.cdp_switches as usize,
        rewritten.iter().filter(|e| e.is_cdp()).count()
    );
}

#[test]
fn workbench_matches_manual_composition() {
    let app = small_app(Suite::Mobile, 1);
    let mut bench = Workbench::new(&app, 20_000);
    let manual = {
        let trace = bench.baseline_trace().clone();
        let fanout = trace.compute_fanout();
        Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet()).run(&trace, &fanout)
    };
    let base = bench.run(&DesignPoint::baseline());
    assert_eq!(
        base.sim, manual,
        "the workbench adds nothing to a baseline run"
    );
}

#[test]
fn all_design_points_run_without_panicking() {
    let app = small_app(Suite::Mobile, 2);
    let mut bench = Workbench::new(&app, 15_000);
    let points = [
        DesignPoint::baseline(),
        DesignPoint::critical_load_prefetch(),
        DesignPoint::critical_prioritization(),
        DesignPoint::hoist(),
        DesignPoint::critic(),
        DesignPoint::critic_branch_switch(),
        DesignPoint::critic_ideal(),
        DesignPoint::double_fd(),
        DesignPoint::quad_icache(),
        DesignPoint::efetch(),
        DesignPoint::perfect_branch(),
        DesignPoint::all_hw(),
        DesignPoint::all_hw().with_critic(),
        DesignPoint::opp16(),
        DesignPoint::compress(),
        DesignPoint::opp16_plus_critic(),
        DesignPoint::critic_exact_len(4),
        DesignPoint::critic_profile_fraction(0.33),
    ];
    for point in points {
        let run = bench.run(&point);
        assert!(run.sim.cycles > 0, "{} produced no cycles", point.label());
        assert!(run.sim.ipc() > 0.05, "{} IPC collapsed", point.label());
    }
}

#[test]
fn serde_round_trips_through_the_stack() {
    let app = small_app(Suite::Mobile, 0);
    let program = app.generate_program();
    let json = serde_json::to_string(&program).expect("program serializes");
    let back: critics::workloads::Program = serde_json::from_str(&json).expect("deserializes");
    // f64 JSON round trips can differ in the last ulp (branch
    // probabilities), so compare the integer-exact structure.
    let _ = json;
    assert_eq!(program.functions, back.functions);
    assert_eq!(program.load_hints, back.load_hints);
    assert_eq!(program.blocks.len(), back.blocks.len());
    for (a, b) in program.blocks.iter().zip(&back.blocks) {
        assert_eq!(
            a.insns, b.insns,
            "instructions of {} must round-trip exactly",
            a.id
        );
    }

    let path = ExecutionPath::generate(&program, 3, 5_000);
    let trace = Trace::expand(&program, &path);
    let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
    let json = serde_json::to_string(&profile).expect("profile serializes");
    let back: critics::profiler::Profile = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(profile.chains.len(), back.chains.len());
    for (a, b) in profile.chains.iter().zip(&back.chains) {
        assert_eq!(
            (a.block, &a.uids, a.dynamic_count),
            (b.block, &b.uids, b.dynamic_count)
        );
    }
}
