//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark closure a configurable number of times and prints
//! mean/min wall-clock timings — no statistics, plots, or baselines, just
//! enough to execute the workspace's `benches/` targets offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-exported for `b.iter(|| black_box(...))` call sites.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// A driver with default settings.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks one function under `group/id`.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; no-op in the shim).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure to time its workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f` once per sample, recording wall-clock durations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One untimed warm-up run, then the timed samples.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{id}: mean {mean:?}, min {min:?} over {} samples",
        bencher.samples.len()
    );
}

/// Collects benchmark functions into one runnable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($func:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion = $crate::Criterion::new();
                    $func(&mut criterion);
                }
            )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
