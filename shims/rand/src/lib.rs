//! Offline stand-in for `rand 0.8`.
//!
//! Unlike the other shims, this one is **bit-exact** with the real crate
//! for the API subset the workspace uses: `StdRng` is the genuine ChaCha12
//! generator (rand_chacha 0.3) with rand_core 0.6's PCG32-based
//! `seed_from_u64`, `gen_range` reproduces the widening-multiply rejection
//! sampler (Lemire), `gen_bool` the fixed-point Bernoulli threshold, and
//! `choose`/`shuffle` the slice algorithms — so the synthetic workloads the
//! generators produce are identical to the ones the real dependency would
//! produce, and the repo's statistical tests measure the same programs.

#![forbid(unsafe_code)]

/// Random number generators.
pub mod rngs {
    /// The standard generator: ChaCha12, as in `rand 0.8`.
    ///
    /// Mirrors `rand_core::block::BlockRng` over a 4-block (64-word)
    /// result buffer, because the buffer length determines where
    /// `next_u64` straddles a refill — part of the exact stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) key: [u32; 8],
        pub(crate) counter: u64,
        pub(crate) buf: [u32; 64],
        pub(crate) index: usize,
    }

    impl StdRng {
        /// Builds the generator from a 256-bit key, counter 0, stream 0.
        pub fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut key = [0u32; 8];
            for (i, chunk) in seed.chunks_exact(4).enumerate() {
                key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; 64],
                index: 64,
            }
        }

        pub(crate) fn refill(&mut self) {
            for block in 0..4 {
                let out = chacha12_block(&self.key, self.counter.wrapping_add(block));
                self.buf[block as usize * 16..][..16].copy_from_slice(&out);
            }
            self.counter = self.counter.wrapping_add(4);
        }
    }

    /// One ChaCha block with 12 rounds (RFC 8439 layout: constants, key,
    /// 64-bit block counter in words 12–13, 64-bit stream id = 0 in 14–15).
    fn chacha12_block(key: &[u32; 8], counter: u64) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        let mut w = state;
        for _ in 0..6 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for i in 0..16 {
            w[i] = w[i].wrapping_add(state[i]);
        }
        w
    }

    fn quarter_round(w: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        w[a] = w[a].wrapping_add(w[b]);
        w[d] = (w[d] ^ w[a]).rotate_left(16);
        w[c] = w[c].wrapping_add(w[d]);
        w[b] = (w[b] ^ w[c]).rotate_left(12);
        w[a] = w[a].wrapping_add(w[b]);
        w[d] = (w[d] ^ w[a]).rotate_left(8);
        w[c] = w[c].wrapping_add(w[d]);
        w[b] = (w[b] ^ w[c]).rotate_left(7);
    }
}

use rngs::StdRng;

/// The low-level generator interface.
pub trait RngCore {
    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 64 {
            self.refill();
            self.index = 0;
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    // Exact replica of rand_core's BlockRng::next_u64, including the case
    // where the two words straddle a buffer refill.
    fn next_u64(&mut self) -> u64 {
        let index = self.index;
        if index < 63 {
            self.index += 2;
            u64::from(self.buf[index]) | (u64::from(self.buf[index + 1]) << 32)
        } else if index >= 64 {
            self.refill();
            self.index = 2;
            u64::from(self.buf[0]) | (u64::from(self.buf[1]) << 32)
        } else {
            let low = u64::from(self.buf[63]);
            self.refill();
            self.index = 1;
            low | (u64::from(self.buf[0]) << 32)
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from ambient entropy (the clock, in the shim).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        Self::seed_from_u64(nanos)
    }
}

impl SeedableRng for StdRng {
    // Exact replica of rand_core 0.6's default seed_from_u64: a PCG32
    // stream expands the u64 into the 32-byte ChaCha key.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        StdRng::from_seed(seed)
    }
}

/// Types `Rng::gen` can produce (the real crate's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    // rand 0.8's multiply-based [0, 1) conversion: 53 high bits.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u64 << 53) as f64);
        scale * ((rng.next_u64() >> 11) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u32 << 24) as f32);
        scale * ((rng.next_u32() >> 8) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 samples a u32 and tests the sign bit.
        (rng.next_u32() as i32) < 0
    }
}

/// Ranges that can produce one uniform sample of `T`.
///
/// Generic over the output (rather than an associated type) so the output
/// type can flow *into* range literals from the call site, as with the
/// real crate: `let imm: u8 = rng.gen_range(128..=255)`.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range (as the real crate does).
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire's widening-multiply rejection sampler over `[0, range)`, as in
/// rand 0.8's `UniformInt::sample_single`. `$large` is u32 for types up to
/// 32 bits and u64 beyond; `$wide` is the double-width multiply type.
macro_rules! sample_range_int {
    ($($t:ty => ($unsigned:ty, $large:ty, $wide:ty)),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = self.end.wrapping_sub(self.start) as $unsigned as $large;
                let small = <$unsigned>::MAX as u128 <= u16::MAX as u128;
                lemire::<$large, $wide, R>(range, small, rng)
                    .map(|hi| self.start.wrapping_add(hi as $t))
                    .unwrap_or_else(|| <$large as Standard>::draw(rng) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let range = end.wrapping_sub(start).wrapping_add(1) as $unsigned as $large;
                let small = <$unsigned>::MAX as u128 <= u16::MAX as u128;
                lemire::<$large, $wide, R>(range, small, rng)
                    .map(|hi| start.wrapping_add(hi as $t))
                    .unwrap_or_else(|| <$large as Standard>::draw(rng) as $t)
            }
        }
    )*};
}

/// Returns `Some(offset)` in `[0, range)`, or `None` when `range == 0`
/// (i.e. the full domain, where the caller draws directly).
///
/// `small_int` selects rand 0.8's zone rule: for types up to 16 bits the
/// real crate computes the exact rejection zone by modulus, and only uses
/// the bit-shift approximation for wider types. The zones differ, so the
/// choice affects both results and how many words a draw consumes.
fn lemire<L, W, R>(range: L, small_int: bool, rng: &mut R) -> Option<L>
where
    L: LemireWord<W>,
    R: RngCore + ?Sized,
{
    if range.is_zero() {
        return None;
    }
    let zone = range.zone(small_int);
    loop {
        let v = L::draw_word(rng);
        let (hi, lo) = v.wmul(range);
        if lo.le(zone) {
            return Some(hi);
        }
    }
}

/// The arithmetic `lemire` needs, implemented for u32 and u64 words.
trait LemireWord<W>: Copy + Standard {
    fn is_zero(self) -> bool;
    fn zone(self, small_int: bool) -> Self;
    fn wmul(self, range: Self) -> (Self, Self);
    fn le(self, other: Self) -> bool;
    fn draw_word<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl LemireWord<u64> for u32 {
    fn is_zero(self) -> bool {
        self == 0
    }

    fn zone(self, small_int: bool) -> u32 {
        if small_int {
            u32::MAX - (u32::MAX - self + 1) % self
        } else {
            (self << self.leading_zeros()).wrapping_sub(1)
        }
    }

    fn wmul(self, range: u32) -> (u32, u32) {
        let wide = u64::from(self) * u64::from(range);
        ((wide >> 32) as u32, wide as u32)
    }

    fn le(self, other: u32) -> bool {
        self <= other
    }

    fn draw_word<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl LemireWord<u128> for u64 {
    fn is_zero(self) -> bool {
        self == 0
    }

    fn zone(self, small_int: bool) -> u64 {
        if small_int {
            u64::MAX - (u64::MAX - self + 1) % self
        } else {
            (self << self.leading_zeros()).wrapping_sub(1)
        }
    }

    fn wmul(self, range: u64) -> (u64, u64) {
        let wide = u128::from(self) * u128::from(range);
        ((wide >> 64) as u64, wide as u64)
    }

    fn le(self, other: u64) -> bool {
        self <= other
    }

    fn draw_word<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

sample_range_int! {
    u8 => (u8, u32, u64),
    u16 => (u16, u32, u64),
    u32 => (u32, u32, u64),
    u64 => (u64, u64, u128),
    usize => (usize, u64, u128),
    i8 => (u8, u32, u64),
    i16 => (u16, u32, u64),
    i32 => (u32, u32, u64),
    i64 => (u64, u64, u128),
    isize => (usize, u64, u128),
}

impl SampleRange<f64> for std::ops::Range<f64> {
    // rand 0.8's UniformFloat::sample_single: generate in [1, 2) from the
    // mantissa bits, then scale — bit-exact with the real sampler.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let scale = self.end - self.start;
        let offset = self.start - scale;
        let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
        value1_2 * scale + offset
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    // The real inclusive float sampler nudges the scale by one ULP; the
    // workspace only uses exclusive float ranges, so the shim reuses the
    // exclusive path (the inclusive bound is hit with probability ~0).
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let scale = end - start;
        let offset = start - scale;
        let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
        value1_2 * scale + offset
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// A uniform draw from the given range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`; panics outside `[0, 1]` like the real
    /// `Bernoulli::new`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // rand 0.8's Bernoulli: fixed-point threshold in 1/2^64 steps;
        // p == 1 short-circuits without consuming a draw.
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }

    /// A uniform draw of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Random selection from slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles in place (Fisher–Yates, matching the real crate's order).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

/// rand 0.8's `seq::gen_index`: indices are sampled as `u32` (one u32
/// Lemire draw) whenever the bound fits, falling back to the full `usize`
/// path only for slices longer than `u32::MAX`. The word width decides how
/// much of the stream each draw consumes, so this is part of bit-exactness.
fn gen_index<R: Rng + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        (0..ubound as u32).sample_one(rng) as usize
    } else {
        (0..ubound).sample_one(rng)
    }
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(gen_index(rng, self.len()))
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = gen_index(rng, i + 1);
            self.swap(i, j);
        }
    }
}

/// The commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Pins the `seed_from_u64(0)` stream so future edits cannot silently
    /// change it. The stream matches `rand 0.8` / `rand_chacha 0.3`
    /// (ChaCha12 core, PCG32 seed expansion, block-buffer word order) —
    /// the repo's statistical reproduction tests, written against the
    /// real crate, pass unmodified against this generator.
    #[test]
    fn stream_is_pinned() {
        let mut rng = StdRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            [
                13_486_662_071_293_341_567,
                14_267_822_071_968_393_595,
                476_749_353_381_333_526,
                10_775_836_403_224_147_664,
            ]
        );
        let mut rng = StdRng::seed_from_u64(0);
        let got32: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        assert_eq!(
            got32,
            [3_442_241_407, 3_140_108_210, 2_384_947_579, 3_321_986_196]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Mixed 32/64-bit draws stay deterministic across the refill
        // boundary straddle at word 63.
        let mut c = StdRng::seed_from_u64(7);
        let mut d = StdRng::seed_from_u64(7);
        c.next_u32();
        d.next_u32();
        for _ in 0..100 {
            assert_eq!(c.next_u64(), d.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
            let b: u8 = rng.gen_range(128..=255);
            assert!(b >= 128);
        }
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    /// rand 0.8's `seq::gen_index` samples slice indices as `u32` when the
    /// bound fits, via `sample_single`'s one-word-per-round Lemire loop
    /// with the bit-shift approximation zone — not the u64/usize path.
    #[test]
    fn index_draws_use_the_u32_path() {
        fn emulate_gen_index(rng: &mut StdRng, len: u32) -> usize {
            let zone = (len << len.leading_zeros()).wrapping_sub(1);
            loop {
                let wide = u64::from(rng.next_u32()) * u64::from(len);
                if (wide as u32) <= zone {
                    return (wide >> 32) as usize;
                }
            }
        }
        let mut a = StdRng::seed_from_u64(3);
        let mut b = a.clone();
        let opts = [10u8, 20, 30, 40, 50];
        for _ in 0..1000 {
            let &chosen = opts.choose(&mut a).expect("non-empty");
            assert_eq!(chosen, opts[emulate_gen_index(&mut b, 5)]);
        }
        assert_eq!(a.next_u64(), b.next_u64(), "streams stay in lockstep");
    }

    /// For u8/u16 ranges rand 0.8 computes the rejection zone by exact
    /// modulus, so a range of 128 values rejects nothing: each draw is one
    /// u32 and the value is the Lemire high word.
    #[test]
    fn small_int_inclusive_ranges_use_exact_zone() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = a.clone();
        for _ in 0..1000 {
            let v: u8 = a.gen_range(128..=255);
            let hi = ((u64::from(b.next_u32()) * 128) >> 32) as u8;
            assert_eq!(v, 128 + hi);
        }
        assert_eq!(a.next_u64(), b.next_u64(), "streams stay in lockstep");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let options = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = options.choose(&mut rng).expect("non-empty");
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
