//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the shim `serde` crate's `to_value`/`from_value` traits. The parser is
//! hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote` available
//! offline) and supports exactly the shapes this workspace derives:
//! non-generic structs (unit, tuple, named) and enums whose variants are
//! unit (with optional discriminants), tuple, or struct-like. Anything
//! else — generics, `#[serde(...)]` attributes — is rejected with a
//! `compile_error!` so a silent wrong encoding can never ship.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or of one enum variant.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive shim produced invalid code: {e}\");")
            .parse()
            .expect("compile_error! parses")
    })
}

// ---------------------------------------------------------------------------
// Parsing

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let tok = self.tokens.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` attributes (including doc comments, which arrive in
    /// that form). Rejects `#[serde(...)]`, which the shim cannot honor.
    fn skip_attributes(&mut self) -> Result<(), String> {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let body = g.stream().to_string();
                    if body.starts_with("serde") {
                        return Err(
                            "the serde shim does not support #[serde(...)] attributes".into()
                        );
                    }
                }
                _ => return Err("malformed attribute".into()),
            }
        }
        Ok(())
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected {what}, found {other:?}")),
        }
    }

    /// Consumes tokens until a `,` at zero angle-bracket depth (for types
    /// and discriminants, where generic arguments may contain commas).
    fn skip_until_comma(&mut self) {
        let mut angle_depth: i32 = 0;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    cur.skip_attributes()?;
    cur.skip_visibility();
    let keyword = cur.expect_ident("`struct` or `enum`")?;
    let name = cur.expect_ident("type name")?;
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "the serde shim cannot derive for generic type `{name}`"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => {
            let shape = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => {
            let body = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        cur.skip_attributes()?;
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        let field = cur.expect_ident("field name")?;
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        cur.skip_until_comma();
        cur.next(); // the comma itself, if present
        fields.push(field);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    while !cur.at_end() {
        count += 1;
        cur.skip_until_comma();
        cur.next();
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.skip_attributes()?;
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident("variant name")?;
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                cur.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                cur.next();
                Shape::Tuple(count)
            }
            _ => Shape::Unit,
        };
        // Optional discriminant (`= 0b0001`), then the separating comma.
        cur.skip_until_comma();
        cur.next();
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                }
                Shape::Named(fields) => object_literal(fields, |f| format!("&self.{f}")),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::variant(\"{vname}\", ::serde::Serialize::to_value(__f0)),"
                        ),
                        Shape::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::variant(\"{vname}\", ::serde::Value::Array(::std::vec![{}])),",
                                binders.join(", "),
                                elems.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let payload = object_literal(fields, |f| f.to_string());
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::variant(\"{vname}\", {payload}),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn object_literal(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({}))",
                access(f)
            )
        })
        .collect();
    format!(
        "::serde::Value::Object(::std::vec![{}])",
        entries.join(", ")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => (name, de_struct_body(name, shape)),
        Item::Enum { name, variants } => (name, de_enum_body(name, variants)),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn de_struct_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => de_tuple_payload(name, *n, "__v", name),
        Shape::Named(fields) => de_named_payload(name, fields, "__v", name),
    }
}

/// `ctor` is the path to construct (e.g. `Foo` or `Foo::Bar`); `src` is the
/// expression holding the `&Value` payload; `context` names the type for
/// error messages.
fn de_tuple_payload(ctor: &str, n: usize, src: &str, context: &str) -> String {
    let elems: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&__elems[{i}])?"))
        .collect();
    format!(
        "{{\n\
             let __elems = {src}.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{context}\"))?;\n\
             if __elems.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\n\
                     ::std::format!(\"expected {n} elements for {context}, got {{}}\", __elems.len())));\n\
             }}\n\
             ::std::result::Result::Ok({ctor}({}))\n\
         }}",
        elems.join(", ")
    )
}

fn de_named_payload(ctor: &str, fields: &[String], src: &str, context: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::field(__obj, \"{f}\", \"{context}\")?"))
        .collect();
    format!(
        "{{\n\
             let __obj = {src}.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{context}\"))?;\n\
             ::std::result::Result::Ok({ctor} {{ {} }})\n\
         }}",
        inits.join(", ")
    )
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            let ctor = format!("{name}::{vname}");
            let context = format!("{name}::{vname}");
            match &v.shape {
                Shape::Unit => None,
                Shape::Tuple(1) => Some(format!(
                    "\"{vname}\" => ::std::result::Result::Ok({ctor}(::serde::Deserialize::from_value(__payload)?)),"
                )),
                Shape::Tuple(n) => {
                    Some(format!("\"{vname}\" => {},", de_tuple_payload(&ctor, *n, "__payload", &context)))
                }
                Shape::Named(fields) => {
                    Some(format!("\"{vname}\" => {},", de_named_payload(&ctor, fields, "__payload", &context)))
                }
            }
        })
        .collect();
    format!(
        "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
             match __s {{\n\
                 {unit}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\n\
                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
             }}\n\
         }} else if let ::std::option::Option::Some((__tag, __payload)) = __v.as_variant() {{\n\
             let _ = __payload;\n\
             match __tag {{\n\
                 {data}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\n\
                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
             }}\n\
         }} else {{\n\
             ::std::result::Result::Err(::serde::Error::expected(\"string or single-key object\", \"{name}\"))\n\
         }}",
        unit = unit_arms.join("\n"),
        data = data_arms.join("\n"),
    )
}
