//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of serde the workspace uses: `Serialize`/`Deserialize`
//! traits and the derive macros, modelled over a JSON-shaped [`Value`]
//! tree instead of serde's streaming visitors. The externally-tagged enum
//! representation matches serde's default, so artifacts stay
//! human-readable and stable across the shim/real-serde boundary.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data model every [`Serialize`] type lowers into.
///
/// Matches the JSON data model; `serde_json` renders and parses it.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Signed integers (covers every integer the workspace serializes).
    Int(i64),
    /// Unsigned integers above `i64::MAX`.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order (stable output for diffing).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(elems) => Some(elems),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Interprets a single-entry object as an externally-tagged enum
    /// variant: `{"Name": payload}`.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self.as_object() {
            Some([(name, payload)]) => Some((name.as_str(), payload)),
            _ => None,
        }
    }

    /// A short noun for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Compact JSON rendering (used by `serde_json` and `json!(...).to_string()`).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) => {
                if x.is_finite() {
                    // Keep a fractional part so floats survive a round trip
                    // as floats rather than re-parsing as integers.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no NaN/Infinity; serde_json maps them to null.
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_json_string(f, s),
            Value::Array(elems) => {
                f.write_str("[")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{8}' => f.write_str("\\b")?,
            '\u{c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Serialization/deserialization error: a message, as in `serde::de::Error`.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    /// "expected X while deserializing Y"-shaped error.
    pub fn expected(what: &str, context: &str) -> Error {
        Error {
            msg: format!("expected {what} while deserializing {context}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Lowers `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the value has the wrong shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Owned-deserialization alias used by `serde_json::from_str` bounds.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ---------------------------------------------------------------------------
// Helpers the derive macros call (public, but not part of the facade API).

/// Fetches and deserializes a named struct field.
///
/// A missing key falls back to deserializing from [`Value::Null`], so
/// `Option<T>` fields added after data was written read back as `None`
/// (serde's `#[serde(default)]`-for-`Option` convention); any type that
/// rejects null still reports the field as missing.
pub fn field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| Error::custom(format!("{context}.{name}: {e}")))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{name}` in {context}"))),
    }
}

/// Builds an externally-tagged enum variant value: `{"Name": payload}`.
pub fn variant(name: &str, payload: Value) -> Value {
    Value::Object(vec![(name.to_string(), payload)])
}

// ---------------------------------------------------------------------------
// Primitive impls.

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(Error::expected("integer", other.kind())),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u128;
                if wide <= i64::MAX as u128 { Value::Int(wide as i64) } else { Value::UInt(wide as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) if *i >= 0 => <$t>::try_from(*i as u64)
                        .map_err(|_| Error::custom(format!("integer {i} out of range for {}", stringify!($t)))),
                    Value::Int(i) => Err(Error::custom(format!("negative integer {i} for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    // Non-finite floats serialize as null (JSON has no NaN).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::expected("number", other.kind())),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other.kind())),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("string", v.kind()))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v.kind()))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v.kind()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N} elements, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let elems = v.as_array().ok_or_else(|| Error::expected("array", v.kind()))?;
                let arity = [$($idx),+].len();
                if elems.len() != arity {
                    return Err(Error::custom(format!("expected {arity}-tuple, got {} elements", elems.len())));
                }
                Ok(($($name::from_value(&elems[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for stable output; HashMap iteration order is arbitrary.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v.kind()))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v.kind()))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v.kind()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
