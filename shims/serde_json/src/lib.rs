//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON text over the shim `serde` crate's [`Value`]
//! tree. Supports the workspace's usage: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and the [`json!`] macro.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Never fails in the shim (serialization is total); the `Result` matches
/// the real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_string())
}

/// Serializes a value as human-readable JSON (two-space indent).
///
/// # Errors
///
/// Never fails in the shim; the `Result` matches the real crate.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Fails on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Lowers any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Fails on a shape mismatch with `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

// ---------------------------------------------------------------------------
// json! macro

/// Builds a [`Value`] from a JSON-shaped literal with interpolation.
///
/// Keys may be string literals or identifiers naming in-scope `&str`/
/// `String` expressions (the subset the workspace uses).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::value_of(&$elem) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![ $( ($crate::key_of($key), $crate::value_of(&$val)) ),* ])
    };
    ($other:expr) => { $crate::value_of(&$other) };
}

/// Support function for [`json!`]: lowers an interpolated expression.
pub fn value_of<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Support function for [`json!`]: accepts literal and identifier keys.
pub fn key_of(k: impl Into<String>) -> String {
    k.into()
}

// ---------------------------------------------------------------------------
// Pretty printer

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: &str = "  ";
    match v {
        Value::Array(elems) if !elems.is_empty() => {
            out.push_str("[\n");
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(e, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                out.push_str(&Value::Str(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        leaf => out.push_str(&leaf.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Parser

fn parse_value(text: &str) -> Result<Value> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut elems = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(elems));
            }
            loop {
                elems.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(elems));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let value = parse_at(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid token at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        // Surrogate pairs are not produced by the writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| Error::new("unterminated string"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"a":[1,2.5,null,true],"b":{"c":"x\ny"},"d":-7}"#;
        let v: Value = from_str::<Value>(text).expect("parses");
        let re = to_string(&v).expect("prints");
        let v2: Value = from_str::<Value>(&re).expect("reparses");
        assert_eq!(v, v2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not json at all").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn pretty_output_reparses() {
        let v = json!({ "k": [1, 2, 3], "s": "hi" });
        let pretty = to_string_pretty(&v).expect("prints");
        assert_eq!(from_str::<Value>(&pretty).expect("parses"), v);
    }
}
