//! Offline stand-in for `proptest`.
//!
//! Implements the API subset the workspace's property tests use: the
//! [`proptest!`] macro with `name in strategy` and `name: Type` argument
//! forms, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and the range,
//! `sample::select`, `collection::vec`, and `prop_map` strategies.
//!
//! Differences from the real crate, by design: sampling is plain random
//! draws with **no shrinking** — a failure reports the sampled inputs
//! rather than a minimized counterexample — and the per-property case
//! count defaults to 64 (override with the `PROPTEST_CASES` environment
//! variable or `ProptestConfig::with_cases`).

#![forbid(unsafe_code)]

/// Test-run plumbing: the RNG, case errors, and configuration.
pub mod test_runner {
    /// SplitMix64 generator driving all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator from an explicit seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// A generator seeded from the test name, so each property draws
        /// an independent but reproducible stream.
        pub fn from_name(name: &str) -> TestRng {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            TestRng::new(hash)
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property is false for these inputs.
        Fail(String),
        /// The inputs don't satisfy a `prop_assume!` precondition.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (filtered-out) case.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Per-property configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for sampling values of one type.
    pub trait Strategy {
        /// The type of sampled values.
        type Value;

        /// Draws one value.
        fn pick(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy that post-processes sampled values.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn pick(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.pick(rng))
        }
    }

    macro_rules! strategy_for_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! strategy_for_tuples {
        ($(($($S:ident . $idx:tt),+);)*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn pick(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.pick(rng),)+)
                }
            }
        )*};
    }

    strategy_for_tuples! {
        (S0.0, S1.1);
        (S0.0, S1.1, S2.2);
        (S0.0, S1.1, S2.2, S3.3);
        (S0.0, S1.1, S2.2, S3.3, S4.4);
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8);
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9);
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn pick(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }
}

/// `any::<T>()` and the types it can sample.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// See [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn pick(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Sampling from explicit option sets.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy drawing uniformly from the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn pick(&self, rng: &mut TestRng) -> T {
            self.options[rng.next_u64() as usize % self.options.len()].clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification: a fixed size or a half-open range.
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// A strategy for vectors whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.elem.pick(rng)).collect()
        }
    }
}

/// The commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::sample::Select;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each function body runs for the configured
/// number of cases with fresh samples bound to its arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` in a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr) $(#[$meta:meta])* fn $name:ident ( $($args:tt)* ) $body:block $($rest:tt)* ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __cfg.cases {
                match $crate::__proptest_case!(__rng, $body, $($args)*) {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= __cfg.cases.saturating_mul(64),
                            "{}: too many prop_assume rejections ({} passed)",
                            stringify!($name),
                            __passed,
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!("property {} failed: {}", stringify!($name), __msg);
                    }
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Internal: binds one sampled argument, then recurses; failures are
/// annotated with each sampled input on the way out.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, $body:block, ) => {
        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
            $body
            #[allow(unreachable_code)]
            ::std::result::Result::Ok(())
        })()
    };
    ($rng:ident, $body:block, $name:ident in $strat:expr) => {
        $crate::__proptest_case!($rng, $body, $name in $strat,)
    };
    ($rng:ident, $body:block, $name:ident in $strat:expr, $($rest:tt)*) => {{
        let $name = $crate::strategy::Strategy::pick(&($strat), &mut $rng);
        let __shown = ::std::format!("{} = {:?}", stringify!($name), &$name);
        $crate::__proptest_annotate!($crate::__proptest_case!($rng, $body, $($rest)*), __shown)
    }};
    ($rng:ident, $body:block, $name:ident : $ty:ty) => {
        $crate::__proptest_case!($rng, $body, $name : $ty,)
    };
    ($rng:ident, $body:block, $name:ident : $ty:ty, $($rest:tt)*) => {{
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        let __shown = ::std::format!("{} = {:?}", stringify!($name), &$name);
        $crate::__proptest_annotate!($crate::__proptest_case!($rng, $body, $($rest)*), __shown)
    }};
}

/// Internal: appends an input description to a failing case's message.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_annotate {
    ($outcome:expr, $shown:ident) => {
        match $outcome {
            ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__m)) => {
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                    ::std::format!("{}\n    with {}", __m, $shown),
                ))
            }
            __other => __other,
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        $crate::prop_assert_eq!($left, $right, "values are not equal")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "{}: `{:?}` != `{:?}`",
                            ::std::format!($($fmt)+),
                            __l,
                            __r,
                        ),
                    ));
                }
            }
        }
    };
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!("values are equal: `{:?}`", __l),
                    ));
                }
            }
        }
    };
}

/// Rejects the current case (not a failure) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
