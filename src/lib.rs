//! `critics` — facade crate for the CritICs (MICRO 2018) reproduction.
//!
//! Re-exports every subsystem crate under one roof so examples and
//! integration tests can `use critics::...`. See the workspace `README.md`
//! for the architecture overview and `DESIGN.md` for the per-experiment map.

#![forbid(unsafe_code)]

pub use critic_compiler as compiler;
pub use critic_core as core;
pub use critic_energy as energy;
pub use critic_isa as isa;
pub use critic_mem as mem;
pub use critic_obs as obs;
pub use critic_pipeline as pipeline;
pub use critic_profiler as profiler;
pub use critic_workloads as workloads;
