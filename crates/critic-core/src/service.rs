//! The long-lived campaign service behind `critic serve`: bounded
//! admission, a work-stealing worker pool, per-app circuit breakers with
//! half-open probing, a queue-depth degradation ladder, and graceful
//! drain.
//!
//! The robustness invariants, in submission order:
//!
//! 1. **Admission before queueing** — a request is rejected with an
//!    explicit `retry_after` hint ([`SubmitOutcome::Rejected`]) by the
//!    per-client in-flight window ([`ClientWindows`]), the bounded queue
//!    ([`ServiceConfig::queue_capacity`]), or the token bucket
//!    ([`TokenBucket`]) *before* it consumes a queue slot, so sustained
//!    overload sheds load instead of growing memory.
//! 2. **Breakers shed synchronously** — an open per-app breaker
//!    ([`Breaker`]) answers with a journaled `Shed` record without
//!    touching the pool, and lets one deterministic probe cell through
//!    half-open so a recovered app closes its breaker without a restart.
//! 3. **Ack follows fsync** — a cell's journal append (flush + fsync)
//!    completes before its response is handed to the responder, so every
//!    acknowledged result survives a `SIGKILL` (the soak's no-lost-ack
//!    invariant).
//! 4. **Drain terminates** — [`CampaignService::drain`] refuses new work,
//!    waits for queued + in-flight to reach zero (worker jobs are
//!    panic-isolated, so a poisoned job cannot stick the counters), then
//!    checkpoints the journal and appends the store/telemetry trailers.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use critic_obs::{EventKind, SpanKind, Telemetry, TelemetrySnapshot};
use critic_workloads::suite::Suite;
use critic_workloads::{AppSpec, SysFault, SysInjector, SysOp};

use crate::campaign::{run_service_attempt, CellRecord, CellStatus, Scheme};
use crate::design::DesignPoint;
use crate::error::RunError;
use crate::journal::Journal;
use crate::store::{ArtifactStore, StoreStats};

/// Recovers the guard from a poisoned lock; service state is only mutated
/// by whole-value operations, so a panicked sibling cannot leave it
/// half-written.
fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A token bucket over millitoken integers: `capacity` whole tokens of
/// burst, refilled continuously at `rate` tokens per second. One request
/// costs one token (1000 millitokens).
///
/// All state is unsigned and the take is a guarded subtraction, so the
/// level can never go negative — the accounting property the service
/// proptest exercises through [`TokenBucket::try_take_at`].
pub struct TokenBucket {
    capacity_milli: u64,
    nanos_per_milli: u64,
    base: Instant,
    state: Mutex<BucketState>,
}

struct BucketState {
    level_milli: u64,
    last_nanos: u64,
}

impl TokenBucket {
    /// A bucket holding at most `capacity` tokens (clamped to >= 1),
    /// refilled at `rate` tokens/second (clamped to >= 1). Starts full.
    pub fn new(capacity: u64, rate: u64) -> TokenBucket {
        let capacity_milli = capacity.max(1).saturating_mul(1000);
        // Nanoseconds to mint one millitoken; clamped so absurd rates
        // still refill (at most one millitoken per nanosecond).
        let nanos_per_milli = (1_000_000_000u128 / u128::from(rate.max(1)) / 1000)
            .clamp(1, u128::from(u64::MAX)) as u64;
        TokenBucket {
            capacity_milli,
            nanos_per_milli,
            base: Instant::now(),
            state: Mutex::new(BucketState {
                level_milli: capacity_milli,
                last_nanos: 0,
            }),
        }
    }

    /// Takes one token against the wall clock.
    pub fn try_take(&self) -> Result<(), u64> {
        self.try_take_at(self.base.elapsed().as_nanos() as u64)
    }

    /// Takes one token at explicit time `now_nanos` (monotonic; an
    /// out-of-order timestamp refills nothing and is otherwise harmless).
    /// `Err` carries the earliest retry hint in milliseconds (>= 1).
    pub fn try_take_at(&self, now_nanos: u64) -> Result<(), u64> {
        let mut state = lock_clean(&self.state);
        let elapsed = now_nanos.saturating_sub(state.last_nanos);
        let minted = elapsed / self.nanos_per_milli;
        if minted > 0 {
            // Advance by whole millitokens only: the remainder nanoseconds
            // stay banked in `last_nanos`, so refill never loses credit.
            state.last_nanos += minted * self.nanos_per_milli;
            state.level_milli = state
                .level_milli
                .saturating_add(minted)
                .min(self.capacity_milli);
        }
        if state.level_milli >= 1000 {
            state.level_milli -= 1000;
            Ok(())
        } else {
            let needed = 1000 - state.level_milli;
            let retry_nanos = u128::from(needed) * u128::from(self.nanos_per_milli);
            Err(((retry_nanos.div_ceil(1_000_000)) as u64).max(1))
        }
    }

    /// Current level in millitokens (test/diagnostic hook).
    pub fn millitokens(&self) -> u64 {
        lock_clean(&self.state).level_milli
    }
}

/// Bounded per-client in-flight windows: a client may have at most
/// `max_in_flight` accepted-but-unanswered submissions. `0` disables the
/// bound.
pub struct ClientWindows {
    max_in_flight: usize,
    state: Mutex<HashMap<u64, usize>>,
}

impl ClientWindows {
    /// Windows of `max_in_flight` (0 = unlimited).
    pub fn new(max_in_flight: usize) -> ClientWindows {
        ClientWindows {
            max_in_flight,
            state: Mutex::new(HashMap::new()),
        }
    }

    /// Claims one in-flight slot for `client`; `false` when the window is
    /// full.
    pub fn try_open(&self, client: u64) -> bool {
        if self.max_in_flight == 0 {
            return true;
        }
        let mut state = lock_clean(&self.state);
        let slot = state.entry(client).or_insert(0);
        if *slot >= self.max_in_flight {
            false
        } else {
            *slot += 1;
            true
        }
    }

    /// Releases one in-flight slot for `client`.
    pub fn close(&self, client: u64) {
        if self.max_in_flight == 0 {
            return;
        }
        let mut state = lock_clean(&self.state);
        if let Some(slot) = state.get_mut(&client) {
            *slot = slot.saturating_sub(1);
            if *slot == 0 {
                state.remove(&client);
            }
        }
    }

    /// In-flight submissions for `client` (test/diagnostic hook).
    pub fn in_flight(&self, client: u64) -> usize {
        lock_clean(&self.state).get(&client).copied().unwrap_or(0)
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolInner {
    queues: Vec<Mutex<VecDeque<Job>>>,
    gate: Mutex<()>,
    work_ready: Condvar,
    idle: Condvar,
    queued: AtomicUsize,
    in_flight: AtomicUsize,
    stop: AtomicBool,
    next: AtomicUsize,
}

/// A bounded-worker work-stealing pool: each worker owns a deque, pops its
/// own front, and steals a sibling's back when empty. Jobs run behind a
/// panic-isolation boundary, so a panicking job can never stick the
/// queued/in-flight counters [`WorkPool::drain`] waits on.
pub struct WorkPool {
    inner: Arc<PoolInner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkPool {
    /// Spawns `workers` (clamped to >= 1) worker threads.
    pub fn new(workers: usize) -> WorkPool {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(()),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            queued: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            next: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|index| {
                let inner = Arc::clone(&inner);
                thread::spawn(move || worker_loop(&inner, index))
            })
            .collect();
        WorkPool {
            inner,
            handles: Mutex::new(handles),
        }
    }

    /// Enqueues one job (round-robin across worker deques); `false` when
    /// the pool has already been stopped by [`WorkPool::drain`].
    pub fn submit(&self, job: Job) -> bool {
        if self.inner.stop.load(Ordering::SeqCst) {
            return false;
        }
        // Count before enqueueing: a drain racing this submit must never
        // observe the job in a queue while `queued` still reads 0.
        self.inner.queued.fetch_add(1, Ordering::SeqCst);
        let index = self.inner.next.fetch_add(1, Ordering::Relaxed) % self.inner.queues.len();
        lock_clean(&self.inner.queues[index]).push_back(job);
        self.inner.work_ready.notify_all();
        true
    }

    /// Jobs enqueued but not yet claimed by a worker.
    pub fn queued(&self) -> usize {
        self.inner.queued.load(Ordering::SeqCst)
    }

    /// Jobs currently executing.
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::SeqCst)
    }

    /// Waits for every queued and in-flight job to finish, then stops and
    /// joins the workers. Always terminates provided the jobs themselves
    /// do: the waits are timeout-polled, so no notification can be missed
    /// forever, and job panics are trapped before the counter decrement.
    pub fn drain(&self) {
        let mut gate = lock_clean(&self.inner.gate);
        while self.inner.queued.load(Ordering::SeqCst) > 0
            || self.inner.in_flight.load(Ordering::SeqCst) > 0
        {
            let (guard, _) = self
                .inner
                .idle
                .wait_timeout(gate, Duration::from_millis(20))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            gate = guard;
        }
        drop(gate);
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.work_ready.notify_all();
        for handle in lock_clean(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Arc<PoolInner>, index: usize) {
    loop {
        // Own deque front first; steal a sibling's back otherwise.
        let mut job = lock_clean(&inner.queues[index]).pop_front();
        if job.is_none() {
            for offset in 1..inner.queues.len() {
                let victim = (index + offset) % inner.queues.len();
                job = lock_clean(&inner.queues[victim]).pop_back();
                if job.is_some() {
                    break;
                }
            }
        }
        match job {
            Some(job) => {
                // Claim before un-counting from the queue so a drain can
                // never observe "no work anywhere" while this job runs.
                inner.in_flight.fetch_add(1, Ordering::SeqCst);
                inner.queued.fetch_sub(1, Ordering::SeqCst);
                let _ = catch_unwind(AssertUnwindSafe(job));
                inner.in_flight.fetch_sub(1, Ordering::SeqCst);
                inner.idle.notify_all();
            }
            None => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                let gate = lock_clean(&inner.gate);
                let _ = inner
                    .work_ready
                    .wait_timeout(gate, Duration::from_millis(20))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }
}

/// What the breaker decided for one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Breaker closed: run the cell normally.
    Run,
    /// Breaker half-open: run this one cell as the deterministic probe.
    Probe,
    /// Breaker open: shed the cell without running it.
    Shed,
}

#[derive(Clone, Copy)]
enum Phase {
    Closed,
    Open { shed_since_probe: u32 },
    HalfOpen,
}

#[derive(Clone, Copy)]
struct BreakerState {
    consecutive: u32,
    phase: Phase,
}

/// Per-app circuit breaker with half-open probing, shared by the batch
/// campaign runner and the service.
///
/// `threshold` consecutive terminal failures of one app's cells trip its
/// breaker (one [`EventKind::Trip`] per trip). An open breaker grants the
/// *next* submission through as a deterministic half-open probe
/// ([`BreakerDecision::Probe`]); a successful probe closes the breaker
/// again with one [`EventKind::Reset`], while a failed probe silently
/// re-opens it, after which `threshold` submissions are shed before the
/// next probe is granted — so a persistently broken app sheds at a duty
/// cycle of one probe per `threshold` sheds instead of shedding forever.
pub struct Breaker {
    threshold: u32,
    /// app name -> breaker state.
    state: Mutex<HashMap<String, BreakerState>>,
}

impl Breaker {
    /// A breaker tripping after `threshold` consecutive failures
    /// (0 disables it: every submission runs).
    pub fn new(threshold: u32) -> Breaker {
        Breaker {
            threshold,
            state: Mutex::new(HashMap::new()),
        }
    }

    /// Decides one submission for `app`. The caller counts
    /// [`EventKind::Probe`] on a `Probe` decision and [`EventKind::Shed`]
    /// (plus the shed record) on `Shed`.
    pub fn admit(&self, app: &str) -> BreakerDecision {
        if self.threshold == 0 {
            return BreakerDecision::Run;
        }
        let mut state = lock_clean(&self.state);
        let entry = state.entry(app.to_string()).or_insert(BreakerState {
            consecutive: 0,
            phase: Phase::Closed,
        });
        match entry.phase {
            Phase::Closed => BreakerDecision::Run,
            // A probe is already in flight (or its verdict not yet fed
            // back): don't stack probes.
            Phase::HalfOpen => BreakerDecision::Shed,
            Phase::Open { shed_since_probe } => {
                if shed_since_probe >= self.threshold {
                    entry.phase = Phase::HalfOpen;
                    BreakerDecision::Probe
                } else {
                    entry.phase = Phase::Open {
                        shed_since_probe: shed_since_probe + 1,
                    };
                    BreakerDecision::Shed
                }
            }
        }
    }

    /// Feeds one finished cell back. Shed records are not evidence either
    /// way (the cell never ran); Ok closes the window — and, from
    /// half-open or open, closes the breaker with one
    /// [`EventKind::Reset`].
    pub fn on_record(&self, record: &CellRecord, telemetry: &Telemetry) {
        if self.threshold == 0 || record.status == CellStatus::Shed {
            return;
        }
        let mut state = lock_clean(&self.state);
        let entry = state.entry(record.app.clone()).or_insert(BreakerState {
            consecutive: 0,
            phase: Phase::Closed,
        });
        if record.status == CellStatus::Ok {
            match entry.phase {
                Phase::Closed => entry.consecutive = 0,
                _ => {
                    entry.phase = Phase::Closed;
                    entry.consecutive = 0;
                    telemetry.event(EventKind::Reset);
                }
            }
            return;
        }
        match entry.phase {
            // The failed probe: re-open silently (the breaker already
            // tripped once; a second Trip would double-count) and earn the
            // next probe only after `threshold` sheds.
            Phase::HalfOpen => {
                entry.phase = Phase::Open {
                    shed_since_probe: 0,
                }
            }
            // A pre-trip in-flight cell finishing late: already open.
            Phase::Open { .. } => {}
            Phase::Closed => {
                entry.consecutive += 1;
                if entry.consecutive >= self.threshold {
                    // Seed the shed count at the threshold so the very
                    // next submission is granted the probe.
                    entry.phase = Phase::Open {
                        shed_since_probe: self.threshold,
                    };
                    telemetry.event(EventKind::Trip);
                }
            }
        }
    }
}

/// Configuration of a [`CampaignService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Dynamic instructions per cell execution.
    pub trace_len: usize,
    /// Worker threads (clamped to >= 1).
    pub workers: usize,
    /// Run cells through the translation-validation oracle (dropped at
    /// degradation level >= 1).
    pub validate: bool,
    /// Server-side per-cell deadline; the effective deadline is the
    /// minimum of this and the request's own `deadline_ms`.
    pub deadline: Option<Duration>,
    /// Maximum queued (not yet claimed) cells before submissions are
    /// rejected; 0 = unbounded.
    pub queue_capacity: usize,
    /// Queue-depth watermarks driving the load-shedding ladder: depth >=
    /// `[0]` runs cells at degradation level 1 (drop validate), >= `[1]`
    /// level 2 (drop per-cell telemetry), >= `[2]` level 3 (baseline
    /// design point). A zero entry disables that rung.
    pub degrade_watermarks: [usize; 3],
    /// Token-bucket refill in requests/second; 0 disables admission
    /// rate-limiting.
    pub admission_rate: u64,
    /// Token-bucket burst capacity in requests.
    pub admission_burst: u64,
    /// Per-client in-flight window; 0 = unlimited.
    pub client_window: usize,
    /// Per-app circuit-breaker threshold; 0 disables breakers.
    pub breaker_threshold: u32,
    /// Journal path; `None` disables journaling (and with it the
    /// no-lost-ack guarantee).
    pub journal: Option<PathBuf>,
    /// Cell records per journal segment before rolling; 0 = unbounded.
    pub segment_max_lines: usize,
    /// Persistent artifact-store root; `None` = in-memory only.
    pub store_dir: Option<PathBuf>,
    /// Disk-store byte budget (`None` = unbounded).
    pub store_budget: Option<u64>,
    /// Run tag stamped on every journaled record of this server process.
    pub run_tag: Option<u64>,
    /// Streaming window for cell execution: `Some(n)` runs every cell's
    /// trace through the chunked streaming pipeline (`n` instructions per
    /// window, O(window) memory per worker) instead of materializing it.
    /// `None` keeps the materialized path. Results are bit-identical
    /// either way.
    pub stream_window: Option<usize>,
    /// Service-wide telemetry sink.
    pub telemetry: Telemetry,
    /// Systemic-fault injector (soak noise); `None` = no taps.
    pub sys: Option<Arc<SysInjector>>,
}

impl ServiceConfig {
    /// Defaults tuned for a small host: 0 workers (machine parallelism),
    /// a 256-cell queue, watermarks at 32/64/128, 64-request burst at 32
    /// requests/second, 32-deep client windows, breakers at 3.
    pub fn new(trace_len: usize) -> ServiceConfig {
        ServiceConfig {
            trace_len,
            workers: 0,
            validate: false,
            deadline: None,
            queue_capacity: 256,
            degrade_watermarks: [32, 64, 128],
            admission_rate: 32,
            admission_burst: 64,
            client_window: 32,
            breaker_threshold: 3,
            journal: None,
            segment_max_lines: 0,
            store_dir: None,
            store_budget: None,
            run_tag: None,
            stream_window: None,
            telemetry: Telemetry::from_env(),
            sys: None,
        }
    }
}

/// The decision [`CampaignService::submit`] returns synchronously.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The request was admitted; the responder will be called exactly once
    /// with the terminal [`CellRecord`] (which may be a `Shed` record when
    /// the app's breaker is open).
    Accepted,
    /// The request was refused by admission control; nothing was queued
    /// and the responder will never be called.
    Rejected {
        /// Why (`draining`, `queue full`, `rate limited`, ...).
        reason: String,
        /// Earliest sensible retry, milliseconds.
        retry_after_ms: u64,
    },
}

struct ServiceInner {
    config: ServiceConfig,
    store: Arc<ArtifactStore>,
    journal: Option<Journal>,
    pool: WorkPool,
    bucket: Option<TokenBucket>,
    windows: ClientWindows,
    breaker: Breaker,
    draining: AtomicBool,
    accepted: AtomicU64,
    responded: AtomicU64,
}

/// The long-lived campaign service: shared persistent store + journal, a
/// work-stealing pool, and the admission stack documented at module level.
/// Cloneable; all clones share one service.
#[derive(Clone)]
pub struct CampaignService {
    inner: Arc<ServiceInner>,
}

impl CampaignService {
    /// Opens the service: store (persistent when
    /// [`ServiceConfig::store_dir`] is set), journal (recovered the same
    /// way a resumed campaign recovers it), and worker pool.
    pub fn open(config: ServiceConfig) -> Result<CampaignService, RunError> {
        let store = match &config.store_dir {
            Some(dir) => Arc::new(
                ArtifactStore::persistent(dir, config.store_budget, config.telemetry.clone())
                    .map_err(|e| RunError::Store(e.to_string()))?,
            ),
            None => Arc::new(ArtifactStore::new()),
        };
        if config.sys.is_some() {
            store.set_sys_injector(config.sys.clone());
        }
        let journal = match &config.journal {
            Some(path) => {
                let (journal, _) =
                    Journal::open(path, config.segment_max_lines, config.telemetry.clone())
                        .map_err(|e| RunError::Journal(e.to_string()))?;
                Some(journal)
            }
            None => None,
        };
        let workers = if config.workers > 0 {
            config.workers
        } else {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        };
        let pool = WorkPool::new(workers);
        let bucket = (config.admission_rate > 0)
            .then(|| TokenBucket::new(config.admission_burst, config.admission_rate));
        let windows = ClientWindows::new(config.client_window);
        let breaker = Breaker::new(config.breaker_threshold);
        Ok(CampaignService {
            inner: Arc::new(ServiceInner {
                store,
                journal,
                pool,
                bucket,
                windows,
                breaker,
                draining: AtomicBool::new(false),
                accepted: AtomicU64::new(0),
                responded: AtomicU64::new(0),
                config,
            }),
        })
    }

    /// Submits one cell on behalf of `client`. Admission control runs
    /// synchronously; an accepted request's responder is called exactly
    /// once from a worker thread, *after* the record's journal append has
    /// been fsynced.
    pub fn submit(
        &self,
        client: u64,
        app_name: &str,
        scheme_name: &str,
        deadline_ms: Option<u64>,
        respond: impl FnOnce(CellRecord) + Send + 'static,
    ) -> SubmitOutcome {
        let inner = &self.inner;
        let telemetry = &inner.config.telemetry;
        let reject = |reason: &str, retry_after_ms: u64| {
            telemetry.event(EventKind::Reject);
            SubmitOutcome::Rejected {
                reason: reason.to_string(),
                retry_after_ms,
            }
        };
        if inner.draining.load(Ordering::SeqCst) {
            return reject("draining: server is shutting down", 1000);
        }
        let Some(app) = find_app(app_name) else {
            return reject(&format!("unknown app `{app_name}`"), 0);
        };
        let Some(point) = DesignPoint::named(scheme_name) else {
            return reject(&format!("unknown scheme `{scheme_name}`"), 0);
        };
        let scheme = Scheme {
            name: scheme_name.to_string(),
            point,
        };
        if !inner.windows.try_open(client) {
            return reject("client window full: too many in-flight requests", 20);
        }
        // Every path below must release the window slot exactly once.
        let queued = inner.pool.queued();
        if inner.config.queue_capacity > 0 && queued >= inner.config.queue_capacity {
            inner.windows.close(client);
            return reject("queue full", 50);
        }
        if let Some(bucket) = &inner.bucket {
            if let Err(retry_after_ms) = bucket.try_take() {
                inner.windows.close(client);
                return reject("rate limited", retry_after_ms);
            }
        }
        match inner.breaker.admit(&app.name) {
            BreakerDecision::Shed => {
                // Shed synchronously: journaled (fsync before the ack,
                // like any record), answered, never queued.
                let record = shed_record(
                    &app.name,
                    &scheme.name,
                    format!("circuit breaker open for app `{}`", app.name),
                    inner.config.run_tag,
                );
                telemetry.event(EventKind::Shed);
                if let Some(journal) = &inner.journal {
                    journal.append_cell(&record, inner.config.sys.as_ref());
                }
                inner.accepted.fetch_add(1, Ordering::Relaxed);
                respond(record);
                inner.responded.fetch_add(1, Ordering::Relaxed);
                inner.windows.close(client);
                return SubmitOutcome::Accepted;
            }
            BreakerDecision::Probe => telemetry.event(EventKind::Probe),
            BreakerDecision::Run => {}
        }
        telemetry.event(EventKind::Admit);
        telemetry.queue_depth(queued as u64 + 1);
        let service = Arc::clone(inner);
        let job = Box::new(move || {
            run_submitted(&service, client, &app, &scheme, deadline_ms, respond);
        });
        if inner.pool.submit(job) {
            inner.accepted.fetch_add(1, Ordering::Relaxed);
            SubmitOutcome::Accepted
        } else {
            // The pool stopped between the draining check and here.
            inner.windows.close(client);
            reject("draining: server is shutting down", 1000)
        }
    }

    /// Whether [`CampaignService::drain`] has begun (or an injected
    /// [`SysFault::Kill`] requested shutdown).
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Cells queued but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        self.inner.pool.queued()
    }

    /// Cells currently executing.
    pub fn in_flight(&self) -> usize {
        self.inner.pool.in_flight()
    }

    /// Requests accepted (admitted or synchronously shed) so far.
    pub fn accepted(&self) -> u64 {
        self.inner.accepted.load(Ordering::Relaxed)
    }

    /// Terminal responses delivered so far.
    pub fn responded(&self) -> u64 {
        self.inner.responded.load(Ordering::Relaxed)
    }

    /// The service-wide telemetry snapshot (None when telemetry is off).
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        self.inner.config.telemetry.snapshot()
    }

    /// The artifact store's counters (includes the disk tier's when
    /// persistent).
    pub fn store_stats(&self) -> StoreStats {
        self.inner.store.stats()
    }

    /// The service's artifact store — the peer-rebuild wire verbs
    /// (`fetch_artifact`, `list_artifacts`) serve and ingest persistent
    /// entries through it.
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.inner.store
    }

    /// Graceful drain: refuse new work, finish every queued and in-flight
    /// cell, append the store and telemetry trailers, and write a durable
    /// journal checkpoint. Terminates provided cells do (see
    /// [`WorkPool::drain`]).
    pub fn drain(&self) {
        let inner = &self.inner;
        inner.draining.store(true, Ordering::SeqCst);
        inner.pool.drain();
        if let Some(journal) = &inner.journal {
            journal.checkpoint();
            let store_stats = inner.store.stats();
            if store_stats.disk.is_some() {
                let record = crate::campaign::CampaignStoreRecord {
                    campaign_store: store_stats,
                };
                if let Ok(line) = serde_json::to_string(&record) {
                    journal.append_trailer(&line, inner.config.sys.as_ref());
                }
            }
            if let Some(snapshot) = inner.config.telemetry.snapshot() {
                let record = crate::campaign::CampaignTelemetryRecord {
                    campaign_telemetry: snapshot,
                };
                if let Ok(line) = serde_json::to_string(&record) {
                    journal.append_trailer(&line, inner.config.sys.as_ref());
                }
            }
        }
        if inner.config.sys.is_some() {
            inner.store.set_sys_injector(None);
        }
    }
}

/// The worker-side body of one admitted submission: pick the degradation
/// level from the queue depth *now* (at claim time, when shedding load
/// actually helps), run the attempt, feed the breaker, journal (fsync)
/// and only then respond.
fn run_submitted(
    inner: &Arc<ServiceInner>,
    client: u64,
    app: &AppSpec,
    scheme: &Scheme,
    deadline_ms: Option<u64>,
    respond: impl FnOnce(CellRecord) + Send + 'static,
) {
    let telemetry = &inner.config.telemetry;
    let depth = inner.pool.queued();
    let level = degrade_level(&inner.config.degrade_watermarks, depth);
    if level > 0 {
        telemetry.events(EventKind::Degrade, u64::from(level));
    }
    let deadline = match (inner.config.deadline, deadline_ms) {
        (Some(server), Some(request)) => Some(server.min(Duration::from_millis(request))),
        (Some(server), None) => Some(server),
        (None, Some(request)) => Some(Duration::from_millis(request)),
        (None, None) => None,
    };
    let record = telemetry.time(SpanKind::Request, || {
        run_service_attempt(
            app,
            scheme,
            inner.config.trace_len,
            inner.config.validate,
            deadline,
            level,
            inner.config.stream_window,
            &inner.store,
            telemetry,
            inner.config.sys.as_ref(),
            inner.config.run_tag,
        )
    });
    inner.breaker.on_record(&record, telemetry);
    if let Some(sys) = &inner.config.sys {
        for fault in sys.advance_or_crash(SysOp::CellDone) {
            telemetry.event(EventKind::SysFault);
            if fault == SysFault::Kill {
                inner.draining.store(true, Ordering::SeqCst);
            }
        }
    }
    // Journal (flush + fsync inside) strictly before the ack: a response
    // the client saw is a record a restart will replay.
    if let Some(journal) = &inner.journal {
        journal.append_cell(&record, inner.config.sys.as_ref());
    }
    respond(record);
    inner.responded.fetch_add(1, Ordering::Relaxed);
    inner.windows.close(client);
}

/// The degradation level the current queue depth calls for: the highest
/// rung whose (non-zero) watermark the depth has reached.
fn degrade_level(watermarks: &[usize; 3], depth: usize) -> u8 {
    let mut level = 0u8;
    for (rung, &mark) in watermarks.iter().enumerate() {
        if mark > 0 && depth >= mark {
            level = rung as u8 + 1;
        }
    }
    level
}

/// Case-insensitive app lookup across every suite.
fn find_app(name: &str) -> Option<AppSpec> {
    Suite::ALL
        .iter()
        .flat_map(|s| s.apps())
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

/// A `Shed` record for a submission that never ran (open breaker).
fn shed_record(app: &str, scheme: &str, reason: String, run: Option<u64>) -> CellRecord {
    CellRecord {
        app: app.to_string(),
        scheme: scheme.to_string(),
        status: CellStatus::Shed,
        attempts: 0,
        millis: 0,
        fault: None,
        metrics: None,
        error: Some(RunError::Shed(reason)),
        validation: None,
        spans: None,
        degraded: None,
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn token_bucket_burst_then_rate() {
        let bucket = TokenBucket::new(2, 10); // 2 burst, 10/s = one per 100ms
        assert!(bucket.try_take_at(0).is_ok());
        assert!(bucket.try_take_at(0).is_ok());
        let retry = bucket.try_take_at(0).expect_err("burst exhausted");
        assert!((1..=100).contains(&retry), "retry hint {retry}");
        // 100ms later exactly one token has been minted.
        assert!(bucket.try_take_at(100_000_000).is_ok());
        assert!(bucket.try_take_at(100_000_000).is_err());
        // Refill never exceeds capacity.
        assert!(bucket.try_take_at(10_000_000_000).is_ok());
        assert!(bucket.try_take_at(10_000_000_000).is_ok());
        assert!(bucket.try_take_at(10_000_000_000).is_err());
    }

    #[test]
    fn token_bucket_tolerates_time_going_backwards() {
        let bucket = TokenBucket::new(1, 1);
        assert!(bucket.try_take_at(5_000_000_000).is_ok());
        // An out-of-order timestamp refills nothing and cannot underflow.
        assert!(bucket.try_take_at(0).is_err());
        assert!(bucket.millitokens() < 1000);
    }

    #[test]
    fn client_windows_bound_in_flight() {
        let windows = ClientWindows::new(2);
        assert!(windows.try_open(7));
        assert!(windows.try_open(7));
        assert!(!windows.try_open(7));
        assert!(windows.try_open(8), "windows are per-client");
        windows.close(7);
        assert!(windows.try_open(7));
        // Unlimited windows never refuse.
        let unlimited = ClientWindows::new(0);
        for _ in 0..100 {
            assert!(unlimited.try_open(1));
        }
    }

    #[test]
    fn work_pool_runs_everything_and_drains() {
        let pool = WorkPool::new(3);
        let (tx, rx) = mpsc::channel();
        for i in 0..50 {
            let tx = tx.clone();
            assert!(pool.submit(Box::new(move || {
                tx.send(i).expect("send");
            })));
        }
        pool.drain();
        drop(tx);
        let mut seen: Vec<i32> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
        assert_eq!(pool.queued(), 0);
        assert_eq!(pool.in_flight(), 0);
        assert!(!pool.submit(Box::new(|| ())), "stopped pool refuses work");
    }

    #[test]
    fn work_pool_drain_survives_panicking_jobs() {
        let pool = WorkPool::new(2);
        for i in 0..20 {
            assert!(pool.submit(Box::new(move || {
                if i % 3 == 0 {
                    panic!("job {i} down");
                }
            })));
        }
        pool.drain();
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.queued(), 0);
    }

    fn ok_record(app: &str) -> CellRecord {
        CellRecord {
            app: app.to_string(),
            scheme: "critic".to_string(),
            status: CellStatus::Ok,
            attempts: 1,
            millis: 1,
            fault: None,
            metrics: None,
            error: None,
            validation: None,
            spans: None,
            degraded: None,
            run: None,
        }
    }

    fn failed_record(app: &str) -> CellRecord {
        CellRecord {
            status: CellStatus::Failed,
            ..ok_record(app)
        }
    }

    #[test]
    fn breaker_trips_probes_and_resets() {
        let telemetry = Telemetry::enabled();
        let breaker = Breaker::new(2);
        assert_eq!(breaker.admit("a"), BreakerDecision::Run);
        breaker.on_record(&failed_record("a"), &telemetry);
        assert_eq!(breaker.admit("a"), BreakerDecision::Run);
        breaker.on_record(&failed_record("a"), &telemetry);
        // Tripped: the next submission is the deterministic probe.
        assert_eq!(breaker.admit("a"), BreakerDecision::Probe);
        // Probe in flight: siblings shed, no probe stacking.
        assert_eq!(breaker.admit("a"), BreakerDecision::Shed);
        // Failed probe re-opens silently; threshold sheds before the next.
        breaker.on_record(&failed_record("a"), &telemetry);
        assert_eq!(breaker.admit("a"), BreakerDecision::Shed);
        assert_eq!(breaker.admit("a"), BreakerDecision::Shed);
        assert_eq!(breaker.admit("a"), BreakerDecision::Probe);
        // Successful probe closes the breaker with one Reset.
        breaker.on_record(&ok_record("a"), &telemetry);
        assert_eq!(breaker.admit("a"), BreakerDecision::Run);
        let snap = telemetry.snapshot().expect("snapshot");
        assert_eq!(
            snap.supervision().trips,
            1,
            "one trip, probes don't re-trip"
        );
        assert_eq!(snap.service().resets, 1);
        // Other apps were never affected.
        assert_eq!(breaker.admit("b"), BreakerDecision::Run);
    }

    #[test]
    fn breaker_shed_records_are_not_evidence() {
        let telemetry = Telemetry::off();
        let breaker = Breaker::new(1);
        let shed = CellRecord {
            status: CellStatus::Shed,
            ..ok_record("a")
        };
        breaker.on_record(&shed, &telemetry);
        assert_eq!(breaker.admit("a"), BreakerDecision::Run);
    }

    #[test]
    fn degrade_level_follows_watermarks() {
        let marks = [4, 8, 16];
        assert_eq!(degrade_level(&marks, 0), 0);
        assert_eq!(degrade_level(&marks, 3), 0);
        assert_eq!(degrade_level(&marks, 4), 1);
        assert_eq!(degrade_level(&marks, 8), 2);
        assert_eq!(degrade_level(&marks, 100), 3);
        // Zero entries disable rungs.
        assert_eq!(degrade_level(&[0, 0, 2], 3), 3);
        assert_eq!(degrade_level(&[0, 0, 0], 1000), 0);
    }

    #[test]
    fn service_runs_cells_and_drains() {
        let config = ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            admission_rate: 0,
            breaker_threshold: 0,
            ..ServiceConfig::new(4_000)
        };
        let service = CampaignService::open(config).expect("open");
        let (tx, rx) = mpsc::channel();
        for i in 0..4 {
            let tx = tx.clone();
            let outcome = service.submit(i % 2, "Acrobat", "critic", None, move |record| {
                tx.send(record).expect("send");
            });
            assert_eq!(outcome, SubmitOutcome::Accepted);
        }
        service.drain();
        drop(tx);
        let records: Vec<CellRecord> = rx.iter().collect();
        assert_eq!(records.len(), 4);
        assert!(records.iter().all(|r| r.status == CellStatus::Ok));
        assert_eq!(service.accepted(), 4);
        assert_eq!(service.responded(), 4);
        // A drained service refuses new work.
        let outcome = service.submit(0, "Acrobat", "critic", None, |_| {});
        assert!(matches!(outcome, SubmitOutcome::Rejected { .. }));
    }

    #[test]
    fn service_rejects_unknown_names_without_queueing() {
        let config = ServiceConfig {
            workers: 1,
            ..ServiceConfig::new(4_000)
        };
        let service = CampaignService::open(config).expect("open");
        let outcome = service.submit(0, "no-such-app", "critic", None, |_| {});
        assert!(matches!(outcome, SubmitOutcome::Rejected { .. }));
        let outcome = service.submit(0, "Acrobat", "no-such-scheme", None, |_| {});
        assert!(matches!(outcome, SubmitOutcome::Rejected { .. }));
        assert_eq!(service.accepted(), 0);
        service.drain();
    }
}
