//! Structured errors for experiment runs.

use std::fmt;

use critic_compiler::PassError;
use critic_profiler::ProfileError;
use critic_workloads::{ProgramError, SysFault, TraceError};
use serde::{Deserialize, Serialize};

/// Why one experiment run (one cell of a campaign) failed.
///
/// Every failure a run can hit — invalid inputs, pass/profiler rejections,
/// a panic trapped at the isolation boundary, a blown deadline, journal
/// I/O — collapses into this one serializable type so campaign journals
/// can record it verbatim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunError {
    /// The (possibly fault-injected) program failed validation.
    Program(ProgramError),
    /// The (possibly fault-injected) trace failed validation.
    Trace(TraceError),
    /// The profiler rejected its inputs.
    Profile(ProfileError),
    /// A compiler pass rejected its inputs.
    Pass(PassError),
    /// A fault injection request had no applicable site.
    Inject(String),
    /// A panic escaped the run and was trapped at the isolation boundary.
    /// Carries the panic payload's message.
    Panic(String),
    /// The run exceeded its per-attempt deadline.
    DeadlineExceeded {
        /// The deadline that was blown, in milliseconds.
        millis: u64,
    },
    /// The attempt was abandoned (its deadline expired in the worker) and
    /// exited early at a cancellation checkpoint.
    Cancelled,
    /// The campaign journal could not be read or written.
    Journal(String),
    /// The persistent artifact store could not be opened (its cache
    /// directory is unusable). Per-entry corruption never raises this —
    /// bad entries are quarantined and rebuilt.
    Store(String),
    /// The differential oracle found a divergence that could not be
    /// resolved by demoting the offending chain.
    Validation(String),
    /// An injected systemic fault fired at one of the campaign's
    /// instrumented tap points (store request, attempt start, ...).
    Sys(SysFault),
    /// The cell was shed without running — its circuit breaker was open,
    /// or a graceful shutdown drained the queue. Never a silent drop: the
    /// record carries this error so every grid cell stays accounted for.
    Shed(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Program(e) => write!(f, "invalid program: {e}"),
            RunError::Trace(e) => write!(f, "invalid trace: {e}"),
            RunError::Profile(e) => write!(f, "profiling failed: {e}"),
            RunError::Pass(e) => write!(f, "compiler pass failed: {e}"),
            RunError::Inject(msg) => write!(f, "fault injection failed: {msg}"),
            RunError::Panic(msg) => write!(f, "panicked: {msg}"),
            RunError::DeadlineExceeded { millis } => {
                write!(f, "deadline of {millis} ms exceeded")
            }
            RunError::Cancelled => write!(f, "attempt cancelled after its deadline expired"),
            RunError::Journal(msg) => write!(f, "journal error: {msg}"),
            RunError::Store(msg) => write!(f, "persistent store error: {msg}"),
            RunError::Validation(msg) => write!(f, "translation validation failed: {msg}"),
            RunError::Sys(fault) => write!(f, "systemic fault fired: {fault}"),
            RunError::Shed(msg) => write!(f, "cell shed: {msg}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Program(e) => Some(e),
            RunError::Trace(e) => Some(e),
            RunError::Profile(e) => Some(e),
            RunError::Pass(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for RunError {
    fn from(e: ProgramError) -> Self {
        RunError::Program(e)
    }
}

impl From<TraceError> for RunError {
    fn from(e: TraceError) -> Self {
        RunError::Trace(e)
    }
}

impl From<ProfileError> for RunError {
    fn from(e: ProfileError) -> Self {
        RunError::Profile(e)
    }
}

impl From<PassError> for RunError {
    fn from(e: PassError) -> Self {
        RunError::Pass(e)
    }
}
