//! The persistent spill tier of the [`crate::store::ArtifactStore`].
//!
//! Expensive, serializable artifacts (profiles and baseline simulations)
//! are spilled to one file per entry under a cache directory, so a warm
//! campaign survives process restart — the gap between a batch CLI and the
//! long-lived service of ROADMAP item 3. The design goals, in order:
//!
//! 1. **Never serve a wrong artifact.** Entries are addressed by
//!    [`crate::keys::stable_key`] and carry a header binding the entry
//!    format version, the key-encoding version, the artifact class, and a
//!    CRC-32 of the payload. Any mismatch — torn write, bit rot, a stale
//!    format — fails closed into a rebuild.
//! 2. **Never crash on a bad entry.** Corruption *quarantines* the file
//!    (renamed aside with a `.quarantine` suffix for post-mortems), emits
//!    one `critic-obs` [`EventKind::Quarantine`] event, and reports a
//!    miss. A half-written cache must cost time, not correctness.
//! 3. **Never tear an entry.** Saves write to a unique temp file, fsync
//!    it, then atomically rename into place, so a crash at any instant
//!    leaves either the old state or the new — the kill-anywhere drill
//!    aborts mid-save and checks exactly this.
//! 4. **Stay bounded.** An optional byte budget evicts least-recently-used
//!    entries after each save ([`EventKind::Evict`]).
//!
//! Every filesystem failure maps into a typed [`StoreError`]; nothing in
//! this module panics on I/O.
//!
//! # On-disk entry format (version 1)
//!
//! ```text
//! offset  size  field
//!      0     4  magic "CRAS"
//!      4     2  entry format version, u16 LE   (= 1)
//!      6     4  key-encoding version, u32 LE   (= KEY_FORMAT_VERSION)
//!     10     1  artifact class code
//!     11     1  reserved (0)
//!     12     8  payload length in bytes, u64 LE
//!     20     4  CRC-32 (IEEE) of the payload, u32 LE
//!     24     —  payload: the artifact as canonical JSON
//! ```
//!
//! The 64-bit stable key is the file name (`<class>-<key:016x>.art`), not
//! a header field: lookups never open the wrong entry, and the header's
//! class byte cross-checks the name against the bytes inside.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use critic_obs::{EventKind, Telemetry};
use serde::{Deserialize, Serialize};

use crate::keys::{crc32, KEY_FORMAT_VERSION};

/// Magic bytes opening every entry file.
pub const ENTRY_MAGIC: [u8; 4] = *b"CRAS";

/// Version of the on-disk entry layout (header + payload framing).
pub const ENTRY_FORMAT_VERSION: u16 = 1;

/// Size of the fixed entry header in bytes.
pub const ENTRY_HEADER_LEN: usize = 24;

/// The artifact classes the disk tier persists. Worlds, cone vectors and
/// oracle executions hold interior `Arc` graphs that are cheaper to
/// regenerate deterministically than to serialize; profiles and baseline
/// simulations are the expensive, plain-data artifacts worth spilling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactClass {
    /// A [`critic_profiler::Profile`].
    Profile,
    /// A baseline [`crate::runner::RunOutcome`].
    Baseline,
}

impl ArtifactClass {
    /// The class code stored in the entry header.
    pub fn code(self) -> u8 {
        match self {
            ArtifactClass::Profile => 2,
            ArtifactClass::Baseline => 3,
        }
    }

    /// The file-name prefix of the class.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactClass::Profile => "profile",
            ArtifactClass::Baseline => "baseline",
        }
    }

    /// The inverse of [`ArtifactClass::name`], used when a class crosses
    /// the wire as text (the `fetch_artifact` verb).
    pub fn parse(name: &str) -> Option<ArtifactClass> {
        match name {
            "profile" => Some(ArtifactClass::Profile),
            "baseline" => Some(ArtifactClass::Baseline),
            _ => None,
        }
    }

    /// Every persistable class, for index walks.
    pub const ALL: [ArtifactClass; 2] = [ArtifactClass::Profile, ArtifactClass::Baseline];
}

/// A typed failure of the persistent store tier. Every I/O error carries
/// the operation and path it failed on; nothing here ever panics.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// The operation that failed (e.g. `"create-dir"`, `"rename"`).
        op: &'static str,
        /// The path it failed on.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// An entry's bytes contradict its header (or the header itself is
    /// malformed). Returned only by strict readers; the store's own load
    /// path converts this into a quarantine + miss.
    Corrupt {
        /// The entry file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "store {op} failed on {}: {source}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt store entry {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { .. } => None,
        }
    }
}

/// Builds the 24-byte header for a payload of `class` (see the module
/// docs for the layout). Golden-tested byte for byte.
pub fn entry_header(class: ArtifactClass, payload: &[u8]) -> [u8; ENTRY_HEADER_LEN] {
    let mut header = [0u8; ENTRY_HEADER_LEN];
    header[0..4].copy_from_slice(&ENTRY_MAGIC);
    header[4..6].copy_from_slice(&ENTRY_FORMAT_VERSION.to_le_bytes());
    header[6..10].copy_from_slice(&KEY_FORMAT_VERSION.to_le_bytes());
    header[10] = class.code();
    header[11] = 0;
    header[12..20].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    header[20..24].copy_from_slice(&crc32(payload).to_le_bytes());
    header
}

/// Checks `bytes` against the version-1 entry layout for `class` and
/// returns the payload on success.
fn verify_entry(class: ArtifactClass, path: &Path, bytes: &[u8]) -> Result<Vec<u8>, StoreError> {
    let corrupt = |detail: String| StoreError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    if bytes.len() < ENTRY_HEADER_LEN {
        return Err(corrupt(format!(
            "{} bytes is shorter than the header",
            bytes.len()
        )));
    }
    let (header, payload) = bytes.split_at(ENTRY_HEADER_LEN);
    if header[0..4] != ENTRY_MAGIC {
        return Err(corrupt("bad magic".into()));
    }
    let entry_version = u16::from_le_bytes([header[4], header[5]]);
    if entry_version != ENTRY_FORMAT_VERSION {
        return Err(corrupt(format!(
            "entry format {entry_version} != {ENTRY_FORMAT_VERSION}"
        )));
    }
    let key_version = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if key_version != KEY_FORMAT_VERSION {
        return Err(corrupt(format!(
            "key format {key_version} != {KEY_FORMAT_VERSION}"
        )));
    }
    if header[10] != class.code() {
        return Err(corrupt(format!("class {} != {}", header[10], class.code())));
    }
    let len = u64::from_le_bytes(
        header[12..20].try_into().unwrap_or([0; 8]), // length checked above; unreachable
    );
    if len != payload.len() as u64 {
        return Err(corrupt(format!(
            "payload {} bytes, header says {len}",
            payload.len()
        )));
    }
    let want = u32::from_le_bytes(header[20..24].try_into().unwrap_or([0; 4]));
    let got = crc32(payload);
    if want != got {
        return Err(corrupt(format!(
            "payload crc {got:08x} != header crc {want:08x}"
        )));
    }
    Ok(payload.to_vec())
}

/// LRU bookkeeping: file name → size, plus recency order (front oldest).
#[derive(Default)]
struct LruIndex {
    sizes: HashMap<String, u64>,
    order: Vec<String>,
    bytes: u64,
}

impl LruIndex {
    fn touch(&mut self, name: &str) {
        if let Some(pos) = self.order.iter().position(|n| n == name) {
            let name = self.order.remove(pos);
            self.order.push(name);
        }
    }

    fn insert(&mut self, name: String, size: u64) {
        if let Some(old) = self.sizes.insert(name.clone(), size) {
            self.bytes = self.bytes.saturating_sub(old);
            if let Some(pos) = self.order.iter().position(|n| *n == name) {
                self.order.remove(pos);
            }
        }
        self.bytes += size;
        self.order.push(name);
    }

    fn remove(&mut self, name: &str) {
        if let Some(size) = self.sizes.remove(name) {
            self.bytes = self.bytes.saturating_sub(size);
        }
        if let Some(pos) = self.order.iter().position(|n| n == name) {
            self.order.remove(pos);
        }
    }
}

/// Serializable counters of the disk tier, surfaced through
/// `critic stats --json` and the bench report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskStoreStats {
    /// Entries currently on disk.
    pub entries: u64,
    /// Bytes currently on disk (headers + payloads).
    pub bytes: u64,
    /// Loads served from disk.
    pub disk_hits: u64,
    /// Loads that found no entry.
    pub disk_misses: u64,
    /// Entries written.
    pub saves: u64,
    /// Entries evicted by the byte-budget LRU policy.
    pub evictions: u64,
    /// Corrupt or torn entries quarantined.
    pub quarantines: u64,
    /// Loads that failed with a filesystem error (not corruption).
    pub load_errors: u64,
    /// Saves that failed with a filesystem error.
    pub save_errors: u64,
}

/// The persistent tier: one directory of checksummed entry files with
/// atomic writes, quarantine-on-corruption, and LRU byte-budget eviction.
pub struct DiskStore {
    dir: PathBuf,
    budget: Option<u64>,
    index: Mutex<LruIndex>,
    temp_counter: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    saves: AtomicU64,
    evictions: AtomicU64,
    quarantines: AtomicU64,
    load_errors: AtomicU64,
    save_errors: AtomicU64,
    telemetry: Mutex<Telemetry>,
}

impl fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DiskStore({}, {:?})", self.dir.display(), self.stats())
    }
}

fn lock_clean<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl DiskStore {
    /// Opens (creating if needed) the store under `dir` with an optional
    /// byte budget. Existing entries are indexed oldest-first by
    /// modification time so eviction order survives restart.
    pub fn open(dir: &Path, budget: Option<u64>) -> Result<DiskStore, StoreError> {
        fs::create_dir_all(dir).map_err(|source| StoreError::Io {
            op: "create-dir",
            path: dir.to_path_buf(),
            source,
        })?;
        let mut found: Vec<(String, u64, std::time::SystemTime)> = Vec::new();
        let entries = fs::read_dir(dir).map_err(|source| StoreError::Io {
            op: "read-dir",
            path: dir.to_path_buf(),
            source,
        })?;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.ends_with(".art") {
                continue;
            }
            if let Ok(meta) = entry.metadata() {
                let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                found.push((name, meta.len(), mtime));
            }
        }
        found.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut index = LruIndex::default();
        for (name, size, _) in found {
            index.insert(name, size);
        }
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            budget,
            index: Mutex::new(index),
            temp_counter: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            saves: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            load_errors: AtomicU64::new(0),
            save_errors: AtomicU64::new(0),
            telemetry: Mutex::new(Telemetry::off()),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arms the telemetry handle used for eviction/quarantine events.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        *lock_clean(&self.telemetry) = telemetry;
    }

    fn event(&self, kind: EventKind) {
        lock_clean(&self.telemetry).event(kind);
    }

    fn file_name(class: ArtifactClass, key: u64) -> String {
        format!("{}-{key:016x}.art", class.name())
    }

    /// The inverse of the file-name scheme: `profile-00ab....art` →
    /// `(Profile, 0xab)`. `None` for temp files, quarantined entries, and
    /// anything else living in the directory.
    pub fn parse_entry_name(name: &str) -> Option<(ArtifactClass, u64)> {
        let stem = name.strip_suffix(".art")?;
        for class in ArtifactClass::ALL {
            if let Some(hex) = stem
                .strip_prefix(class.name())
                .and_then(|s| s.strip_prefix('-'))
            {
                if hex.len() == 16 {
                    if let Ok(key) = u64::from_str_radix(hex, 16) {
                        return Some((class, key));
                    }
                }
            }
        }
        None
    }

    /// Whether (`class`, `key`) is present in the index (no disk I/O and
    /// no counter movement — a peer-rebuild pre-check, not a load).
    pub fn contains(&self, class: ArtifactClass, key: u64) -> bool {
        let name = DiskStore::file_name(class, key);
        lock_clean(&self.index).sizes.contains_key(&name)
    }

    /// Every (`class`, `key`) currently indexed, in deterministic order.
    /// This is what a shard's `list_artifacts` wire verb serves so a
    /// rebuilding peer can diff its own index against ours.
    pub fn entries(&self) -> Vec<(ArtifactClass, u64)> {
        let mut entries: Vec<(ArtifactClass, u64)> = lock_clean(&self.index)
            .sizes
            .keys()
            .filter_map(|name| DiskStore::parse_entry_name(name))
            .collect();
        entries.sort_unstable_by_key(|(class, key)| (class.code(), *key));
        entries
    }

    /// Loads the payload of (`class`, `key`). `Ok(None)` covers both a
    /// plain miss and a corrupt entry — the latter is quarantined (renamed
    /// aside), counted, and reported as one [`EventKind::Quarantine`]
    /// event, so callers always just rebuild.
    pub fn load(&self, class: ArtifactClass, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        let name = DiskStore::file_name(class, key);
        let path = self.dir.join(&name);
        let mut bytes = Vec::new();
        match fs::File::open(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            Err(source) => {
                self.load_errors.fetch_add(1, Ordering::Relaxed);
                return Err(StoreError::Io {
                    op: "open",
                    path,
                    source,
                });
            }
            Ok(mut file) => {
                if let Err(source) = file.read_to_end(&mut bytes) {
                    self.load_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(StoreError::Io {
                        op: "read",
                        path,
                        source,
                    });
                }
            }
        }
        match verify_entry(class, &path, &bytes) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                lock_clean(&self.index).touch(&name);
                Ok(Some(payload))
            }
            Err(_) => {
                self.quarantine(&name);
                Ok(None)
            }
        }
    }

    /// Renames a bad entry aside (best effort — removed outright if the
    /// rename itself fails) and counts the quarantine.
    fn quarantine(&self, name: &str) {
        let path = self.dir.join(name);
        let aside = self.dir.join(format!("{name}.quarantine"));
        if fs::rename(&path, &aside).is_err() {
            let _ = fs::remove_file(&path);
        }
        lock_clean(&self.index).remove(name);
        self.quarantines.fetch_add(1, Ordering::Relaxed);
        self.event(EventKind::Quarantine);
    }

    /// Persists `payload` under (`class`, `key`): unique temp file, fsync,
    /// atomic rename, then LRU eviction down to the byte budget. A key
    /// that is already on disk is only touched (entries are
    /// content-addressed: same key, same bytes).
    pub fn save(&self, class: ArtifactClass, key: u64, payload: &[u8]) -> Result<(), StoreError> {
        let name = DiskStore::file_name(class, key);
        let path = self.dir.join(&name);
        if path.exists() {
            lock_clean(&self.index).touch(&name);
            return Ok(());
        }
        let io_err = |op: &'static str, path: PathBuf, source: std::io::Error| {
            self.save_errors.fetch_add(1, Ordering::Relaxed);
            StoreError::Io { op, path, source }
        };
        let tag = self.temp_counter.fetch_add(1, Ordering::Relaxed);
        let temp = self
            .dir
            .join(format!(".tmp-{name}.{}.{tag}", std::process::id()));
        let mut file = match fs::File::create(&temp) {
            Ok(file) => file,
            Err(source) => return Err(io_err("create-temp", temp, source)),
        };
        let header = entry_header(class, payload);
        let write = file
            .write_all(&header)
            .and_then(|()| file.write_all(payload))
            .and_then(|()| file.sync_all());
        if let Err(source) = write {
            let _ = fs::remove_file(&temp);
            return Err(io_err("write-temp", temp, source));
        }
        drop(file);
        if let Err(source) = fs::rename(&temp, &path) {
            let _ = fs::remove_file(&temp);
            return Err(io_err("rename", path, source));
        }
        // Best-effort directory sync so the rename itself is durable.
        if let Ok(dir) = fs::File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        self.saves.fetch_add(1, Ordering::Relaxed);
        let size = (ENTRY_HEADER_LEN + payload.len()) as u64;
        let evict = {
            let mut index = lock_clean(&self.index);
            index.insert(name, size);
            self.over_budget(&mut index)
        };
        for victim in evict {
            let _ = fs::remove_file(self.dir.join(&victim));
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.event(EventKind::Evict);
        }
        Ok(())
    }

    /// Pops LRU victims until the index fits the budget, always keeping
    /// the newest entry so a single oversized artifact still persists.
    fn over_budget(&self, index: &mut LruIndex) -> Vec<String> {
        let mut victims = Vec::new();
        if let Some(budget) = self.budget {
            while index.bytes > budget && index.order.len() > 1 {
                let name = index.order.remove(0);
                if let Some(size) = index.sizes.remove(&name) {
                    index.bytes = index.bytes.saturating_sub(size);
                }
                victims.push(name);
            }
        }
        victims
    }

    /// Chaos hook: flips one payload bit of the entry in place (a
    /// non-atomic rewrite, deliberately), so the next load must detect the
    /// corruption and quarantine it. Returns whether an entry existed.
    pub fn corrupt_entry(&self, class: ArtifactClass, key: u64) -> Result<bool, StoreError> {
        let path = self.dir.join(DiskStore::file_name(class, key));
        let mut bytes = match fs::read(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
            Err(source) => {
                return Err(StoreError::Io {
                    op: "read",
                    path,
                    source,
                })
            }
            Ok(bytes) => bytes,
        };
        if let Some(byte) = bytes.get_mut(ENTRY_HEADER_LEN) {
            *byte ^= 0x01;
        } else if let Some(byte) = bytes.last_mut() {
            *byte ^= 0x01;
        }
        fs::write(&path, &bytes).map_err(|source| StoreError::Io {
            op: "write",
            path,
            source,
        })?;
        Ok(true)
    }

    /// Snapshot of the disk-tier counters.
    pub fn stats(&self) -> DiskStoreStats {
        let index = lock_clean(&self.index);
        DiskStoreStats {
            entries: index.order.len() as u64,
            bytes: index.bytes,
            disk_hits: self.hits.load(Ordering::Relaxed),
            disk_misses: self.misses.load(Ordering::Relaxed),
            saves: self.saves.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            load_errors: self.load_errors.load(Ordering::Relaxed),
            save_errors: self.save_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "critic-disk-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn entry_header_bytes_are_golden() {
        // The exact version-1 header for a 5-byte payload. If this test
        // fails, ENTRY_FORMAT_VERSION must be bumped, not the test fixed:
        // old binaries would otherwise misread new entries.
        let header = entry_header(ArtifactClass::Profile, b"hello");
        let expected: [u8; ENTRY_HEADER_LEN] = [
            0x43, 0x52, 0x41, 0x53, // "CRAS"
            0x01, 0x00, // entry format 1
            0x01, 0x00, 0x00, 0x00, // key format 1
            0x02, // class: profile
            0x00, // reserved
            0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // payload len 5
            0x86, 0xa6, 0x10, 0x36, // crc32("hello") = 0x3610a686 LE
        ];
        assert_eq!(header, expected);
        assert_eq!(crc32(b"hello"), 0x3610_a686);
    }

    #[test]
    fn save_load_round_trips_and_survives_reopen() {
        let dir = temp_dir("roundtrip");
        let store = DiskStore::open(&dir, None).expect("open");
        store
            .save(ArtifactClass::Profile, 0xabcd, b"{\"x\":1}")
            .expect("save");
        let back = store.load(ArtifactClass::Profile, 0xabcd).expect("load");
        assert_eq!(back.as_deref(), Some(b"{\"x\":1}".as_slice()));
        assert_eq!(
            store.load(ArtifactClass::Baseline, 0xabcd).expect("miss"),
            None
        );
        drop(store);

        // A second process (here: a second handle) sees the entry.
        let reopened = DiskStore::open(&dir, None).expect("reopen");
        let back = reopened.load(ArtifactClass::Profile, 0xabcd).expect("load");
        assert_eq!(back.as_deref(), Some(b"{\"x\":1}".as_slice()));
        let stats = reopened.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.quarantines, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_quarantine_instead_of_crashing() {
        let dir = temp_dir("quarantine");
        let store = DiskStore::open(&dir, None).expect("open");
        store
            .save(ArtifactClass::Baseline, 7, b"{\"cycles\":123}")
            .expect("save");
        assert!(store
            .corrupt_entry(ArtifactClass::Baseline, 7)
            .expect("corrupt"));
        // The bad entry reads back as a miss, never an error or a panic.
        assert_eq!(store.load(ArtifactClass::Baseline, 7).expect("load"), None);
        let stats = store.stats();
        assert_eq!(stats.quarantines, 1);
        assert_eq!(stats.entries, 0);
        // The original bytes are preserved aside for post-mortems.
        let aside: Vec<_> = fs::read_dir(&dir)
            .expect("read dir")
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".quarantine"))
            .collect();
        assert_eq!(aside.len(), 1);
        // A rebuild re-saves cleanly under the same key.
        store
            .save(ArtifactClass::Baseline, 7, b"{\"cycles\":123}")
            .expect("re-save");
        assert!(store
            .load(ArtifactClass::Baseline, 7)
            .expect("load")
            .is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_writes_are_detected() {
        let dir = temp_dir("torn");
        let store = DiskStore::open(&dir, None).expect("open");
        store
            .save(ArtifactClass::Profile, 1, b"{\"payload\":\"full\"}")
            .expect("save");
        // Simulate a torn write: truncate the file mid-payload.
        let path = dir.join(DiskStore::file_name(ArtifactClass::Profile, 1));
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 4]).expect("truncate");
        assert_eq!(store.load(ArtifactClass::Profile, 1).expect("load"), None);
        assert_eq!(store.stats().quarantines, 1);
        // A header shorter than 24 bytes is also just a quarantine.
        fs::write(&path, b"CR").expect("stub");
        assert_eq!(store.load(ArtifactClass::Profile, 1).expect("load"), None);
        assert_eq!(store.stats().quarantines, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_budget_evicts_oldest_first() {
        let dir = temp_dir("lru");
        // Each entry is 24 + 8 = 32 bytes; budget fits two.
        let store = DiskStore::open(&dir, Some(64)).expect("open");
        store
            .save(ArtifactClass::Profile, 1, b"11111111")
            .expect("a");
        store
            .save(ArtifactClass::Profile, 2, b"22222222")
            .expect("b");
        // Touch 1 so 2 becomes the LRU victim.
        assert!(store
            .load(ArtifactClass::Profile, 1)
            .expect("touch")
            .is_some());
        store
            .save(ArtifactClass::Profile, 3, b"33333333")
            .expect("c");
        let stats = store.stats();
        assert_eq!(stats.evictions, 1, "{stats:?}");
        assert_eq!(stats.entries, 2, "{stats:?}");
        assert!(store
            .load(ArtifactClass::Profile, 2)
            .expect("evicted")
            .is_none());
        assert!(store
            .load(ArtifactClass::Profile, 1)
            .expect("kept")
            .is_some());
        assert!(store
            .load(ArtifactClass::Profile, 3)
            .expect("kept")
            .is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_oversized_entry_still_persists() {
        let dir = temp_dir("oversize");
        let store = DiskStore::open(&dir, Some(16)).expect("open");
        store
            .save(ArtifactClass::Profile, 9, b"way-over-the-budget-payload")
            .expect("save");
        assert!(store
            .load(ArtifactClass::Profile, 9)
            .expect("load")
            .is_some());
        assert_eq!(store.stats().entries, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_sees_evictions_and_quarantines() {
        let dir = temp_dir("telemetry");
        let store = DiskStore::open(&dir, Some(64)).expect("open");
        let telemetry = Telemetry::enabled();
        store.set_telemetry(telemetry.clone());
        store
            .save(ArtifactClass::Profile, 1, b"11111111")
            .expect("a");
        store
            .save(ArtifactClass::Profile, 2, b"22222222")
            .expect("b");
        store
            .save(ArtifactClass::Profile, 3, b"33333333")
            .expect("c");
        store
            .corrupt_entry(ArtifactClass::Profile, 3)
            .expect("corrupt");
        let _ = store.load(ArtifactClass::Profile, 3).expect("load");
        let snap = telemetry.snapshot().expect("snapshot").durability();
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.quarantines, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
