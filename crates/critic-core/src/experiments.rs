//! One function per table and figure of the paper's evaluation.
//!
//! Every function returns typed, serializable rows; the `figures` binary in
//! `critic-bench` prints them and `EXPERIMENTS.md` records paper-vs-measured
//! values. Most experiments take a `trace_len` and an `apps` cap so smoke
//! tests and Criterion benches can run scaled-down versions of the same
//! code path.

use critic_isa::LatencyClass;
use critic_profiler::{
    chains::{extract_dynamic_ics, ChainShape},
    CriticalitySummary, Dfg, GapHistogram, ProfilerConfig,
};
use critic_workloads::suite::Suite;
use serde::{Deserialize, Serialize};

use crate::design::DesignPoint;
use crate::runner::Workbench;

fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn suite_apps(suite: Suite, cap: usize) -> Vec<critic_workloads::AppSpec> {
    suite.apps().into_iter().take(cap.max(1)).collect()
}

// ---------------------------------------------------------------- Table I/II

/// Table I: the baseline configuration, rendered as text.
pub fn table1() -> String {
    let cpu = critic_pipeline::CpuConfig::google_tablet();
    let mem = critic_mem::MemConfig::google_tablet();
    format!(
        "CPU     {}-wide Fetch/Decode/Rename/ROB/Issue/Execute/Commit superscalar;\n\
        \x20       {} ROB entries, {}-entry 2-level BPU, {}-deep RAS\n\
        Memory  {}KB {}-way i-cache, {}KB {}-way d-cache, {}-cycle hit;\n\
        \x20       {}MB {}-way L2, {}-cycle hit, CLPT prefetcher available ({} x 7b)\n\
        System  LPDDR3: {} ranks/ch, {} banks/rank, open page, tCL=tRP=tRCD={} cycles",
        cpu.width,
        cpu.rob_entries,
        cpu.bpu_entries,
        cpu.ras_depth,
        mem.icache.size_bytes / 1024,
        mem.icache.ways,
        mem.dcache.size_bytes / 1024,
        mem.dcache.ways,
        mem.icache.hit_latency,
        mem.l2.size_bytes / (1024 * 1024),
        mem.l2.ways,
        mem.l2.hit_latency,
        critic_mem::prefetch::CLPT_ENTRIES,
        mem.dram.ranks,
        mem.dram.banks_per_rank,
        mem.dram.t_cl,
    )
}

/// One Table II row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Workload name.
    pub name: String,
    /// Suite label.
    pub suite: String,
    /// Domain column.
    pub domain: String,
    /// Activity column.
    pub activity: String,
}

/// Table II: the workload catalog.
pub fn table2() -> Vec<Table2Row> {
    Suite::ALL
        .iter()
        .flat_map(|s| s.apps())
        .map(|a| Table2Row {
            name: a.name.clone(),
            suite: a.suite.label().to_string(),
            domain: a.domain.clone(),
            activity: a.activity.clone(),
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 1

/// One Fig. 1a bar group: the two single-instruction criticality
/// optimizations per suite, plus the critical-instruction fraction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1aRow {
    /// Suite label.
    pub suite: String,
    /// Mean speedup of critical-load prefetching.
    pub prefetch_speedup: f64,
    /// Mean speedup of critical-instruction ALU prioritization.
    pub prioritize_speedup: f64,
    /// Mean fraction of dynamic instructions that are critical
    /// (right axis).
    pub critical_frac: f64,
}

/// Fig. 1a: single-instruction criticality optimizations by suite.
pub fn fig1a(trace_len: usize, apps_per_suite: usize) -> Vec<Fig1aRow> {
    Suite::ALL
        .iter()
        .map(|&suite| {
            let mut prefetch = Vec::new();
            let mut prioritize = Vec::new();
            let mut critical = Vec::new();
            for app in suite_apps(suite, apps_per_suite) {
                let mut bench = Workbench::new(&app, trace_len);
                let base = bench.run(&DesignPoint::baseline());
                let pf = bench.run(&DesignPoint::critical_load_prefetch());
                let pr = bench.run(&DesignPoint::critical_prioritization());
                prefetch.push(pf.sim.speedup_over(&base.sim));
                prioritize.push(pr.sim.speedup_over(&base.sim));
                let summary =
                    CriticalitySummary::measure(bench.baseline_trace(), bench.baseline_fanout(), 8);
                critical.push(summary.critical_frac());
            }
            Fig1aRow {
                suite: suite.label().to_string(),
                prefetch_speedup: mean(prefetch),
                prioritize_speedup: mean(prioritize),
                critical_frac: mean(critical),
            }
        })
        .collect()
}

/// One Fig. 1b histogram per suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1bRow {
    /// Suite label.
    pub suite: String,
    /// Fraction of criticals with no dependent critical.
    pub none_frac: f64,
    /// Fractions for 0..=5 intermediate low-fanout instructions.
    pub gap_fracs: [f64; 6],
}

/// Fig. 1b: low-fanout gaps between dependent criticals.
pub fn fig1b(trace_len: usize, apps_per_suite: usize) -> Vec<Fig1bRow> {
    Suite::ALL
        .iter()
        .map(|&suite| {
            let mut none = Vec::new();
            let mut gaps = vec![Vec::new(); 6];
            for app in suite_apps(suite, apps_per_suite) {
                let bench = Workbench::new(&app, trace_len);
                let trace = bench.baseline_trace();
                let dfg = Dfg::build(trace);
                let hist = GapHistogram::measure(&dfg, bench.baseline_fanout(), 8);
                none.push(hist.none_frac());
                for (g, bucket) in gaps.iter_mut().enumerate() {
                    bucket.push(hist.gap_frac(g));
                }
            }
            let mut gap_fracs = [0.0; 6];
            for (g, bucket) in gaps.into_iter().enumerate() {
                gap_fracs[g] = mean(bucket);
            }
            Fig1bRow {
                suite: suite.label().to_string(),
                none_frac: mean(none),
                gap_fracs,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 3

/// One Fig. 3 row per suite: the pipeline-stage profile of critical
/// instructions, the fetch-stall split, and the latency-class mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Suite label.
    pub suite: String,
    /// Fig. 3a: share of critical instructions' fetch-to-commit time in
    /// [fetch, decode, issue-wait, execute, commit/ROB].
    pub stage_shares: [f64; 5],
    /// Fig. 3b: F.StallForI as a fraction of execution.
    pub stall_for_i: f64,
    /// Fig. 3b: F.StallForR+D as a fraction of execution.
    pub stall_for_rd: f64,
    /// Fig. 3c: fraction of critical instructions by base latency class
    /// [short, medium, long].
    pub latency_mix: [f64; 3],
}

/// Fig. 3: why mobile criticals are front-end bound.
pub fn fig3(trace_len: usize, apps_per_suite: usize) -> Vec<Fig3Row> {
    Suite::ALL
        .iter()
        .map(|&suite| {
            let mut rows: Vec<Fig3Row> = Vec::new();
            for app in suite_apps(suite, apps_per_suite) {
                let mut bench = Workbench::new(&app, trace_len);
                let base = bench.run(&DesignPoint::baseline());
                let c = &base.sim.stage_critical;
                let total = c.total().max(1) as f64;
                let stage_shares = [
                    (c.fetch_supply + c.fetch_buffer) as f64 / total,
                    c.decode as f64 / total,
                    c.issue_wait as f64 / total,
                    c.execute as f64 / total,
                    c.commit_wait as f64 / total,
                ];
                // Latency-class mix of critical instructions.
                let trace = bench.baseline_trace();
                let fanout = bench.baseline_fanout();
                let mut mix = [0u64; 3];
                for (i, e) in trace.iter().enumerate() {
                    if fanout[i] >= 8 {
                        let class = match e.op.latency_class() {
                            LatencyClass::Short => 0,
                            LatencyClass::Medium => 1,
                            LatencyClass::Long => 2,
                        };
                        mix[class] += 1;
                    }
                }
                let total_crit = mix.iter().sum::<u64>().max(1) as f64;
                rows.push(Fig3Row {
                    suite: suite.label().to_string(),
                    stage_shares,
                    stall_for_i: base.sim.stall_for_i_frac(),
                    stall_for_rd: base.sim.stall_for_rd_frac(),
                    latency_mix: [
                        mix[0] as f64 / total_crit,
                        mix[1] as f64 / total_crit,
                        mix[2] as f64 / total_crit,
                    ],
                });
            }
            // Average the per-app rows.
            let n = rows.len().max(1) as f64;
            let mut out = Fig3Row {
                suite: suite.label().to_string(),
                stage_shares: [0.0; 5],
                stall_for_i: 0.0,
                stall_for_rd: 0.0,
                latency_mix: [0.0; 3],
            };
            for row in &rows {
                for k in 0..5 {
                    out.stage_shares[k] += row.stage_shares[k] / n;
                }
                for k in 0..3 {
                    out.latency_mix[k] += row.latency_mix[k] / n;
                }
                out.stall_for_i += row.stall_for_i / n;
                out.stall_for_rd += row.stall_for_rd / n;
            }
            out
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 5

/// One Fig. 5a row: IC length/spread per suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5aRow {
    /// Suite label.
    pub suite: String,
    /// Shape of the extracted dynamic ICs.
    pub shape: ChainShape,
}

/// Fig. 5a: IC length and spread, SPEC vs Android.
pub fn fig5a(trace_len: usize, apps_per_suite: usize) -> Vec<Fig5aRow> {
    Suite::ALL
        .iter()
        .map(|&suite| {
            let mut shapes = Vec::new();
            for app in suite_apps(suite, apps_per_suite) {
                let bench = Workbench::new(&app, trace_len);
                let trace = bench.baseline_trace();
                let dfg = Dfg::build(trace);
                let chains = extract_dynamic_ics(trace, &dfg, bench.baseline_fanout(), 8192, 4096);
                shapes.push(ChainShape::measure(&chains));
            }
            // Merge by taking maxima of maxima and means of means.
            let merged = ChainShape {
                count: shapes.iter().map(|s| s.count).sum(),
                max_len: shapes.iter().map(|s| s.max_len).max().unwrap_or(0),
                mean_len: mean(shapes.iter().map(|s| s.mean_len)),
                p99_len: shapes.iter().map(|s| s.p99_len).max().unwrap_or(0),
                max_spread: shapes.iter().map(|s| s.max_spread).max().unwrap_or(0),
                mean_spread: mean(shapes.iter().map(|s| s.mean_spread)),
                p99_spread: shapes.iter().map(|s| s.p99_spread).max().unwrap_or(0),
            };
            Fig5aRow {
                suite: suite.label().to_string(),
                shape: merged,
            }
        })
        .collect()
}

/// Fig. 5b summary: unique CritICs and their Thumb-convertible share.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5bRow {
    /// Workload name.
    pub app: String,
    /// Distinct static chains observed.
    pub unique_chains: u64,
    /// Chains passing the criticality threshold.
    pub critical_chains: u64,
    /// Fraction of critical chains that convert as-is (paper: ~95.5%).
    pub convertible_frac: f64,
    /// Dynamic coverage of the selected chains (paper: ~30%).
    pub coverage: f64,
}

/// Fig. 5b: coverage CDF inputs per mobile app.
pub fn fig5b(trace_len: usize, apps: usize) -> Vec<Fig5bRow> {
    suite_apps(Suite::Mobile, apps)
        .into_iter()
        .map(|app| {
            let mut bench = Workbench::new(&app, trace_len);
            let profile = bench
                .profile(&ProfilerConfig {
                    profile_fraction: 1.0,
                    ..Default::default()
                })
                .clone();
            Fig5bRow {
                app: app.name.clone(),
                unique_chains: profile.stats.unique_chains,
                critical_chains: profile.stats.critical_chains,
                convertible_frac: profile.stats.convertible_frac,
                coverage: profile.dynamic_coverage,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 8/10

/// One per-app design-space row (Figs. 8 and 10).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Workload name.
    pub app: String,
    /// Fig. 10a: `Hoist` speedup.
    pub hoist: f64,
    /// Fig. 10a: `CritIC` speedup.
    pub critic: f64,
    /// Fig. 10a: `CritIC.Ideal` speedup.
    pub critic_ideal: f64,
    /// Fig. 8: approach-1 (branch-pair switch) speedup on stock hardware.
    pub branch_switch: f64,
    /// Fig. 10b: fetch-stall fraction saved by CritIC
    /// (baseline F.StallForI+R+D minus CritIC's).
    pub fetch_stall_saving: f64,
    /// Fig. 10c: system-wide energy saving of CritIC.
    pub system_energy_saving: f64,
    /// Fig. 10c: CPU-only energy saving of CritIC.
    pub cpu_energy_saving: f64,
    /// Fig. 10c: system-wide saving attributable to the i-cache.
    pub icache_component: f64,
}

/// Figs. 8 and 10: the CritIC design space over the ten mobile apps.
pub fn fig10(trace_len: usize, apps: usize) -> Vec<Fig10Row> {
    suite_apps(Suite::Mobile, apps)
        .into_iter()
        .map(|app| {
            let mut bench = Workbench::new(&app, trace_len);
            let base = bench.run(&DesignPoint::baseline());
            let hoist = bench.run(&DesignPoint::hoist());
            let critic = bench.run(&DesignPoint::critic());
            let ideal = bench.run(&DesignPoint::critic_ideal());
            let branch = bench.run(&DesignPoint::critic_branch_switch());
            let base_stalls = base.sim.stall_for_i_frac() + base.sim.stall_for_rd_frac();
            let critic_stalls = critic.sim.stall_for_i_frac() + critic.sim.stall_for_rd_frac();
            Fig10Row {
                app: app.name.clone(),
                hoist: hoist.sim.speedup_over(&base.sim),
                critic: critic.sim.speedup_over(&base.sim),
                critic_ideal: ideal.sim.speedup_over(&base.sim),
                branch_switch: branch.sim.speedup_over(&base.sim),
                fetch_stall_saving: base_stalls - critic_stalls,
                system_energy_saving: critic.energy.system_saving(&base.energy),
                cpu_energy_saving: critic.energy.cpu_saving(&base.energy),
                icache_component: critic.energy.system_saving_from(&base.energy, |e| e.icache),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 11

/// One hardware-mechanism row of Fig. 11.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Mechanism label.
    pub mechanism: String,
    /// Mean speedup over baseline (mobile apps).
    pub speedup: f64,
    /// Mean speedup with CritIC added on top.
    pub with_critic: f64,
    /// Change in F.StallForI fraction vs baseline (negative = reduced).
    pub d_stall_i: f64,
    /// Change in F.StallForR+D fraction vs baseline.
    pub d_stall_rd: f64,
}

/// Fig. 11: conventional hardware fetch mechanisms, alone and with CritIC.
pub fn fig11(trace_len: usize, apps: usize) -> Vec<Fig11Row> {
    let mechanisms: Vec<(&str, DesignPoint)> = vec![
        ("2xFD", DesignPoint::double_fd()),
        ("4xICache", DesignPoint::quad_icache()),
        ("EFetch", DesignPoint::efetch()),
        ("PerfectBr", DesignPoint::perfect_branch()),
        ("BackendPrio", DesignPoint::backend_prio()),
        ("AllHW", DesignPoint::all_hw()),
        ("CritIC", DesignPoint::critic()),
    ];
    let apps: Vec<_> = suite_apps(Suite::Mobile, apps);
    let mut benches: Vec<Workbench> = apps
        .iter()
        .map(|app| Workbench::new(app, trace_len))
        .collect();
    let bases: Vec<_> = benches
        .iter_mut()
        .map(|b| b.run(&DesignPoint::baseline()))
        .collect();

    mechanisms
        .into_iter()
        .map(|(name, point)| {
            let mut speedups = Vec::new();
            let mut with_critic = Vec::new();
            let mut d_i = Vec::new();
            let mut d_rd = Vec::new();
            for (bench, base) in benches.iter_mut().zip(&bases) {
                let run = bench.run(&point);
                speedups.push(run.sim.speedup_over(&base.sim));
                d_i.push(run.sim.stall_for_i_frac() - base.sim.stall_for_i_frac());
                d_rd.push(run.sim.stall_for_rd_frac() - base.sim.stall_for_rd_frac());
                let combo = if matches!(point.software, crate::design::Software::Baseline) {
                    bench.run(&point.clone().with_critic())
                } else {
                    run.clone()
                };
                with_critic.push(combo.sim.speedup_over(&base.sim));
            }
            Fig11Row {
                mechanism: name.to_string(),
                speedup: mean(speedups),
                with_critic: mean(with_critic),
                d_stall_i: mean(d_i),
                d_stall_rd: mean(d_rd),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 12

/// One Fig. 12a row: a single CritIC length.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12aRow {
    /// Chain length n.
    pub n: usize,
    /// Mean speedup with only chains of exactly this length.
    pub speedup: f64,
    /// Mean fetch-stall saving (right axis).
    pub fetch_saving: f64,
}

/// Fig. 12a: sensitivity to CritIC length.
pub fn fig12a(trace_len: usize, apps: usize, lengths: &[usize]) -> Vec<Fig12aRow> {
    let apps: Vec<_> = suite_apps(Suite::Mobile, apps);
    let mut benches: Vec<Workbench> = apps
        .iter()
        .map(|app| Workbench::new(app, trace_len))
        .collect();
    let bases: Vec<_> = benches
        .iter_mut()
        .map(|b| b.run(&DesignPoint::baseline()))
        .collect();
    lengths
        .iter()
        .map(|&n| {
            let mut speedups = Vec::new();
            let mut savings = Vec::new();
            for (bench, base) in benches.iter_mut().zip(&bases) {
                let run = bench.run(&DesignPoint::critic_exact_len(n));
                speedups.push(run.sim.speedup_over(&base.sim));
                let base_stall = base.sim.stall_for_i_frac() + base.sim.stall_for_rd_frac();
                let run_stall = run.sim.stall_for_i_frac() + run.sim.stall_for_rd_frac();
                savings.push(base_stall - run_stall);
            }
            Fig12aRow {
                n,
                speedup: mean(speedups),
                fetch_saving: mean(savings),
            }
        })
        .collect()
}

/// One Fig. 12b row: a profiling-coverage level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12bRow {
    /// Fraction of execution profiled.
    pub fraction: f64,
    /// Mean speedup at that coverage.
    pub speedup: f64,
}

/// Fig. 12b: sensitivity to profiling coverage.
pub fn fig12b(trace_len: usize, apps: usize, fractions: &[f64]) -> Vec<Fig12bRow> {
    let apps: Vec<_> = suite_apps(Suite::Mobile, apps);
    let mut benches: Vec<Workbench> = apps
        .iter()
        .map(|app| Workbench::new(app, trace_len))
        .collect();
    let bases: Vec<_> = benches
        .iter_mut()
        .map(|b| b.run(&DesignPoint::baseline()))
        .collect();
    fractions
        .iter()
        .map(|&fraction| {
            let mut speedups = Vec::new();
            for (bench, base) in benches.iter_mut().zip(&bases) {
                let run = bench.run(&DesignPoint::critic_profile_fraction(fraction));
                speedups.push(run.sim.speedup_over(&base.sim));
            }
            Fig12bRow {
                fraction,
                speedup: mean(speedups),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 13

/// One Fig. 13 row: a conversion scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13Row {
    /// Scheme label.
    pub scheme: String,
    /// Mean speedup over baseline.
    pub speedup: f64,
    /// Mean fraction of dynamic instructions in 16-bit format
    /// (Fig. 13b's y-axis).
    pub converted_frac: f64,
}

/// Fig. 13: why bother with criticality — OPP16 / Compress / CritIC /
/// OPP16+CritIC.
pub fn fig13(trace_len: usize, apps: usize) -> Vec<Fig13Row> {
    let schemes: Vec<(&str, DesignPoint)> = vec![
        ("OPP16", DesignPoint::opp16()),
        ("Compress", DesignPoint::compress()),
        ("CritIC", DesignPoint::critic()),
        ("OPP16+CritIC", DesignPoint::opp16_plus_critic()),
    ];
    let apps: Vec<_> = suite_apps(Suite::Mobile, apps);
    let mut benches: Vec<Workbench> = apps
        .iter()
        .map(|app| Workbench::new(app, trace_len))
        .collect();
    let bases: Vec<_> = benches
        .iter_mut()
        .map(|b| b.run(&DesignPoint::baseline()))
        .collect();
    schemes
        .into_iter()
        .map(|(name, point)| {
            let mut speedups = Vec::new();
            let mut converted = Vec::new();
            for (bench, base) in benches.iter_mut().zip(&bases) {
                let run = bench.run(&point);
                speedups.push(run.sim.speedup_over(&base.sim));
                converted.push(run.thumb_dyn_frac);
            }
            Fig13Row {
                scheme: name.to_string(),
                speedup: mean(speedups),
                converted_frac: mean(converted),
            }
        })
        .collect()
}

// ------------------------------------------------------------ Ledger audit

/// One row of the cycle-accounting audit: an app's baseline simulation and
/// the ledger that partitions every one of its cycles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LedgerRow {
    /// App name.
    pub app: String,
    /// Suite label.
    pub suite: String,
    /// Total simulated cycles of the baseline run.
    pub cycles: u64,
    /// Per-bucket cycle attribution (see [`critic_pipeline::CycleLedger`]).
    pub ledger: critic_pipeline::CycleLedger,
    /// Whether the ledger's buckets sum to exactly `cycles`. Always `true`
    /// unless the simulator's attribution is broken; the `figures` binary
    /// and the experiments test suite both fail when any row is unbalanced.
    pub balanced: bool,
}

/// Cycle-accounting audit: re-simulates every workload's baseline through
/// [`critic_pipeline::Simulator::run_with_ledger`] and checks the
/// single-attribution invariant (bucket sum == total cycles) per app.
pub fn ledger_audit(trace_len: usize, apps_per_suite: usize) -> Vec<LedgerRow> {
    let point = DesignPoint::baseline();
    let mut scratch = critic_pipeline::SimScratch::new();
    let mut rows = Vec::new();
    for &suite in Suite::ALL.iter() {
        for app in suite_apps(suite, apps_per_suite) {
            let bench = Workbench::new(&app, trace_len);
            let sim = critic_pipeline::Simulator::new(point.cpu_config(), point.mem_config());
            let (result, ledger) = sim.run_with_ledger(
                bench.baseline_trace(),
                bench.baseline_fanout(),
                &mut scratch,
            );
            rows.push(LedgerRow {
                app: app.name.to_string(),
                suite: suite.label().to_string(),
                cycles: result.cycles,
                balanced: ledger.check(result.cycles).is_ok(),
                ledger,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEN: usize = 25_000;

    #[test]
    fn table1_mentions_the_key_parameters() {
        let t = table1();
        assert!(t.contains("128 ROB"));
        assert!(t.contains("32KB 2-way i-cache"));
        assert!(t.contains("4096-entry"));
    }

    #[test]
    fn table2_has_26_workloads() {
        let rows = table2();
        assert_eq!(rows.len(), 26);
        assert_eq!(rows.iter().filter(|r| r.suite == "Android").count(), 10);
    }

    #[test]
    fn fig1a_rows_cover_all_suites() {
        let rows = fig1a(LEN, 1);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.prefetch_speedup > 0.9);
            assert!(row.critical_frac > 0.0);
        }
    }

    #[test]
    fn fig1b_fractions_normalize() {
        let rows = fig1b(LEN, 1);
        for row in &rows {
            let sum: f64 = row.none_frac + row.gap_fracs.iter().sum::<f64>();
            assert!((sum - 1.0).abs() < 1e-6, "{}: {}", row.suite, sum);
        }
    }

    #[test]
    fn fig10_reports_per_app() {
        let rows = fig10(LEN, 2);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.critic > 0.9 && row.critic < 1.5);
        }
    }

    #[test]
    fn fig13_has_four_schemes() {
        let rows = fig13(LEN, 1);
        assert_eq!(rows.len(), 4);
        let critic = rows
            .iter()
            .find(|r| r.scheme == "CritIC")
            .expect("critic row");
        let opp = rows.iter().find(|r| r.scheme == "OPP16").expect("opp row");
        assert!(
            critic.converted_frac < opp.converted_frac,
            "CritIC converts fewer instructions (Fig. 13b)"
        );
    }

    /// The acceptance gate of the observability layer: the cycle ledger
    /// partitions every simulated cycle for every one of the 26 Table II
    /// workloads (bucket sum == total cycles, exactly).
    #[test]
    fn ledger_audit_balances_for_all_26_workloads() {
        let rows = ledger_audit(LEN, 10);
        assert_eq!(rows.len(), 26, "one row per Table II workload");
        for row in &rows {
            assert!(
                row.balanced,
                "{}: ledger {:?} does not sum to {} cycles",
                row.app, row.ledger, row.cycles
            );
            assert_eq!(row.ledger.total(), row.cycles, "{}", row.app);
            assert!(row.cycles > 0, "{}: empty simulation", row.app);
        }
    }
}
