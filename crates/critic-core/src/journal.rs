//! The durable campaign journal: checksummed JSONL lines in bounded
//! segments, periodic checkpoint records, segment compaction, and
//! torn-tail recovery.
//!
//! The journal is the campaign's crash-consistency contract. Every cell
//! record is one JSON line carrying a CRC-32 of its own body as a trailing
//! `"crc32"` key — derived deserializers ignore unknown keys, so the same
//! line still parses as a plain [`CellRecord`] and journals written before
//! checksums existed (bare JSON lines) still replay. When the active file
//! reaches `segment_max_lines` cell records it is *rolled*: renamed to
//! `<journal>.segNNNN`, a fresh active file is started with a *checkpoint*
//! line summarizing the newest record per cell, and — once the checkpoint
//! is durable — every segment file it covers is deleted (compaction).
//! Replay therefore reads segments in numeric order, then the active file,
//! with newest-wins semantics per `(app, scheme)` key, so a compacted
//! journal resumes cell-for-cell identically to the full line history.
//!
//! Recovery never fails a resume over a half-written tail: an
//! unclassifiable final line of the active file is the signature of a
//! process killed mid-append, so [`Journal::open`] truncates it, emits one
//! [`EventKind::TornRecovery`], and reruns the cell that line would have
//! acknowledged. Unparseable *mid-file* garbage (e.g. an injected torn
//! write that merged with its successor) is skipped and counted instead —
//! rebuild, never crash.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use critic_obs::{EventKind, Telemetry};
use critic_workloads::{SysFault, SysInjector, SysOp};
use serde::{Deserialize, Serialize};

use crate::campaign::{CampaignStoreRecord, CampaignTelemetryRecord, CellRecord, CellStatus};
use crate::keys::crc32;

/// A typed journal filesystem error. Replay *tolerates* corruption (bad
/// lines are skipped or truncated, never fatal); only I/O failures that
/// make the journal unusable — an unopenable path, an unreadable segment —
/// surface as errors.
#[derive(Debug)]
pub enum JournalError {
    /// A filesystem operation on the journal failed.
    Io {
        /// The operation that failed (e.g. `open`, `read-segment`).
        op: &'static str,
        /// The path it failed on.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
}

impl JournalError {
    fn io(op: &'static str, path: &Path, source: io::Error) -> JournalError {
        JournalError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, path, source } => {
                write!(f, "journal {op} failed on {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
        }
    }
}

/// The checkpoint line a segment roll writes at the top of each fresh
/// active file: the newest record per `(app, scheme)` across everything
/// the journal has seen, under a key no [`CellRecord`] has (so pre-segment
/// readers skip it like any other foreign line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointRecord {
    /// The checkpoint body.
    pub checkpoint: CheckpointBody,
}

/// Body of a [`CheckpointRecord`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointBody {
    /// Monotonic checkpoint sequence number (rolls so far).
    pub seq: u64,
    /// Newest record per cell at checkpoint time, in key order.
    pub records: Vec<CellRecord>,
}

/// Per-run-tag summary of a replayed journal. Service-era journals
/// interleave records from many invocations (the live server stamps its
/// [`run_tag`] on every cell, a restarted server stamps the next); rolling
/// them into one blended summary hides exactly the restart boundary the
/// recovery story cares about, so `critic stats` reports one rollup per
/// tag instead.
///
/// [`run_tag`]: crate::campaign::CampaignSpec::run_tag
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunRollup {
    /// The run tag (`None` groups untagged/legacy records).
    pub run: Option<u64>,
    /// Newest-wins records carrying this tag.
    pub cells: usize,
    /// Of those, cells journaled Ok.
    pub ok: usize,
    /// Cells journaled Failed/TimedOut/Panicked.
    pub failed: usize,
    /// Cells journaled Shed.
    pub shed: usize,
    /// Summed final-attempt wall-clock, milliseconds.
    pub total_millis: u64,
}

/// Everything a journal replay recovered, for resume and for `critic
/// stats`.
#[derive(Debug, Default)]
pub struct ReplayedJournal {
    /// Newest record per `(app, scheme)`, in key order, across segments,
    /// checkpoints, and the active file. *Not* filtered to any grid — the
    /// caller filters; checkpoints must cover everything ever journaled.
    pub records: Vec<CellRecord>,
    /// The last campaign-telemetry trailer, if any survived compaction.
    pub telemetry_trailer: Option<CampaignTelemetryRecord>,
    /// The last persistent-store trailer, if any survived compaction.
    pub store_trailer: Option<CampaignStoreRecord>,
    /// Checkpoint lines encountered.
    pub checkpoints: usize,
    /// Unclassifiable non-final lines skipped (torn merges, corruption).
    pub skipped_lines: usize,
    /// Whether the active file ended in a torn line (truncated by
    /// [`Journal::open`]; merely reported by [`Journal::replay`]).
    pub torn_tail: bool,
    /// Next segment sequence number (internal: seeds [`Journal::open`]).
    pub(crate) next_seq: u64,
    /// Cell-record lines currently in the active file (internal: seeds the
    /// roll threshold).
    pub(crate) active_lines: usize,
}

impl ReplayedJournal {
    /// Groups the newest-wins records by run tag: the untagged group
    /// first, then ascending tags — one [`RunRollup`] per distinct tag.
    pub fn run_rollups(&self) -> Vec<RunRollup> {
        let mut groups: BTreeMap<Option<u64>, RunRollup> = BTreeMap::new();
        for record in &self.records {
            let rollup = groups.entry(record.run).or_insert_with(|| RunRollup {
                run: record.run,
                cells: 0,
                ok: 0,
                failed: 0,
                shed: 0,
                total_millis: 0,
            });
            rollup.cells += 1;
            match record.status {
                CellStatus::Ok => rollup.ok += 1,
                CellStatus::Shed => rollup.shed += 1,
                _ => rollup.failed += 1,
            }
            rollup.total_millis += record.millis;
        }
        groups.into_values().collect()
    }
}

/// Internal classification of one journal line.
enum Line {
    Cell(CellRecord),
    Checkpoint(CheckpointBody),
    TelemetryTrailer(CampaignTelemetryRecord),
    StoreTrailer(CampaignStoreRecord),
    Invalid,
}

/// Mutable journal state behind one lock: the active file handle, its
/// cell-line count, the next segment number, and the newest record per
/// cell (the checkpoint source).
struct Active {
    file: File,
    lines: usize,
    seq: u64,
    newest: BTreeMap<(String, String), CellRecord>,
}

/// The append side of the journal. One instance per campaign run; all
/// appends go through the systemic-fault tap so the chaos harness can
/// drop, tear, or crash any write or fsync.
pub struct Journal {
    path: PathBuf,
    segment_max_lines: usize,
    telemetry: Telemetry,
    active: Mutex<Active>,
}

/// Recovers the guard from a poisoned lock; journal state is only mutated
/// by whole-value operations, so a panicked sibling cannot leave it
/// half-written.
fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Appends `,"crc32":"<8 hex>"` (CRC-32 of the bare JSON body) as the last
/// key of a serialized JSON object, producing the journal's line format.
/// Non-object payloads are passed through unchecksummed.
pub fn checksum_line(json: &str) -> String {
    if json.len() < 3 || !json.starts_with('{') || !json.ends_with('}') {
        return json.to_string();
    }
    let crc = crc32(json.as_bytes());
    format!("{},\"crc32\":\"{crc:08x}\"}}", &json[..json.len() - 1])
}

/// The checksum suffix is `,"crc32":"xxxxxxxx"}` — 20 ASCII bytes.
const CRC_SUFFIX_LEN: usize = 20;

/// Splits a line into its bare JSON body and its CRC, when the checksum
/// suffix is present. Returns `None` for legacy (unchecksummed) lines.
fn split_crc(line: &str) -> Option<(String, u32)> {
    let bytes = line.as_bytes();
    if bytes.len() < CRC_SUFFIX_LEN + 1 {
        return None;
    }
    let tail = &bytes[bytes.len() - CRC_SUFFIX_LEN..];
    if !tail.starts_with(b",\"crc32\":\"") || !tail.ends_with(b"\"}") {
        return None;
    }
    let hex = std::str::from_utf8(&tail[10..18]).ok()?;
    let crc = u32::from_str_radix(hex, 16).ok()?;
    let body = format!("{}}}", &line[..line.len() - CRC_SUFFIX_LEN]);
    Some((body, crc))
}

/// Classifies one journal line: checksum verification first (a mismatched
/// CRC is corruption, whatever the body parses as), then shape. Legacy
/// lines without a checksum are classified on shape alone.
fn classify(line: &str) -> Line {
    if let Some((body, crc)) = split_crc(line) {
        if crc32(body.as_bytes()) != crc {
            return Line::Invalid;
        }
    }
    // Extra keys (the crc32 suffix) are ignored by derived deserializers,
    // so the full line parses directly. Shapes are disjoint: each record
    // type requires a key the others lack.
    if let Ok(cp) = serde_json::from_str::<CheckpointRecord>(line) {
        return Line::Checkpoint(cp.checkpoint);
    }
    if let Ok(record) = serde_json::from_str::<CellRecord>(line) {
        return Line::Cell(record);
    }
    if let Ok(trailer) = serde_json::from_str::<CampaignTelemetryRecord>(line) {
        return Line::TelemetryTrailer(trailer);
    }
    if let Ok(trailer) = serde_json::from_str::<CampaignStoreRecord>(line) {
        return Line::StoreTrailer(trailer);
    }
    Line::Invalid
}

/// The segment path for sequence number `seq`: `<journal>.segNNNN`.
fn segment_path(path: &Path, seq: u64) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(".seg{seq:04}"));
    path.with_file_name(name)
}

/// Existing segment files for a journal, sorted by sequence number.
fn segment_paths(path: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let base = match path.file_name() {
        Some(n) => n.to_string_lossy().into_owned(),
        None => return Ok(Vec::new()),
    };
    let prefix = format!("{base}.seg");
    let mut segments = Vec::new();
    if !parent.exists() {
        return Ok(Vec::new());
    }
    for entry in fs::read_dir(parent)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(digits) = name.strip_prefix(&prefix) {
            if let Ok(seq) = digits.parse::<u64>() {
                segments.push((seq, entry.path()));
            }
        }
    }
    segments.sort();
    Ok(segments)
}

/// Best-effort directory fsync so a rename/create/delete is durable.
fn sync_dir(path: &Path) {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    if let Ok(dir) = File::open(parent) {
        let _ = dir.sync_all();
    }
}

/// Replays one file's bytes into the accumulating state. Returns the byte
/// offset of a torn final line (active file only) for the caller to
/// truncate at.
fn replay_file(
    bytes: &[u8],
    is_active: bool,
    newest: &mut BTreeMap<(String, String), CellRecord>,
    out: &mut ReplayedJournal,
) -> Option<u64> {
    // Split into (offset, line) pairs by newline, keeping byte offsets so
    // a torn tail can be truncated in place.
    let mut lines: Vec<(usize, &[u8])> = Vec::new();
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            lines.push((start, &bytes[start..i]));
            start = i + 1;
        }
    }
    if start < bytes.len() {
        lines.push((start, &bytes[start..]));
    }
    let last_nonempty = lines
        .iter()
        .rposition(|(_, l)| !l.iter().all(|b| b.is_ascii_whitespace()));
    let mut torn_offset = None;
    for (idx, (offset, raw)) in lines.iter().enumerate() {
        let text = String::from_utf8_lossy(raw);
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        match classify(text) {
            Line::Cell(record) => {
                newest.insert((record.app.clone(), record.scheme.clone()), record);
                if is_active {
                    out.active_lines += 1;
                }
            }
            Line::Checkpoint(body) => {
                out.checkpoints += 1;
                out.next_seq = out.next_seq.max(body.seq);
                for record in body.records {
                    newest.insert((record.app.clone(), record.scheme.clone()), record);
                }
            }
            Line::TelemetryTrailer(trailer) => out.telemetry_trailer = Some(trailer),
            Line::StoreTrailer(trailer) => out.store_trailer = Some(trailer),
            Line::Invalid => {
                if is_active && Some(idx) == last_nonempty {
                    // The torn tail a kill mid-append leaves behind.
                    out.torn_tail = true;
                    torn_offset = Some(*offset as u64);
                } else {
                    out.skipped_lines += 1;
                }
            }
        }
    }
    torn_offset
}

/// Shared replay walk: segments in order, then the active file. Returns
/// the accumulated state plus the torn-tail truncation offset (if any).
fn replay_walk(
    path: &Path,
    telemetry: &Telemetry,
) -> Result<(ReplayedJournal, Option<u64>), JournalError> {
    let mut out = ReplayedJournal::default();
    let mut newest: BTreeMap<(String, String), CellRecord> = BTreeMap::new();
    let segments = segment_paths(path).map_err(|e| JournalError::io("scan-segments", path, e))?;
    if let Some((max_seq, _)) = segments.last() {
        out.next_seq = max_seq + 1;
    }
    for (_, segment) in &segments {
        let bytes = fs::read(segment).map_err(|e| JournalError::io("read-segment", segment, e))?;
        replay_file(&bytes, false, &mut newest, &mut out);
    }
    let mut torn_offset = None;
    if path.exists() {
        let bytes = fs::read(path).map_err(|e| JournalError::io("read", path, e))?;
        torn_offset = replay_file(&bytes, true, &mut newest, &mut out);
    }
    if out.torn_tail {
        telemetry.event(EventKind::TornRecovery);
    }
    out.records = newest.into_values().collect();
    Ok((out, torn_offset))
}

impl Journal {
    /// Opens (creating if absent) the journal for appending, after running
    /// recovery: segments and the active file are replayed, a torn final
    /// line is truncated away (one [`EventKind::TornRecovery`] per
    /// recovery), and the checkpoint state is seeded from *every*
    /// parseable record so a later compaction covers records outside the
    /// current grid too.
    ///
    /// `segment_max_lines` bounds cell records per segment; `0` disables
    /// rolling (one unbounded file — the pre-segmentation format).
    pub fn open(
        path: &Path,
        segment_max_lines: usize,
        telemetry: Telemetry,
    ) -> Result<(Journal, ReplayedJournal), JournalError> {
        let (replayed, torn_offset) = replay_walk(path, &telemetry)?;
        if let Some(offset) = torn_offset {
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| JournalError::io("open-truncate", path, e))?;
            file.set_len(offset)
                .map_err(|e| JournalError::io("truncate", path, e))?;
            file.sync_all()
                .map_err(|e| JournalError::io("sync-truncate", path, e))?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| JournalError::io("open", path, e))?;
        let newest = replayed
            .records
            .iter()
            .map(|r| ((r.app.clone(), r.scheme.clone()), r.clone()))
            .collect();
        let journal = Journal {
            path: path.to_path_buf(),
            segment_max_lines,
            telemetry,
            active: Mutex::new(Active {
                file,
                lines: replayed.active_lines,
                seq: replayed.next_seq,
                newest,
            }),
        };
        Ok((journal, replayed))
    }

    /// Read-only replay (for `critic stats` and the recovery drill): same
    /// walk as [`Journal::open`] but nothing is truncated or created; a
    /// torn tail is only reported.
    pub fn replay(path: &Path, telemetry: &Telemetry) -> Result<ReplayedJournal, JournalError> {
        replay_walk(path, telemetry).map(|(out, _)| out)
    }

    /// Appends one cell record (checksummed), updates the checkpoint
    /// state, and rolls the segment when full. Appends are best-effort by
    /// contract — a failed write costs at most a rerun of this cell on
    /// resume, which is strictly better than failing the campaign.
    pub fn append_cell(&self, record: &CellRecord, sys: Option<&Arc<SysInjector>>) {
        let Ok(json) = serde_json::to_string(record) else {
            return;
        };
        let line = checksum_line(&json);
        let mut active = lock_clean(&self.active);
        active
            .newest
            .insert((record.app.clone(), record.scheme.clone()), record.clone());
        self.write_line(&mut active, &line, sys);
        active.lines += 1;
        if self.segment_max_lines > 0 && active.lines >= self.segment_max_lines {
            self.roll(&mut active);
        }
    }

    /// Appends one trailer line (checksummed): a campaign-telemetry or
    /// store-stats aggregate. Trailers do not count toward the segment
    /// roll threshold and are not carried into checkpoints — a resumed
    /// campaign recomputes and re-appends its own.
    pub fn append_trailer(&self, json: &str, sys: Option<&Arc<SysInjector>>) {
        let line = checksum_line(json);
        let mut active = lock_clean(&self.active);
        self.write_line(&mut active, &line, sys);
    }

    /// One tapped line write: an injected `JournalWrite` drops the line,
    /// `JournalTorn` writes half of it with no newline, `JournalFsync`
    /// (at either tap) skips the durability sync, and a `Crash` planted on
    /// the append or sync op aborts the process — the kill-anywhere drill's
    /// seeded crash points.
    fn write_line(&self, active: &mut Active, line: &str, sys: Option<&Arc<SysInjector>>) {
        let mut write_line = true;
        let mut fsync = true;
        let mut torn = false;
        if let Some(sys) = sys {
            for fault in sys.advance_or_crash(SysOp::JournalAppend) {
                self.telemetry.event(EventKind::SysFault);
                match fault {
                    SysFault::JournalWrite => write_line = false,
                    SysFault::JournalFsync => fsync = false,
                    SysFault::JournalTorn => torn = true,
                    _ => {}
                }
            }
        }
        if !write_line {
            return;
        }
        if torn {
            let mut half = line.len() / 2;
            while half > 0 && !line.is_char_boundary(half) {
                half -= 1;
            }
            let _ = active.file.write_all(&line.as_bytes()[..half]);
            let _ = active.file.flush();
            return;
        }
        let _ = writeln!(active.file, "{line}");
        let _ = active.file.flush();
        if let Some(sys) = sys {
            for fault in sys.advance_or_crash(SysOp::JournalSync) {
                self.telemetry.event(EventKind::SysFault);
                if fault == SysFault::JournalFsync {
                    fsync = false;
                }
            }
        }
        if fsync {
            let _ = active.file.sync_all();
        }
    }

    /// Writes a durable checkpoint line into the active file without
    /// rolling a segment — the graceful-drain hook: a draining server
    /// checkpoints the newest record per cell so the replay after a
    /// subsequent crash reads one line instead of the whole tail. Replay
    /// accepts checkpoint lines anywhere in a file; only cell lines count
    /// toward the roll threshold, so this never perturbs segmentation.
    pub fn checkpoint(&self) {
        let mut active = lock_clean(&self.active);
        let body = CheckpointRecord {
            checkpoint: CheckpointBody {
                seq: active.seq,
                records: active.newest.values().cloned().collect(),
            },
        };
        let Ok(json) = serde_json::to_string(&body) else {
            return;
        };
        let line = checksum_line(&json);
        if writeln!(active.file, "{line}").is_err() {
            return;
        }
        let _ = active.file.flush();
        if active.file.sync_all().is_ok() {
            self.telemetry.event(EventKind::Checkpoint);
        }
    }

    /// Rolls the active file into a segment and starts a fresh one headed
    /// by a checkpoint. Compaction (deleting covered segments) happens
    /// only after the checkpoint is durable, so a crash at any step leaves
    /// a replayable journal:
    ///
    /// 1. fsync + rename active → `<journal>.segNNNN` (records safe in the
    ///    segment);
    /// 2. create the new active file, write + fsync the checkpoint line
    ///    (records now *also* safe in the checkpoint);
    /// 3. delete every segment file — all are covered by the checkpoint.
    ///
    /// Every step is best-effort: a failure leaves the journal in the
    /// previous (still-consistent) state and the roll is retried on the
    /// next append.
    fn roll(&self, active: &mut Active) {
        let _ = active.file.sync_all();
        let segment = segment_path(&self.path, active.seq);
        if fs::rename(&self.path, &segment).is_err() {
            return;
        }
        sync_dir(&self.path);
        let file = match OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        {
            Ok(file) => file,
            Err(_) => {
                // Undo the rename so appends keep landing in one file.
                let _ = fs::rename(&segment, &self.path);
                return;
            }
        };
        active.file = file;
        active.lines = 0;
        active.seq += 1;
        let body = CheckpointRecord {
            checkpoint: CheckpointBody {
                seq: active.seq,
                records: active.newest.values().cloned().collect(),
            },
        };
        let Ok(json) = serde_json::to_string(&body) else {
            return;
        };
        let line = checksum_line(&json);
        if writeln!(active.file, "{line}").is_err() {
            return;
        }
        let _ = active.file.flush();
        if active.file.sync_all().is_err() {
            return;
        }
        self.telemetry.event(EventKind::Checkpoint);
        // The checkpoint is durable and covers everything ever seen:
        // every segment file is now redundant.
        if let Ok(segments) = segment_paths(&self.path) {
            for (_, path) in segments {
                let _ = fs::remove_file(path);
            }
            sync_dir(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CellMetrics, CellStatus};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn record(app: &str, scheme: &str, millis: u64) -> CellRecord {
        CellRecord {
            app: app.to_string(),
            scheme: scheme.to_string(),
            status: CellStatus::Ok,
            attempts: 1,
            millis,
            fault: None,
            metrics: Some(CellMetrics {
                speedup: 1.25,
                cpu_energy_saving: 0.1,
                thumb_dyn_frac: 0.5,
                dyn_insns: 1000,
            }),
            error: None,
            validation: None,
            spans: None,
            degraded: None,
            run: Some(0),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("critic-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn checksummed_lines_round_trip() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("j.jsonl");
        let (journal, replayed) = Journal::open(&path, 0, Telemetry::off()).expect("open");
        assert!(replayed.records.is_empty());
        journal.append_cell(&record("a", "s1", 10), None);
        journal.append_cell(&record("b", "s1", 20), None);
        drop(journal);
        let text = fs::read_to_string(&path).expect("read");
        for line in text.lines() {
            let (body, crc) = split_crc(line).expect("crc suffix present");
            assert_eq!(crc32(body.as_bytes()), crc);
        }
        let replayed = Journal::replay(&path, &Telemetry::off()).expect("replay");
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.records[0], record("a", "s1", 10));
        assert_eq!(replayed.skipped_lines, 0);
        assert!(!replayed.torn_tail);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_records_newest_wins() {
        let dir = temp_dir("newest");
        let path = dir.join("j.jsonl");
        let (journal, _) = Journal::open(&path, 0, Telemetry::off()).expect("open");
        journal.append_cell(&record("a", "s1", 10), None);
        journal.append_cell(&record("a", "s1", 99), None);
        drop(journal);
        let replayed = Journal::replay(&path, &Telemetry::off()).expect("replay");
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.records[0].millis, 99);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_roll_checkpoints_and_compacts() {
        let dir = temp_dir("roll");
        let path = dir.join("j.jsonl");
        let telemetry = Telemetry::enabled();
        let (journal, _) = Journal::open(&path, 2, telemetry.clone()).expect("open");
        for i in 0..5 {
            journal.append_cell(&record(&format!("app{i}"), "s1", i), None);
        }
        drop(journal);
        // Two rolls happened (after lines 2 and 4); compaction deleted the
        // segments each durable checkpoint covered.
        assert!(segment_paths(&path).expect("scan").is_empty());
        let text = fs::read_to_string(&path).expect("read");
        assert!(text.contains("\"checkpoint\""));
        let replayed = Journal::replay(&path, &Telemetry::off()).expect("replay");
        assert_eq!(replayed.records.len(), 5, "checkpoint covers all records");
        assert!(replayed.checkpoints >= 1);
        let snapshot = telemetry.snapshot().expect("snapshot");
        assert_eq!(snapshot.durability().checkpoints, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_once_with_one_event() {
        let dir = temp_dir("torn");
        let path = dir.join("j.jsonl");
        let (journal, _) = Journal::open(&path, 0, Telemetry::off()).expect("open");
        journal.append_cell(&record("a", "s1", 10), None);
        drop(journal);
        // Simulate a kill mid-append: half a line, no newline.
        let full = checksum_line(&serde_json::to_string(&record("b", "s1", 20)).expect("json"));
        let mut file = OpenOptions::new().append(true).open(&path).expect("open");
        file.write_all(&full.as_bytes()[..full.len() / 2])
            .expect("tear");
        drop(file);
        let telemetry = Telemetry::enabled();
        let (journal, replayed) = Journal::open(&path, 0, telemetry.clone()).expect("recover");
        assert!(replayed.torn_tail);
        assert_eq!(replayed.records.len(), 1, "torn cell reruns");
        let snapshot = telemetry.snapshot().expect("snapshot");
        assert_eq!(snapshot.durability().torn_recoveries, 1);
        drop(journal);
        // The tail is gone from disk: a second recovery sees nothing torn.
        let replayed = Journal::replay(&path, &Telemetry::off()).expect("replay");
        assert!(!replayed.torn_tail);
        assert_eq!(replayed.records.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_bare_lines_still_replay() {
        let dir = temp_dir("legacy");
        let path = dir.join("j.jsonl");
        let json = serde_json::to_string(&record("a", "s1", 10)).expect("json");
        fs::write(&path, format!("{json}\n")).expect("write");
        let replayed = Journal::replay(&path, &Telemetry::off()).expect("replay");
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.skipped_lines, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_mid_file_line_is_skipped_not_fatal() {
        let dir = temp_dir("corrupt");
        let path = dir.join("j.jsonl");
        let (journal, _) = Journal::open(&path, 0, Telemetry::off()).expect("open");
        journal.append_cell(&record("a", "s1", 10), None);
        journal.append_cell(&record("b", "s1", 20), None);
        journal.append_cell(&record("c", "s1", 30), None);
        drop(journal);
        let text = fs::read_to_string(&path).expect("read");
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        // Flip a payload byte in the middle line: the CRC now mismatches.
        lines[1] = lines[1].replace("\"millis\":20", "\"millis\":21");
        fs::write(&path, format!("{}\n", lines.join("\n"))).expect("rewrite");
        let replayed = Journal::replay(&path, &Telemetry::off()).expect("replay");
        assert_eq!(replayed.skipped_lines, 1);
        assert_eq!(replayed.records.len(), 2, "corrupt cell reruns");
        assert!(replayed.records.iter().all(|r| r.app != "b"));
        let _ = fs::remove_dir_all(&dir);
    }

    /// Satellite: property test — a compacted journal resumes exactly like
    /// the full line history. Random append schedules (duplicate keys,
    /// varying segment bounds) are written twice, with and without
    /// rolling; replay must agree cell-for-cell.
    #[test]
    fn compaction_preserves_resume_semantics() {
        let dir = temp_dir("prop");
        for case in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(0x5eed ^ case);
            let appends: Vec<CellRecord> = (0..rng.gen_range(1..40))
                .map(|i| {
                    record(
                        &format!("app{}", rng.gen_range(0..6)),
                        &format!("s{}", rng.gen_range(0..3)),
                        i,
                    )
                })
                .collect();
            let segment_max = rng.gen_range(1..8);
            let full = dir.join(format!("full-{case}.jsonl"));
            let compacted = dir.join(format!("compacted-{case}.jsonl"));
            let (j_full, _) = Journal::open(&full, 0, Telemetry::off()).expect("open full");
            let (j_comp, _) =
                Journal::open(&compacted, segment_max, Telemetry::off()).expect("open comp");
            for r in &appends {
                j_full.append_cell(r, None);
                j_comp.append_cell(r, None);
            }
            drop((j_full, j_comp));
            let r_full = Journal::replay(&full, &Telemetry::off()).expect("replay full");
            let r_comp = Journal::replay(&compacted, &Telemetry::off()).expect("replay comp");
            assert_eq!(
                r_full.records, r_comp.records,
                "case {case}: segment_max={segment_max} diverged from the full history"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_rollups_group_by_tag() {
        let dir = temp_dir("rollups");
        let path = dir.join("j.jsonl");
        let (journal, _) = Journal::open(&path, 0, Telemetry::off()).expect("open");
        let mut r0 = record("a", "s1", 10);
        r0.run = Some(0);
        let mut r1 = record("b", "s1", 20);
        r1.run = Some(1);
        r1.status = CellStatus::Failed;
        r1.metrics = None;
        let mut r2 = record("c", "s1", 0);
        r2.run = Some(1);
        r2.status = CellStatus::Shed;
        r2.metrics = None;
        let mut legacy = record("d", "s1", 5);
        legacy.run = None;
        for r in [&r0, &r1, &r2, &legacy] {
            journal.append_cell(r, None);
        }
        drop(journal);
        let replayed = Journal::replay(&path, &Telemetry::off()).expect("replay");
        let rollups = replayed.run_rollups();
        assert_eq!(rollups.len(), 3);
        // Untagged group first, then ascending tags.
        assert_eq!(rollups[0].run, None);
        assert_eq!(rollups[0].cells, 1);
        assert_eq!(rollups[1].run, Some(0));
        assert_eq!(rollups[1].ok, 1);
        assert_eq!(rollups[1].total_millis, 10);
        assert_eq!(rollups[2].run, Some(1));
        assert_eq!(rollups[2].cells, 2);
        assert_eq!(rollups[2].failed, 1);
        assert_eq!(rollups[2].shed, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_checkpoint_is_replayable_midfile() {
        let dir = temp_dir("drain-cp");
        let path = dir.join("j.jsonl");
        let telemetry = Telemetry::enabled();
        let (journal, _) = Journal::open(&path, 0, telemetry.clone()).expect("open");
        journal.append_cell(&record("a", "s1", 10), None);
        journal.checkpoint();
        journal.append_cell(&record("b", "s1", 20), None);
        drop(journal);
        let snapshot = telemetry.snapshot().expect("snapshot");
        assert_eq!(snapshot.durability().checkpoints, 1);
        let replayed = Journal::replay(&path, &Telemetry::off()).expect("replay");
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.checkpoints, 1);
        assert_eq!(replayed.skipped_lines, 0);
        // Reopen appends cleanly after the mid-file checkpoint.
        let (journal, replayed) = Journal::open(&path, 0, Telemetry::off()).expect("reopen");
        assert_eq!(replayed.records.len(), 2);
        journal.append_cell(&record("c", "s1", 30), None);
        drop(journal);
        let replayed = Journal::replay(&path, &Telemetry::off()).expect("replay");
        assert_eq!(replayed.records.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_after_compaction_resumes_and_keeps_covering() {
        let dir = temp_dir("reopen");
        let path = dir.join("j.jsonl");
        let (journal, _) = Journal::open(&path, 2, Telemetry::off()).expect("open");
        for i in 0..4 {
            journal.append_cell(&record(&format!("a{i}"), "s1", i), None);
        }
        drop(journal);
        // Reopen: the checkpoint seeds the newest map, so further rolls
        // keep covering the first generation of records.
        let (journal, replayed) = Journal::open(&path, 2, Telemetry::off()).expect("reopen");
        assert_eq!(replayed.records.len(), 4);
        for i in 4..8 {
            journal.append_cell(&record(&format!("a{i}"), "s1", i), None);
        }
        drop(journal);
        let replayed = Journal::replay(&path, &Telemetry::off()).expect("replay");
        assert_eq!(replayed.records.len(), 8);
        let _ = fs::remove_dir_all(&dir);
    }
}
