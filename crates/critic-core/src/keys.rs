//! Stable, versioned content keys and checksums for the durable tier.
//!
//! The in-memory store used to key artifacts by FNV-1a over the `Debug`
//! form of their configuration structs. That is fragile in exactly the way
//! a *persistent* cache cannot afford: reordering two fields in a derive,
//! renaming a variant, or a `Debug` formatting change in a future toolchain
//! silently changes every key and invalidates (or worse, aliases) every
//! entry written by an older binary.
//!
//! [`stable_key`] replaces it with a canonical binary encoding over the
//! serde [`Value`] tree:
//!
//! * every node is emitted as a one-byte type tag followed by a
//!   fixed-endian payload (lengths and integers little-endian);
//! * object entries are **sorted by key** before encoding, so two structs
//!   with the same fields produce the same key regardless of declaration
//!   order (see the derive-reorder test below);
//! * the encoding is prefixed by [`KEY_FORMAT_VERSION`], so an intentional
//!   format change is an explicit version bump that misses cleanly on
//!   every old entry instead of aliasing any of them.
//!
//! [`crc32`] is the IEEE CRC-32 used for per-entry and per-line checksums
//! by the disk store and the journal; its table is built in a `const`
//! context so the hot path is a plain lookup loop.

use serde::{Serialize, Value};

/// Version of the canonical key encoding. Bump this when the encoding
/// itself changes meaning; every existing disk entry then misses cleanly.
pub const KEY_FORMAT_VERSION: u32 = 1;

/// One-byte type tags of the canonical encoding, in [`Value`] order.
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_UINT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_ARRAY: u8 = 6;
const TAG_OBJECT: u8 = 7;

/// Appends the canonical encoding of `value` to `out`.
fn encode(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::UInt(u) => {
            out.push(TAG_UINT);
            out.extend_from_slice(&u.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            out.extend_from_slice(&(items.len() as u64).to_le_bytes());
            for item in items {
                encode(item, out);
            }
        }
        Value::Object(entries) => {
            // Canonical form: entries sorted by key, so declaration order
            // in a derive is not part of the key.
            let mut sorted: Vec<&(String, Value)> = entries.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            out.push(TAG_OBJECT);
            out.extend_from_slice(&(sorted.len() as u64).to_le_bytes());
            for (key, item) in sorted {
                out.extend_from_slice(&(key.len() as u64).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
                encode(item, out);
            }
        }
    }
}

/// FNV-1a folded over `bytes`, continuing from `h`.
fn fnv1a_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The stable content key of `value` under encoding version `version`.
fn stable_key_versioned<T: Serialize + ?Sized>(value: &T, version: u32) -> u64 {
    let mut buf = Vec::with_capacity(128);
    encode(&value.to_value(), &mut buf);
    let h = fnv1a_fold(0xcbf2_9ce4_8422_2325, &version.to_le_bytes());
    fnv1a_fold(h, &buf)
}

/// The stable, versioned content key of any serializable value.
///
/// Two values with equal serde trees always key identically — across
/// field reorderings, across processes, and across binaries built from
/// the same encoding version.
pub fn stable_key<T: Serialize + ?Sized>(value: &T) -> u64 {
    stable_key_versioned(value, KEY_FORMAT_VERSION)
}

/// IEEE CRC-32 lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the zlib/PNG polynomial, reflected).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    use super::*;

    #[derive(Serialize)]
    struct Declared {
        alpha: u32,
        beta: f64,
        gamma: String,
        nested: Vec<u32>,
    }

    // The same fields as `Declared`, deliberately declared in a different
    // order: a stand-in for a refactor reordering a config struct's fields.
    #[derive(Serialize)]
    struct Reordered {
        nested: Vec<u32>,
        gamma: String,
        alpha: u32,
        beta: f64,
    }

    #[test]
    fn derive_reordering_does_not_change_keys() {
        let a = Declared {
            alpha: 7,
            beta: 2.5,
            gamma: "acrobat".into(),
            nested: vec![1, 2, 3],
        };
        let b = Reordered {
            nested: vec![1, 2, 3],
            gamma: "acrobat".into(),
            alpha: 7,
            beta: 2.5,
        };
        assert_eq!(stable_key(&a), stable_key(&b));
    }

    #[test]
    fn distinct_values_key_distinctly() {
        let base = Declared {
            alpha: 7,
            beta: 2.5,
            gamma: "acrobat".into(),
            nested: vec![1, 2, 3],
        };
        let tweaked = Declared {
            alpha: 8,
            ..Declared {
                alpha: 7,
                beta: 2.5,
                gamma: "acrobat".into(),
                nested: vec![1, 2, 3],
            }
        };
        assert_ne!(stable_key(&base), stable_key(&tweaked));
        assert_ne!(stable_key(&1u32), stable_key(&"1"));
        assert_ne!(
            stable_key(&Vec::<u32>::new()),
            stable_key(&Option::<u32>::None)
        );
    }

    #[test]
    fn a_version_bump_changes_every_key() {
        let value = Declared {
            alpha: 7,
            beta: 2.5,
            gamma: "acrobat".into(),
            nested: vec![1, 2, 3],
        };
        assert_ne!(
            stable_key_versioned(&value, KEY_FORMAT_VERSION),
            stable_key_versioned(&value, KEY_FORMAT_VERSION + 1),
        );
    }

    #[test]
    fn keys_are_stable_across_serde_round_trips() {
        // A value that survives a JSON round trip must key identically on
        // both sides: the disk tier looks entries up by the key computed
        // from the *request*, but wrote them under the key computed from
        // the value originally built.
        #[derive(Serialize, Deserialize, PartialEq, Debug)]
        struct Config {
            window: u64,
            scale: f64,
            label: Option<String>,
        }
        let config = Config {
            window: 128,
            scale: 0.75,
            label: Some("cone".into()),
        };
        let json = serde_json::to_string(&config).expect("serializes");
        let back: Config = serde_json::from_str(&json).expect("round trips");
        assert_eq!(back, config);
        assert_eq!(stable_key(&config), stable_key(&back));
    }

    #[test]
    fn crc32_matches_the_ieee_check_vector() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }
}
