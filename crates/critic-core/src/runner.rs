//! The experiment workbench: one app, one recorded input, many variants.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use critic_compiler::{
    try_apply_compress, try_apply_critic_pass, try_apply_opp16, BaselineExecution,
    CriticPassOptions, PassReport,
};
use critic_energy::{EnergyBreakdown, EnergyModel};
use critic_obs::{EventKind, SpanKind, Telemetry};
use critic_pipeline::{
    BatchSimulator, SimEngine, SimResult, Simulator, StreamRunStats, StreamScratch,
};
use critic_profiler::{ChainSpec, Profile, Profiler, ProfilerConfig};
use critic_workloads::{
    inject_variant, AppSpec, BlockId, ExecutionPath, Fault, Program, StreamConfig, Trace,
    TraceStream,
};
use serde::{Deserialize, Serialize};

use crate::design::{DesignPoint, Software};
use crate::error::RunError;
use crate::store::{ArtifactStore, World};

/// Per-run translation-validation accounting, journaled per campaign cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationStats {
    /// Chains in the profile the variant was validated against.
    pub chains_checked: u64,
    /// Chains demoted back to their 32-bit form after a divergence.
    pub chains_demoted: u64,
    /// Divergences that demotion could not resolve (the run then fails
    /// with [`RunError::Validation`]).
    pub failed: u64,
}

/// Everything one run of one design point produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// The design point's label.
    pub design: String,
    /// Timing result.
    pub sim: SimResult,
    /// Energy result.
    pub energy: EnergyBreakdown,
    /// What the compiler did to the binary.
    pub pass: PassReport,
    /// Fraction of *dynamic* instructions fetched in 16-bit format
    /// (Fig. 13b's y-axis).
    pub thumb_dyn_frac: f64,
    /// Dynamic instructions executed (includes inserted overhead).
    pub dyn_insns: usize,
}

/// Generates an app's binary and input once, then evaluates design points
/// over the identical input — the paper's methodology of running "the same
/// parts for all the optimizations evaluated".
#[derive(Debug)]
pub struct Workbench {
    /// The workload.
    pub app: AppSpec,
    /// The original (baseline) binary.
    pub program: Program,
    /// The recorded block-level input.
    pub path: ExecutionPath,
    base_trace: Arc<Trace>,
    /// `base_trace.compute_fanout()`, computed once at assembly and
    /// threaded through every consumer (simulation, figures, training).
    base_fanout: Arc<Vec<u32>>,
    /// Lazily-computed ROB-cone fanout shared by every profiler config.
    cone_fanout: Option<Arc<Vec<u32>>>,
    energy_model: EnergyModel,
    profiles: HashMap<String, Arc<Profile>>,
    variants: HashMap<String, (Program, PassReport)>,
    variant_fault: Option<(Fault, u64)>,
    /// Campaign-wide artifact store this workbench reads and feeds, plus
    /// the shared world it was built over.
    store: Option<(Arc<ArtifactStore>, Arc<World>)>,
    /// Shared-decode simulation context: the base trace is decoded once
    /// per workbench, every variant decode reuses its common prefix, and
    /// the simulator scratch (tables, queues, models) is recycled across
    /// all of this workbench's runs — one trace decode per app instead of
    /// one per (app, scheme) cell.
    batch: BatchSimulator,
    /// Which simulation engine [`Workbench::simulate`] routes through.
    /// Defaults to the data-oriented core; the bench harness switches to
    /// [`SimEngine::Reference`] to measure the scalar baseline.
    engine: SimEngine,
    /// Reusable variant-expansion buffers: each non-baseline cell
    /// re-expands its trace and fanout into these instead of allocating
    /// multi-megabyte vectors per (app, scheme) cell.
    variant_trace: Trace,
    variant_fanout: Vec<u32>,
    /// When set, [`Workbench::simulate`] routes data-oriented runs through
    /// the bounded-memory streaming front-end with this window size
    /// (bit-identical results; see `critic_pipeline::stream_sim`), and
    /// storeless profiling folds the stream instead of materializing.
    stream_window: Option<usize>,
    /// Recycled ring scratch for the streaming front-end.
    stream_scratch: StreamScratch,
    /// Memory accounting of the most recent streamed simulation.
    last_stream_stats: Option<StreamRunStats>,
    /// Span/event sink; [`Telemetry::off`] by default, so the instrumented
    /// paths cost one branch per span when telemetry is disabled.
    telemetry: Telemetry,
}

impl Workbench {
    /// Generates the app's binary and records a `trace_len`-instruction
    /// execution.
    ///
    /// # Panics
    ///
    /// Panics if the generated binary or trace fails validation (a
    /// generator bug); use [`Workbench::try_new`] to get a [`RunError`].
    pub fn new(app: &AppSpec, trace_len: usize) -> Workbench {
        match Workbench::try_new(app, trace_len) {
            Ok(bench) => bench,
            Err(e) => panic!("workbench setup for {} failed: {e}", app.name),
        }
    }

    /// Fallible variant of [`Workbench::new`]: validates the generated
    /// binary before expanding the trace, and the trace against the
    /// binary, returning a typed [`RunError`] on either mismatch.
    pub fn try_new(app: &AppSpec, trace_len: usize) -> Result<Workbench, RunError> {
        let program = app.generate_program();
        program.validate()?;
        let path = ExecutionPath::generate(&program, app.path_seed(), trace_len);
        let base_trace = Trace::expand(&program, &path);
        Workbench::try_assemble(app, program, path, base_trace)
    }

    /// Builds a workbench from externally supplied (possibly corrupted)
    /// parts, validating the program and the trace against it. This is the
    /// fault-injection entry point: campaigns inject faults into the
    /// program or trace and still get a typed error instead of a panic
    /// deep inside the analyses.
    pub fn try_assemble(
        app: &AppSpec,
        program: Program,
        path: ExecutionPath,
        base_trace: Trace,
    ) -> Result<Workbench, RunError> {
        program.validate_encoding()?;
        base_trace.validate(&program)?;
        let base_fanout = base_trace.compute_fanout();
        Ok(Workbench {
            app: app.clone(),
            program,
            path,
            base_trace: Arc::new(base_trace),
            base_fanout: Arc::new(base_fanout),
            cone_fanout: None,
            energy_model: EnergyModel::default(),
            profiles: HashMap::new(),
            variants: HashMap::new(),
            variant_fault: None,
            store: None,
            batch: BatchSimulator::new(),
            engine: SimEngine::default(),
            variant_trace: Trace::default(),
            variant_fanout: Vec::new(),
            stream_window: None,
            stream_scratch: StreamScratch::new(),
            last_stream_stats: None,
            telemetry: Telemetry::off(),
        })
    }

    /// Builds a workbench over a store-shared [`World`]: the generated
    /// program, path, trace, and fanout are reused as-is (they were
    /// validated when the world was built), and profiles, cone fanouts,
    /// baseline simulations, and baseline oracle executions are served
    /// from — and contributed to — `store`.
    pub fn from_world(app: &AppSpec, world: Arc<World>, store: Arc<ArtifactStore>) -> Workbench {
        Workbench {
            app: app.clone(),
            program: (*world.program).clone(),
            path: (*world.path).clone(),
            base_trace: Arc::clone(&world.trace),
            base_fanout: Arc::clone(&world.fanout),
            cone_fanout: None,
            energy_model: EnergyModel::default(),
            profiles: HashMap::new(),
            variants: HashMap::new(),
            variant_fault: None,
            store: Some((store, world)),
            batch: BatchSimulator::new(),
            engine: SimEngine::default(),
            variant_trace: Trace::default(),
            variant_fanout: Vec::new(),
            stream_window: None,
            stream_scratch: StreamScratch::new(),
            last_stream_stats: None,
            telemetry: Telemetry::off(),
        }
    }

    /// Routes this workbench's spans (profile, passes, validate, sim) and
    /// demotion events into `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Selects the simulation engine. Results are bit-identical across
    /// engines; [`SimEngine::Reference`] exists for the bench harness's
    /// scalar baseline and for differential checks.
    pub fn set_engine(&mut self, engine: SimEngine) {
        self.engine = engine;
    }

    /// Enables (`Some(window)`) or disables (`None`) the bounded-memory
    /// streaming trace pipeline for data-oriented runs: the trace is
    /// expanded, fanout-annotated, decoded, and simulated window-at-a-time
    /// without ever materializing the dynamic stream. Results are
    /// bit-identical to the materialized path (enforced by the
    /// differential battery); only peak memory changes — O(window) instead
    /// of O(trace). The reference engine ignores this and stays
    /// materialized.
    pub fn set_stream_window(&mut self, window: Option<usize>) {
        self.stream_window = window;
    }

    /// Memory accounting of the most recent streamed simulation, if any
    /// run has been routed through the streaming front-end.
    pub fn stream_stats(&self) -> Option<StreamRunStats> {
        self.last_stream_stats
    }

    /// Decode-sharing counters for this workbench's batch context.
    pub fn batch_stats(&self) -> critic_pipeline::BatchStats {
        self.batch.stats()
    }

    /// Arms a deterministic miscompile: the next non-baseline variant built
    /// is corrupted with `fault` (seeded by `seed`) after its compiler pass
    /// runs. The corruption is silent — only the differential oracle
    /// ([`Workbench::try_run_validated`]) can see it.
    pub fn set_variant_fault(&mut self, fault: Fault, seed: u64) {
        self.variant_fault = Some((fault, seed));
        // Drop any variants built before the fault was armed.
        self.variants.clear();
    }

    /// The baseline dynamic trace.
    pub fn baseline_trace(&self) -> &Trace {
        &self.base_trace
    }

    /// The baseline trace's direct-fanout vector
    /// ([`Trace::compute_fanout`]), computed once at assembly.
    pub fn baseline_fanout(&self) -> &[u32] {
        &self.base_fanout
    }

    /// The baseline trace's ROB-cone fanout (window 128), computed at
    /// most once — campaign-wide when store-backed, per-workbench
    /// otherwise.
    fn cone(&mut self) -> Arc<Vec<u32>> {
        if let Some(cone) = &self.cone_fanout {
            return Arc::clone(cone);
        }
        let cone = match &self.store {
            Some((store, world)) => store.cone_fanout(world),
            None => Arc::new(self.base_trace.compute_cone_fanout(128)),
        };
        self.cone_fanout = Some(Arc::clone(&cone));
        cone
    }

    /// Builds (or returns the cached) profile for a profiler configuration.
    ///
    /// # Panics
    ///
    /// Panics if the profiler rejects the workbench's trace; impossible
    /// for a workbench built through a validating constructor.
    pub fn profile(&mut self, config: &ProfilerConfig) -> &Profile {
        match self.ensure_profile(config) {
            Ok(key) => &self.profiles[&key],
            Err(e) => panic!("profiling {} failed: {e}", self.app.name),
        }
    }

    /// Fallible variant of [`Workbench::profile`].
    pub fn try_profile(&mut self, config: &ProfilerConfig) -> Result<&Profile, RunError> {
        let key = self.ensure_profile(config)?;
        Ok(&self.profiles[&key])
    }

    /// Builds the profile if missing; returns its cache key.
    fn ensure_profile(&mut self, config: &ProfilerConfig) -> Result<String, RunError> {
        let key = format!("{config:?}");
        if !self.profiles.contains_key(&key) {
            let telemetry = self.telemetry.clone();
            let profile = telemetry.time(SpanKind::Profile, || {
                if let Some((store, world)) = self.store.clone() {
                    store.profile(&world, config)
                } else if let Some(window) = self.stream_window {
                    // Streamed profiling: fold chain statistics over a
                    // cone-enabled stream without materializing the trace
                    // or the cone vector. Bit-identical to the
                    // materialized build (the fold is order-preserving
                    // integer sums; see `critic-profiler`'s tests).
                    let mut stream = TraceStream::new(
                        &self.program,
                        &self.path,
                        StreamConfig {
                            window,
                            lookahead: critic_workloads::DEFAULT_LOOKAHEAD,
                            cone_window: Some(128),
                        },
                    );
                    Ok(Arc::new(
                        Profiler::new(config.clone())
                            .try_build_profile_streamed(&self.program, &mut stream)?,
                    ))
                } else {
                    let cone = self.cone();
                    Ok(Arc::new(
                        Profiler::new(config.clone()).try_build_profile_with_cone(
                            &self.program,
                            &self.base_trace,
                            &cone,
                        )?,
                    ))
                }
            })?;
            self.profiles.insert(key.clone(), profile);
        }
        Ok(key)
    }

    /// Builds (or returns the cached) transformed binary for a software
    /// scheme — the program [`Workbench::try_run`] would simulate for it.
    /// Exposed for benches and probes that need the variant trace itself.
    pub fn try_variant(&mut self, software: &Software) -> Result<(Program, PassReport), RunError> {
        self.variant(software)
    }

    fn variant(&mut self, software: &Software) -> Result<(Program, PassReport), RunError> {
        let key = software.label();
        if let Some(cached) = self.variants.get(&key) {
            return Ok(cached.clone());
        }
        let built = self.build_variant(software)?;
        self.variants.insert(key.clone(), built.clone());
        Ok(built)
    }

    /// The profile a software scheme consumes (with any scheme-specific
    /// chain filtering applied), or `None` for profile-free schemes.
    fn software_profile(&mut self, software: &Software) -> Result<Option<Profile>, RunError> {
        Ok(match *software {
            Software::Baseline | Software::Opp16 | Software::Compress => None,
            Software::Hoist | Software::CritIcBranchSwitch | Software::Opp16PlusCritIc => {
                Some(self.try_profile(&ProfilerConfig::default())?.clone())
            }
            Software::CritIc {
                profile_fraction,
                max_len,
                exact_len,
            } => {
                let config = ProfilerConfig {
                    profile_fraction,
                    max_chain_len: max_len,
                    ..ProfilerConfig::default()
                };
                let mut profile = self.try_profile(&config)?.clone();
                if exact_len {
                    if let Some(n) = max_len {
                        profile.chains.retain(|c| c.len() == n);
                    }
                }
                Some(profile)
            }
            Software::CritIcIdeal => Some(self.try_profile(&ProfilerConfig::ideal())?.clone()),
        })
    }

    /// Applies a scheme's compiler passes to `program`, consuming the
    /// profile [`Workbench::software_profile`] resolved for it.
    fn apply_software(
        program: &mut Program,
        software: &Software,
        profile: Option<&Profile>,
    ) -> Result<PassReport, RunError> {
        let empty = Profile::empty();
        let profile = profile.unwrap_or(&empty);
        Ok(match *software {
            Software::Baseline => PassReport::default(),
            Software::Hoist => {
                try_apply_critic_pass(program, profile, CriticPassOptions::hoist_only())?
            }
            Software::CritIc { .. } => {
                try_apply_critic_pass(program, profile, CriticPassOptions::default())?
            }
            Software::CritIcBranchSwitch => {
                try_apply_critic_pass(program, profile, CriticPassOptions::branch_switch())?
            }
            Software::CritIcIdeal => {
                try_apply_critic_pass(program, profile, CriticPassOptions::ideal())?
            }
            Software::Opp16 => try_apply_opp16(program, critic_compiler::opp16::OPP16_MIN_RUN)?,
            Software::Compress => try_apply_compress(program)?,
            Software::Opp16PlusCritIc => {
                let mut report =
                    try_apply_critic_pass(program, profile, CriticPassOptions::default())?;
                report.absorb(try_apply_opp16(
                    program,
                    critic_compiler::opp16::OPP16_MIN_RUN,
                )?);
                report
            }
        })
    }

    fn build_variant(&mut self, software: &Software) -> Result<(Program, PassReport), RunError> {
        let profile = self.software_profile(software)?;
        let telemetry = self.telemetry.clone();
        telemetry.time(SpanKind::Passes, || {
            let mut program = self.program.clone();
            let report = Self::apply_software(&mut program, software, profile.as_ref())?;
            if let Some((fault, seed)) = self.variant_fault {
                if !matches!(software, Software::Baseline) {
                    let executed: HashSet<BlockId> = self.path.blocks.iter().copied().collect();
                    inject_variant(&mut program, fault, seed, &executed)
                        .map_err(|e| RunError::Inject(e.to_string()))?;
                }
            }
            Ok((program, report))
        })
    }

    /// Runs one design point over the recorded input.
    ///
    /// # Panics
    ///
    /// Panics if profiling or a compiler pass rejects its inputs; use
    /// [`Workbench::try_run`] to get a [`RunError`] instead.
    pub fn run(&mut self, point: &DesignPoint) -> RunOutcome {
        match self.try_run(point) {
            Ok(outcome) => outcome,
            Err(e) => panic!("run of {} on {} failed: {e}", point.label(), self.app.name),
        }
    }

    /// Fallible variant of [`Workbench::run`]: every rejection along the
    /// profile → pass → simulate pipeline surfaces as a typed [`RunError`].
    pub fn try_run(&mut self, point: &DesignPoint) -> Result<RunOutcome, RunError> {
        let key = point.software.label();
        // Lend the cached variant to the simulator instead of cloning it:
        // the binary is multi-megabyte and this runs once per cell.
        let (program, pass) = match self.variants.remove(&key) {
            Some(built) => built,
            None => self.build_variant(&point.software)?,
        };
        let outcome = self.simulate(point, &program, pass);
        self.variants.insert(key, (program, pass));
        outcome
    }

    /// Runs one design point with the differential oracle in the loop.
    ///
    /// The variant is executed against the baseline over inputs seeded from
    /// `seed` before it is simulated. On a divergence the offending chain
    /// is **demoted** — the variant is rebuilt from the original binary
    /// with that chain removed from the profile, leaving it in its 32-bit
    /// form — and validation repeats. Demotions are counted in the
    /// returned [`ValidationStats`] and in `PassReport::chains_demoted`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Validation`] when a divergence cannot be pinned
    /// on a chain or survives its chain's demotion; other pipeline failures
    /// surface as their usual [`RunError`] variants.
    pub fn try_run_validated(
        &mut self,
        point: &DesignPoint,
        seed: u64,
    ) -> Result<(RunOutcome, ValidationStats), RunError> {
        let software = &point.software;
        let full_profile = self.software_profile(software)?;
        let chains: Vec<ChainSpec> = full_profile
            .as_ref()
            .map(|p| p.chains.clone())
            .unwrap_or_default();
        let (mut program, mut pass) = self.variant(software)?;
        let mut stats = ValidationStats {
            chains_checked: chains.len() as u64,
            ..Default::default()
        };
        let mut demoted: HashSet<usize> = HashSet::new();
        // The baseline's oracle execution is identical across demotion
        // iterations (and across every scheme of the app), so it is
        // captured once — from the campaign store when available.
        let baseline_exec = match &self.store {
            Some((store, world)) => store.baseline_execution(world, seed),
            None => BaselineExecution::capture(&self.program, &self.path, seed)
                .map(Arc::new)
                .map_err(|e| RunError::Validation(e.to_string())),
        };
        let baseline_exec = match baseline_exec {
            Ok(exec) => exec,
            Err(e) => {
                stats.failed += 1;
                return Err(RunError::Validation(format!(
                    "baseline capture failed: {e} ({} chains checked, {} demoted, {} unresolved)",
                    stats.chains_checked, stats.chains_demoted, stats.failed
                )));
            }
        };
        let telemetry = self.telemetry.clone();
        telemetry.time(SpanKind::Validate, || -> Result<(), RunError> {
            loop {
                // Attribution ranks refer to the *original* chain list, so
                // the full list is passed on every iteration.
                match baseline_exec.validate_variant(&program, &self.path, &chains) {
                    Ok(_) => break Ok(()),
                    Err(e) => {
                        let Some(rank) = e.chain else {
                            stats.failed += 1;
                            return Err(RunError::Validation(format!(
                                "{e} ({} chains checked, {} demoted, {} unresolved)",
                                stats.chains_checked, stats.chains_demoted, stats.failed
                            )));
                        };
                        if !demoted.insert(rank) {
                            stats.failed += 1;
                            return Err(RunError::Validation(format!(
                                "divergence survives demotion of chain #{rank}: {e} \
                                 ({} chains checked, {} demoted, {} unresolved)",
                                stats.chains_checked, stats.chains_demoted, stats.failed
                            )));
                        }
                        stats.chains_demoted += 1;
                        telemetry.event(EventKind::Demotion);
                        // Rebuild from the pristine binary with the demoted
                        // chains withheld from the profile. The armed
                        // miscompile (if any) is *not* re-injected: demotion
                        // models the pass backing out one chain, not the
                        // corruption recurring.
                        let mut filtered = full_profile.clone().unwrap_or_else(Profile::empty);
                        let kept: Vec<ChainSpec> = filtered
                            .chains
                            .iter()
                            .enumerate()
                            .filter(|(rank, _)| !demoted.contains(rank))
                            .map(|(_, c)| c.clone())
                            .collect();
                        filtered.chains = kept;
                        let mut rebuilt = self.program.clone();
                        pass = Self::apply_software(&mut rebuilt, software, Some(&filtered))?;
                        pass.chains_demoted += demoted.len() as u64;
                        program = rebuilt;
                    }
                }
            }
        })?;
        let outcome = self.simulate(point, &program, pass)?;
        Ok((outcome, stats))
    }

    /// Simulates an already-built variant and assembles the outcome.
    fn simulate(
        &mut self,
        point: &DesignPoint,
        program: &Program,
        pass: PassReport,
    ) -> Result<RunOutcome, RunError> {
        let baseline = matches!(point.software, Software::Baseline);
        let telemetry = self.telemetry.clone();
        if baseline {
            // Baselines are hardware-keyed and variant-independent: a
            // store-backed workbench shares one simulation per (world,
            // cpu+mem config) with every sibling cell.
            if let Some((store, world)) = self.store.clone() {
                return telemetry.time(SpanKind::Sim, || {
                    Ok((*store.baseline(&world, point)?).clone())
                });
            }
        }
        let engine = self.engine;
        if engine == SimEngine::DataOriented {
            if let Some(window) = self.stream_window {
                // Streaming route: expansion, fanout, decode, and the cycle
                // loop all run window-at-a-time over (program, path) —
                // nothing trace-length-sized is materialized. The stream is
                // fully drained by the run, so the thumb fraction and
                // dynamic length read back exactly what the materialized
                // trace would report.
                let prog: &Program = if baseline { &self.program } else { program };
                let mut stream =
                    TraceStream::new(prog, &self.path, StreamConfig::with_window(window));
                let scratch = &mut self.stream_scratch;
                let (sim, _, stream_stats) = telemetry.time(SpanKind::Sim, || {
                    Simulator::new(point.cpu_config(), point.mem_config())
                        .run_streamed(&mut stream, scratch)
                });
                let thumb_dyn_frac = stream.thumb_fraction();
                let dyn_insns = stream.total_len();
                drop(stream);
                self.last_stream_stats = Some(stream_stats);
                let energy = self.energy_model.evaluate(&sim);
                return Ok(RunOutcome {
                    design: point.label(),
                    thumb_dyn_frac,
                    dyn_insns,
                    sim,
                    energy,
                    pass,
                });
            }
        }
        if !baseline {
            Trace::expand_into(program, &self.path, &mut self.variant_trace);
            if engine == SimEngine::Reference {
                // The data-oriented path derives the fan-out from the
                // decoded columns inside `run_variant`; only the reference
                // walk needs the AoS computation.
                self.variant_trace
                    .compute_fanout_into(&mut self.variant_fanout);
            }
        }
        let (trace, fanout): (&Trace, &[u32]) = if baseline {
            (&self.base_trace, &self.base_fanout)
        } else {
            (&self.variant_trace, &self.variant_fanout)
        };
        let batch = &mut self.batch;
        let base = &self.base_trace;
        let sim = telemetry.time(SpanKind::Sim, || {
            let simulator = Simulator::new(point.cpu_config(), point.mem_config());
            match engine {
                // The scalar baseline: a private decode-free walk with
                // fresh working memory per run, preserved verbatim.
                SimEngine::Reference => simulator.run_reference(trace, fanout).0,
                // The data-oriented core over the workbench's shared batch
                // context: the base trace decodes once, variants reuse its
                // prefix, and scratch/models recycle across runs.
                SimEngine::DataOriented => {
                    if baseline {
                        batch.run_base(&simulator, base, fanout).0
                    } else {
                        batch.run_variant(&simulator, trace, base).0
                    }
                }
            }
        });
        let energy = self.energy_model.evaluate(&sim);
        Ok(RunOutcome {
            design: point.label(),
            thumb_dyn_frac: trace.thumb_fraction(),
            dyn_insns: trace.len(),
            sim,
            energy,
            pass,
        })
    }
}

#[cfg(test)]
mod tests {
    use critic_workloads::suite::Suite;

    use super::*;
    use crate::SMOKE_TRACE_LEN;

    fn small_app() -> AppSpec {
        let mut app = Suite::Mobile.apps()[0].clone();
        app.params.num_functions = 60;
        app
    }

    #[test]
    fn critic_speeds_up_a_mobile_app() {
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        let base = bench.run(&DesignPoint::baseline());
        let critic = bench.run(&DesignPoint::critic());
        let speedup = critic.sim.speedup_over(&base.sim);
        assert!(
            speedup > 1.0,
            "CritIC must beat the baseline, got {speedup:.4} (thumb {:.3})",
            critic.thumb_dyn_frac
        );
        assert!(critic.pass.chains_applied > 0);
        assert!(critic.thumb_dyn_frac > 0.0);
    }

    #[test]
    fn outcomes_are_reproducible() {
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        let a = bench.run(&DesignPoint::critic());
        let b = bench.run(&DesignPoint::critic());
        assert_eq!(a, b);
    }

    #[test]
    fn energy_savings_follow_the_speedup() {
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        let base = bench.run(&DesignPoint::baseline());
        let critic = bench.run(&DesignPoint::critic());
        let cpu_saving = critic.energy.cpu_saving(&base.energy);
        let system_saving = critic.energy.system_saving(&base.energy);
        assert!(cpu_saving > 0.0, "cpu saving {cpu_saving:.4}");
        assert!(system_saving > 0.0 && system_saving < cpu_saving);
    }

    #[test]
    fn clean_runs_validate_with_zero_demotions() {
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        for point in [
            DesignPoint::baseline(),
            DesignPoint::critic(),
            DesignPoint::critic_ideal(),
        ] {
            let (outcome, stats) = bench
                .try_run_validated(&point, 7)
                .expect("clean run validates");
            assert_eq!(stats.chains_demoted, 0, "{}", point.label());
            assert_eq!(stats.failed, 0);
            assert_eq!(outcome.pass.chains_demoted, 0);
            // Validation must not perturb the measured outcome.
            let plain = bench.try_run(&point).expect("plain run");
            assert_eq!(outcome, plain, "{}", point.label());
        }
    }

    #[test]
    fn miscompiled_variant_is_demoted_not_fatal() {
        use critic_workloads::Fault;
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        let clean = bench.try_run(&DesignPoint::critic()).expect("clean run");
        bench.set_variant_fault(Fault::ClobberedDestination, 33);
        let (outcome, stats) = bench
            .try_run_validated(&DesignPoint::critic(), 7)
            .expect("faulted run must complete via demotion");
        assert!(
            stats.chains_demoted >= 1,
            "the corrupted chain must be demoted"
        );
        assert_eq!(stats.failed, 0);
        assert_eq!(outcome.pass.chains_demoted, stats.chains_demoted);
        // The demoted variant keeps fewer chains than the clean one.
        assert!(outcome.pass.chains_applied < clean.pass.chains_applied);
    }

    #[test]
    fn unvalidated_run_swallows_the_miscompile() {
        use critic_workloads::Fault;
        // The control experiment: without the oracle the corrupted variant
        // simulates to a plausible outcome — exactly the silent-poisoning
        // failure mode validation exists to stop.
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        bench.set_variant_fault(Fault::StaleSource, 33);
        let outcome = bench
            .try_run(&DesignPoint::critic())
            .expect("silent miscompile runs");
        assert!(outcome.pass.chains_applied > 0);
    }

    #[test]
    fn variants_are_cached() {
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        let _ = bench.run(&DesignPoint::critic());
        let _ = bench.run(&DesignPoint::critic().with_critic());
        assert!(!bench.variants.is_empty());
        assert!(!bench.profiles.is_empty());
    }
}
