//! The experiment workbench: one app, one recorded input, many variants.

use std::collections::HashMap;

use critic_compiler::{
    apply_compress, apply_critic_pass, apply_opp16, CriticPassOptions, PassReport,
};
use critic_energy::{EnergyBreakdown, EnergyModel};
use critic_pipeline::{SimResult, Simulator};
use critic_profiler::{Profile, Profiler, ProfilerConfig};
use critic_workloads::{AppSpec, ExecutionPath, Program, Trace};
use serde::{Deserialize, Serialize};

use crate::design::{DesignPoint, Software};

/// Everything one run of one design point produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// The design point's label.
    pub design: String,
    /// Timing result.
    pub sim: SimResult,
    /// Energy result.
    pub energy: EnergyBreakdown,
    /// What the compiler did to the binary.
    pub pass: PassReport,
    /// Fraction of *dynamic* instructions fetched in 16-bit format
    /// (Fig. 13b's y-axis).
    pub thumb_dyn_frac: f64,
    /// Dynamic instructions executed (includes inserted overhead).
    pub dyn_insns: usize,
}

/// Generates an app's binary and input once, then evaluates design points
/// over the identical input — the paper's methodology of running "the same
/// parts for all the optimizations evaluated".
#[derive(Debug)]
pub struct Workbench {
    /// The workload.
    pub app: AppSpec,
    /// The original (baseline) binary.
    pub program: Program,
    /// The recorded block-level input.
    pub path: ExecutionPath,
    base_trace: Trace,
    energy_model: EnergyModel,
    profiles: HashMap<String, Profile>,
    variants: HashMap<String, (Program, PassReport)>,
}

impl Workbench {
    /// Generates the app's binary and records a `trace_len`-instruction
    /// execution.
    pub fn new(app: &AppSpec, trace_len: usize) -> Workbench {
        let program = app.generate_program();
        let path = ExecutionPath::generate(&program, app.path_seed(), trace_len);
        let base_trace = Trace::expand(&program, &path);
        Workbench {
            app: app.clone(),
            program,
            path,
            base_trace,
            energy_model: EnergyModel::default(),
            profiles: HashMap::new(),
            variants: HashMap::new(),
        }
    }

    /// The baseline dynamic trace.
    pub fn baseline_trace(&self) -> &Trace {
        &self.base_trace
    }

    /// Builds (or returns the cached) profile for a profiler configuration.
    pub fn profile(&mut self, config: &ProfilerConfig) -> &Profile {
        let key = serde_json::to_string(config).expect("config serializes");
        if !self.profiles.contains_key(&key) {
            let profile = Profiler::new(config.clone()).build_profile(&self.program, &self.base_trace);
            self.profiles.insert(key.clone(), profile);
        }
        &self.profiles[&key]
    }

    fn variant(&mut self, software: &Software) -> (Program, PassReport) {
        let key = software.label();
        if let Some(cached) = self.variants.get(&key) {
            return cached.clone();
        }
        let built = self.build_variant(software);
        self.variants.insert(key.clone(), built.clone());
        built
    }

    fn build_variant(&mut self, software: &Software) -> (Program, PassReport) {
        let mut program = self.program.clone();
        let report = match *software {
            Software::Baseline => PassReport::default(),
            Software::Hoist => {
                let profile = self.profile(&ProfilerConfig::default()).clone();
                apply_critic_pass(&mut program, &profile, CriticPassOptions::hoist_only())
            }
            Software::CritIc { profile_fraction, max_len, exact_len } => {
                let config = ProfilerConfig {
                    profile_fraction,
                    max_chain_len: max_len,
                    ..ProfilerConfig::default()
                };
                let mut profile = self.profile(&config).clone();
                if exact_len {
                    if let Some(n) = max_len {
                        profile.chains.retain(|c| c.len() == n);
                    }
                }
                apply_critic_pass(&mut program, &profile, CriticPassOptions::default())
            }
            Software::CritIcBranchSwitch => {
                let profile = self.profile(&ProfilerConfig::default()).clone();
                apply_critic_pass(&mut program, &profile, CriticPassOptions::branch_switch())
            }
            Software::CritIcIdeal => {
                let profile = self.profile(&ProfilerConfig::ideal()).clone();
                apply_critic_pass(&mut program, &profile, CriticPassOptions::ideal())
            }
            Software::Opp16 => apply_opp16(&mut program, critic_compiler::opp16::OPP16_MIN_RUN),
            Software::Compress => apply_compress(&mut program),
            Software::Opp16PlusCritIc => {
                let profile = self.profile(&ProfilerConfig::default()).clone();
                let mut report =
                    apply_critic_pass(&mut program, &profile, CriticPassOptions::default());
                report.absorb(apply_opp16(&mut program, critic_compiler::opp16::OPP16_MIN_RUN));
                report
            }
        };
        (program, report)
    }

    /// Runs one design point over the recorded input.
    pub fn run(&mut self, point: &DesignPoint) -> RunOutcome {
        let (program, pass) = self.variant(&point.software);
        let trace = if matches!(point.software, Software::Baseline) {
            self.base_trace.clone()
        } else {
            Trace::expand(&program, &self.path)
        };
        let fanout = trace.compute_fanout();
        let sim = Simulator::new(point.cpu_config(), point.mem_config()).run(&trace, &fanout);
        let energy = self.energy_model.evaluate(&sim);
        RunOutcome {
            design: point.label(),
            thumb_dyn_frac: trace.thumb_fraction(),
            dyn_insns: trace.len(),
            sim,
            energy,
            pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use critic_workloads::suite::Suite;

    use super::*;
    use crate::SMOKE_TRACE_LEN;

    fn small_app() -> AppSpec {
        let mut app = Suite::Mobile.apps()[0].clone();
        app.params.num_functions = 60;
        app
    }

    #[test]
    fn critic_speeds_up_a_mobile_app() {
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        let base = bench.run(&DesignPoint::baseline());
        let critic = bench.run(&DesignPoint::critic());
        let speedup = critic.sim.speedup_over(&base.sim);
        assert!(
            speedup > 1.0,
            "CritIC must beat the baseline, got {speedup:.4} (thumb {:.3})",
            critic.thumb_dyn_frac
        );
        assert!(critic.pass.chains_applied > 0);
        assert!(critic.thumb_dyn_frac > 0.0);
    }

    #[test]
    fn outcomes_are_reproducible() {
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        let a = bench.run(&DesignPoint::critic());
        let b = bench.run(&DesignPoint::critic());
        assert_eq!(a, b);
    }

    #[test]
    fn energy_savings_follow_the_speedup() {
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        let base = bench.run(&DesignPoint::baseline());
        let critic = bench.run(&DesignPoint::critic());
        let cpu_saving = critic.energy.cpu_saving(&base.energy);
        let system_saving = critic.energy.system_saving(&base.energy);
        assert!(cpu_saving > 0.0, "cpu saving {cpu_saving:.4}");
        assert!(system_saving > 0.0 && system_saving < cpu_saving);
    }

    #[test]
    fn variants_are_cached() {
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        let _ = bench.run(&DesignPoint::critic());
        let _ = bench.run(&DesignPoint::critic().with_critic());
        assert!(bench.variants.len() >= 1);
        assert!(bench.profiles.len() >= 1);
    }
}
