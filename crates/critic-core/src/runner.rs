//! The experiment workbench: one app, one recorded input, many variants.

use std::collections::HashMap;

use critic_compiler::{
    try_apply_compress, try_apply_critic_pass, try_apply_opp16, CriticPassOptions, PassReport,
};
use critic_energy::{EnergyBreakdown, EnergyModel};
use critic_pipeline::{SimResult, Simulator};
use critic_profiler::{Profile, Profiler, ProfilerConfig};
use critic_workloads::{AppSpec, ExecutionPath, Program, Trace};
use serde::{Deserialize, Serialize};

use crate::design::{DesignPoint, Software};
use crate::error::RunError;

/// Everything one run of one design point produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// The design point's label.
    pub design: String,
    /// Timing result.
    pub sim: SimResult,
    /// Energy result.
    pub energy: EnergyBreakdown,
    /// What the compiler did to the binary.
    pub pass: PassReport,
    /// Fraction of *dynamic* instructions fetched in 16-bit format
    /// (Fig. 13b's y-axis).
    pub thumb_dyn_frac: f64,
    /// Dynamic instructions executed (includes inserted overhead).
    pub dyn_insns: usize,
}

/// Generates an app's binary and input once, then evaluates design points
/// over the identical input — the paper's methodology of running "the same
/// parts for all the optimizations evaluated".
#[derive(Debug)]
pub struct Workbench {
    /// The workload.
    pub app: AppSpec,
    /// The original (baseline) binary.
    pub program: Program,
    /// The recorded block-level input.
    pub path: ExecutionPath,
    base_trace: Trace,
    energy_model: EnergyModel,
    profiles: HashMap<String, Profile>,
    variants: HashMap<String, (Program, PassReport)>,
}

impl Workbench {
    /// Generates the app's binary and records a `trace_len`-instruction
    /// execution.
    ///
    /// # Panics
    ///
    /// Panics if the generated binary or trace fails validation (a
    /// generator bug); use [`Workbench::try_new`] to get a [`RunError`].
    pub fn new(app: &AppSpec, trace_len: usize) -> Workbench {
        match Workbench::try_new(app, trace_len) {
            Ok(bench) => bench,
            Err(e) => panic!("workbench setup for {} failed: {e}", app.name),
        }
    }

    /// Fallible variant of [`Workbench::new`]: validates the generated
    /// binary before expanding the trace, and the trace against the
    /// binary, returning a typed [`RunError`] on either mismatch.
    pub fn try_new(app: &AppSpec, trace_len: usize) -> Result<Workbench, RunError> {
        let program = app.generate_program();
        program.validate()?;
        let path = ExecutionPath::generate(&program, app.path_seed(), trace_len);
        let base_trace = Trace::expand(&program, &path);
        Workbench::try_assemble(app, program, path, base_trace)
    }

    /// Builds a workbench from externally supplied (possibly corrupted)
    /// parts, validating the program and the trace against it. This is the
    /// fault-injection entry point: campaigns inject faults into the
    /// program or trace and still get a typed error instead of a panic
    /// deep inside the analyses.
    pub fn try_assemble(
        app: &AppSpec,
        program: Program,
        path: ExecutionPath,
        base_trace: Trace,
    ) -> Result<Workbench, RunError> {
        program.validate_encoding()?;
        base_trace.validate(&program)?;
        Ok(Workbench {
            app: app.clone(),
            program,
            path,
            base_trace,
            energy_model: EnergyModel::default(),
            profiles: HashMap::new(),
            variants: HashMap::new(),
        })
    }

    /// The baseline dynamic trace.
    pub fn baseline_trace(&self) -> &Trace {
        &self.base_trace
    }

    /// Builds (or returns the cached) profile for a profiler configuration.
    ///
    /// # Panics
    ///
    /// Panics if the profiler rejects the workbench's trace; impossible
    /// for a workbench built through a validating constructor.
    pub fn profile(&mut self, config: &ProfilerConfig) -> &Profile {
        match self.ensure_profile(config) {
            Ok(key) => &self.profiles[&key],
            Err(e) => panic!("profiling {} failed: {e}", self.app.name),
        }
    }

    /// Fallible variant of [`Workbench::profile`].
    pub fn try_profile(&mut self, config: &ProfilerConfig) -> Result<&Profile, RunError> {
        let key = self.ensure_profile(config)?;
        Ok(&self.profiles[&key])
    }

    /// Builds the profile if missing; returns its cache key.
    fn ensure_profile(&mut self, config: &ProfilerConfig) -> Result<String, RunError> {
        let key = format!("{config:?}");
        if !self.profiles.contains_key(&key) {
            let profile =
                Profiler::new(config.clone()).try_build_profile(&self.program, &self.base_trace)?;
            self.profiles.insert(key.clone(), profile);
        }
        Ok(key)
    }

    fn variant(&mut self, software: &Software) -> Result<(Program, PassReport), RunError> {
        let key = software.label();
        if let Some(cached) = self.variants.get(&key) {
            return Ok(cached.clone());
        }
        let built = self.build_variant(software)?;
        self.variants.insert(key.clone(), built.clone());
        Ok(built)
    }

    fn build_variant(&mut self, software: &Software) -> Result<(Program, PassReport), RunError> {
        let mut program = self.program.clone();
        let report = match *software {
            Software::Baseline => PassReport::default(),
            Software::Hoist => {
                let profile = self.try_profile(&ProfilerConfig::default())?.clone();
                try_apply_critic_pass(&mut program, &profile, CriticPassOptions::hoist_only())?
            }
            Software::CritIc { profile_fraction, max_len, exact_len } => {
                let config = ProfilerConfig {
                    profile_fraction,
                    max_chain_len: max_len,
                    ..ProfilerConfig::default()
                };
                let mut profile = self.try_profile(&config)?.clone();
                if exact_len {
                    if let Some(n) = max_len {
                        profile.chains.retain(|c| c.len() == n);
                    }
                }
                try_apply_critic_pass(&mut program, &profile, CriticPassOptions::default())?
            }
            Software::CritIcBranchSwitch => {
                let profile = self.try_profile(&ProfilerConfig::default())?.clone();
                try_apply_critic_pass(&mut program, &profile, CriticPassOptions::branch_switch())?
            }
            Software::CritIcIdeal => {
                let profile = self.try_profile(&ProfilerConfig::ideal())?.clone();
                try_apply_critic_pass(&mut program, &profile, CriticPassOptions::ideal())?
            }
            Software::Opp16 => {
                try_apply_opp16(&mut program, critic_compiler::opp16::OPP16_MIN_RUN)?
            }
            Software::Compress => try_apply_compress(&mut program)?,
            Software::Opp16PlusCritIc => {
                let profile = self.try_profile(&ProfilerConfig::default())?.clone();
                let mut report =
                    try_apply_critic_pass(&mut program, &profile, CriticPassOptions::default())?;
                report
                    .absorb(try_apply_opp16(&mut program, critic_compiler::opp16::OPP16_MIN_RUN)?);
                report
            }
        };
        Ok((program, report))
    }

    /// Runs one design point over the recorded input.
    ///
    /// # Panics
    ///
    /// Panics if profiling or a compiler pass rejects its inputs; use
    /// [`Workbench::try_run`] to get a [`RunError`] instead.
    pub fn run(&mut self, point: &DesignPoint) -> RunOutcome {
        match self.try_run(point) {
            Ok(outcome) => outcome,
            Err(e) => panic!("run of {} on {} failed: {e}", point.label(), self.app.name),
        }
    }

    /// Fallible variant of [`Workbench::run`]: every rejection along the
    /// profile → pass → simulate pipeline surfaces as a typed [`RunError`].
    pub fn try_run(&mut self, point: &DesignPoint) -> Result<RunOutcome, RunError> {
        let (program, pass) = self.variant(&point.software)?;
        let trace = if matches!(point.software, Software::Baseline) {
            self.base_trace.clone()
        } else {
            Trace::expand(&program, &self.path)
        };
        let fanout = trace.compute_fanout();
        let sim = Simulator::new(point.cpu_config(), point.mem_config()).run(&trace, &fanout);
        let energy = self.energy_model.evaluate(&sim);
        Ok(RunOutcome {
            design: point.label(),
            thumb_dyn_frac: trace.thumb_fraction(),
            dyn_insns: trace.len(),
            sim,
            energy,
            pass,
        })
    }
}

#[cfg(test)]
mod tests {
    use critic_workloads::suite::Suite;

    use super::*;
    use crate::SMOKE_TRACE_LEN;

    fn small_app() -> AppSpec {
        let mut app = Suite::Mobile.apps()[0].clone();
        app.params.num_functions = 60;
        app
    }

    #[test]
    fn critic_speeds_up_a_mobile_app() {
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        let base = bench.run(&DesignPoint::baseline());
        let critic = bench.run(&DesignPoint::critic());
        let speedup = critic.sim.speedup_over(&base.sim);
        assert!(
            speedup > 1.0,
            "CritIC must beat the baseline, got {speedup:.4} (thumb {:.3})",
            critic.thumb_dyn_frac
        );
        assert!(critic.pass.chains_applied > 0);
        assert!(critic.thumb_dyn_frac > 0.0);
    }

    #[test]
    fn outcomes_are_reproducible() {
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        let a = bench.run(&DesignPoint::critic());
        let b = bench.run(&DesignPoint::critic());
        assert_eq!(a, b);
    }

    #[test]
    fn energy_savings_follow_the_speedup() {
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        let base = bench.run(&DesignPoint::baseline());
        let critic = bench.run(&DesignPoint::critic());
        let cpu_saving = critic.energy.cpu_saving(&base.energy);
        let system_saving = critic.energy.system_saving(&base.energy);
        assert!(cpu_saving > 0.0, "cpu saving {cpu_saving:.4}");
        assert!(system_saving > 0.0 && system_saving < cpu_saving);
    }

    #[test]
    fn variants_are_cached() {
        let mut bench = Workbench::new(&small_app(), SMOKE_TRACE_LEN);
        let _ = bench.run(&DesignPoint::critic());
        let _ = bench.run(&DesignPoint::critic().with_critic());
        assert!(!bench.variants.is_empty());
        assert!(!bench.profiles.is_empty());
    }
}
