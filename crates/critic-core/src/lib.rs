//! Top-level facade of the CritICs reproduction: design points, the
//! experiment runner, and one function per table/figure of the paper's
//! evaluation.
//!
//! The crate ties the substrates together:
//!
//! * [`design`] — every hardware/software configuration the paper
//!   evaluates (Fig. 1a baselines, Fig. 10 design space, Fig. 11 hardware
//!   mechanisms and their CritIC combinations, Fig. 13 conversion
//!   schemes), expressed as composable [`design::DesignPoint`]s;
//! * [`runner`] — the [`runner::Workbench`]: generates an app's binary
//!   once, records one execution path, then replays that same input over
//!   every compiled/configured variant — the paper's "same parts for all
//!   the optimizations evaluated";
//! * [`experiments`] — typed row producers for every table and figure
//!   (consumed by the `figures` binary and the Criterion benches in
//!   `critic-bench`).
//!
//! # Example
//!
//! ```no_run
//! use critic_core::design::DesignPoint;
//! use critic_core::runner::Workbench;
//! use critic_workloads::suite::Suite;
//!
//! let app = &Suite::Mobile.apps()[0];
//! let mut bench = Workbench::new(app, 100_000);
//! let base = bench.run(&DesignPoint::baseline());
//! let critic = bench.run(&DesignPoint::critic());
//! println!("speedup: {:.3}", critic.sim.speedup_over(&base.sim));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod campaign;
pub mod design;
pub mod disk;
pub mod error;
pub mod experiments;
pub mod journal;
pub mod keys;
pub mod ring;
pub mod runner;
pub mod service;
pub mod store;

pub use campaign::{
    run_campaign, run_campaign_with_store, CampaignSpec, CampaignStoreRecord, CampaignSummary,
    CampaignTelemetryRecord, CellMetrics, CellRecord, CellStatus, PlannedFault, Scheme,
    SupervisionPolicy,
};
pub use design::{DesignPoint, Software};
pub use disk::{DiskStore, DiskStoreStats, StoreError};
pub use error::RunError;
pub use journal::{Journal, JournalError, ReplayedJournal, RunRollup};
pub use keys::{crc32, stable_key, KEY_FORMAT_VERSION};
pub use ring::{placement_key, HashRing, DEFAULT_VNODES};
pub use runner::{RunOutcome, ValidationStats, Workbench};
pub use service::{
    Breaker, BreakerDecision, CampaignService, ClientWindows, ServiceConfig, SubmitOutcome,
    TokenBucket, WorkPool,
};
pub use store::{ArtifactStore, StoreStats, World, WorldKey};

/// Default dynamic instructions per app for full experiments (the paper
/// samples ~50M over 100 samples; we use one contiguous window per app,
/// scaled to laptop time).
pub const DEFAULT_TRACE_LEN: usize = 240_000;

/// Shorter windows for smoke tests and doc examples.
pub const SMOKE_TRACE_LEN: usize = 40_000;
