//! Campaign-wide content-addressed artifact store.
//!
//! A campaign grid shares enormous amounts of work between cells: every
//! cell of one app regenerates the same program, re-records the same
//! execution path, re-expands the same trace, recomputes the same fanout
//! vectors, rebuilds the same profiles, and re-simulates the same baseline.
//! The store memoizes those stages *across* cells so each artifact is
//! computed exactly once per campaign:
//!
//! * a [`World`] (program + path + trace + fanout) is keyed by the app
//!   spec's content hash and the trace length;
//! * a ROB-cone fanout vector is keyed by the world (it is profiler-config
//!   independent);
//! * a [`Profile`] is keyed by the world plus the profiler configuration;
//! * a baseline [`RunOutcome`] is keyed by the world plus the CPU and
//!   memory configurations it was simulated under.
//!
//! Concurrency uses a per-key slot: the key map is held only long enough
//! to clone out an `Arc` to the key's slot, and the computation runs under
//! the *slot's* lock — so two cells needing different artifacts never block
//! each other, and two cells needing the same artifact compute it once
//! (the second blocks until the first finishes, then shares the result).
//! A failed computation leaves the slot empty: errors are never cached, so
//! a faulted or cancelled attempt cannot poison siblings, and a retry
//! recomputes from scratch.
//!
//! # The persistent tier
//!
//! [`ArtifactStore::persistent`] adds a disk tier ([`DiskStore`]) under
//! the in-memory memo: profiles and baseline outcomes — the two classes
//! whose builds dominate campaign time and whose values serialize
//! losslessly — are saved on build and consulted on every in-memory miss,
//! so a *restarted* campaign (fresh process, same `--store-dir`) is warm
//! from its first cell. Disk keys come from [`stable_key`] — a versioned,
//! canonical binary encoding of the serialized value — so they survive
//! field reordering, process restarts, and struct derive churn, unlike the
//! `Debug`-format hash this replaced. Disk entries are checksummed; a
//! corrupt or torn entry is quarantined and rebuilt, never trusted and
//! never fatal.

use std::collections::HashMap;
use std::hash::Hash;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use critic_compiler::BaselineExecution;
use critic_energy::EnergyModel;
use critic_obs::{EventKind, Telemetry};
use critic_pipeline::Simulator;
use critic_profiler::{Profile, Profiler, ProfilerConfig};
use critic_workloads::{AppSpec, ExecutionPath, Program, SysFault, SysInjector, SysOp, Trace};
use serde::{Deserialize, Serialize};

use crate::design::DesignPoint;
use crate::disk::{ArtifactClass, DiskStore, DiskStoreStats, StoreError};
use crate::error::RunError;
use crate::keys::stable_key;
use crate::runner::RunOutcome;

/// Identity of one generated world: app content hash × trace length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorldKey {
    app: u64,
    trace_len: usize,
}

impl WorldKey {
    /// The key for `app` at `trace_len` dynamic instructions. The app
    /// component is a [`stable_key`]: canonical (field-order independent)
    /// and versioned, so it identifies the same content across processes.
    pub fn new(app: &AppSpec, trace_len: usize) -> WorldKey {
        WorldKey {
            app: stable_key(app),
            trace_len,
        }
    }
}

/// Everything deterministic generation produces for one app: the binary,
/// the recorded input, the expanded baseline trace, and its direct-fanout
/// vector. Shared read-only between every cell of the app.
#[derive(Debug)]
pub struct World {
    /// The store key this world was built under.
    pub key: WorldKey,
    /// The original (baseline) binary.
    pub program: Arc<Program>,
    /// The recorded block-level input.
    pub path: Arc<ExecutionPath>,
    /// The baseline dynamic trace.
    pub trace: Arc<Trace>,
    /// `trace.compute_fanout()`, computed once at build time.
    pub fanout: Arc<Vec<u32>>,
}

/// A single-key memoization slot map. See the module docs for the locking
/// discipline; `lock_clean` recovers from poisoning because a panic inside
/// a computation leaves the slot value `None` (the value is only written on
/// success), so the slot is still in a consistent "recompute me" state.
/// One artifact's slot: taken for the duration of its (single) build,
/// then holding the shared value.
type Slot<V> = Arc<Mutex<Option<Arc<V>>>>;

struct Memo<K, V> {
    map: Mutex<HashMap<K, Slot<V>>>,
    computed: AtomicU64,
    hits: AtomicU64,
    build_nanos: AtomicU64,
}

fn lock_clean<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<K: Eq + Hash + Clone, V> Memo<K, V> {
    fn new() -> Memo<K, V> {
        Memo {
            map: Mutex::new(HashMap::new()),
            computed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            build_nanos: AtomicU64::new(0),
        }
    }

    /// Returns the cached value for `key`, or computes it with `build`.
    /// Exactly one caller computes; concurrent callers for the same key
    /// block on the slot and share the result. `Err` is never cached.
    fn get_or_try_build<E>(
        &self,
        key: K,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let slot = {
            let mut map = lock_clean(&self.map);
            Arc::clone(map.entry(key).or_default())
        };
        let mut guard = lock_clean(&slot);
        if let Some(value) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(value));
        }
        let start = std::time::Instant::now();
        let value = Arc::new(build()?);
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        *guard = Some(Arc::clone(&value));
        self.computed.fetch_add(1, Ordering::Relaxed);
        self.build_nanos.fetch_add(nanos, Ordering::Relaxed);
        Ok(value)
    }
}

/// Counters describing what a store computed and what it served from
/// cache; the memoization-correctness tests, the telemetry layer, and the
/// bench harness read these to prove each artifact was built exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Worlds generated (program + path + trace + fanout).
    pub worlds_built: u64,
    /// ROB-cone fanout vectors computed.
    pub cones_built: u64,
    /// Profiles built.
    pub profiles_built: u64,
    /// Baseline simulations run.
    pub baselines_built: u64,
    /// Baseline oracle executions captured (for translation validation).
    pub baseline_execs_built: u64,
    /// World requests served from cache.
    pub worlds_hit: u64,
    /// Cone-fanout requests served from cache.
    pub cones_hit: u64,
    /// Profile requests served from cache.
    pub profiles_hit: u64,
    /// Baseline-simulation requests served from cache.
    pub baselines_hit: u64,
    /// Baseline-execution requests served from cache.
    pub baseline_execs_hit: u64,
    /// Requests served from cache across all artifact classes.
    pub hits: u64,
    /// Wall-clock nanoseconds spent inside build closures (cache misses).
    pub build_nanos: u64,
    /// The persistent tier's counters, when the store has one. Absent for
    /// in-memory stores and in records written before the disk tier
    /// existed, so old journals still parse.
    pub disk: Option<DiskStoreStats>,
}

impl StoreStats {
    /// Total artifacts built across every class.
    pub fn built(&self) -> u64 {
        self.worlds_built
            + self.cones_built
            + self.profiles_built
            + self.baselines_built
            + self.baseline_execs_built
    }

    /// Total requests (builds + cache hits) across every class.
    pub fn requests(&self) -> u64 {
        self.built() + self.hits
    }

    /// Fraction of requests served from cache, 0 when the store is idle.
    pub fn hit_rate(&self) -> f64 {
        let requests = self.requests();
        if requests == 0 {
            0.0
        } else {
            self.hits as f64 / requests as f64
        }
    }

    /// Milliseconds spent building artifacts (cache misses only).
    pub fn build_millis(&self) -> f64 {
        self.build_nanos as f64 / 1e6
    }
}

/// The campaign-wide artifact store. Cheap to share: wrap in an [`Arc`]
/// and clone the handle into every worker.
pub struct ArtifactStore {
    worlds: Memo<WorldKey, World>,
    cones: Memo<WorldKey, Vec<u32>>,
    profiles: Memo<(WorldKey, u64), Profile>,
    baselines: Memo<(WorldKey, u64), RunOutcome>,
    baseline_execs: Memo<(WorldKey, u64), BaselineExecution>,
    /// Chaos tap: when armed, every public store request advances the
    /// injector's `StoreRequest` counter and may fail with an injected
    /// I/O error. `None` (the default) is a branch and nothing more.
    injector: Mutex<Option<Arc<SysInjector>>>,
    /// The persistent tier; `None` for a purely in-memory store.
    disk: Option<DiskStore>,
    /// Sink for durability events (and absorbed disk chaos faults).
    telemetry: Telemetry,
}

impl Default for ArtifactStore {
    fn default() -> ArtifactStore {
        ArtifactStore::new()
    }
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ArtifactStore({:?})", self.stats())
    }
}

impl ArtifactStore {
    /// An empty in-memory store.
    pub fn new() -> ArtifactStore {
        ArtifactStore {
            worlds: Memo::new(),
            cones: Memo::new(),
            profiles: Memo::new(),
            baselines: Memo::new(),
            baseline_execs: Memo::new(),
            injector: Mutex::new(None),
            disk: None,
            telemetry: Telemetry::off(),
        }
    }

    /// A store with a persistent tier rooted at `dir` (created if absent),
    /// bounded to `budget` bytes of entries (`None` = unbounded, LRU
    /// eviction otherwise). Profiles and baseline outcomes spill to disk
    /// on build and are served from disk on in-memory misses, so a fresh
    /// process over the same directory restarts warm. Durability events
    /// (evictions, quarantines) land on `telemetry`.
    pub fn persistent(
        dir: &Path,
        budget: Option<u64>,
        telemetry: Telemetry,
    ) -> Result<ArtifactStore, StoreError> {
        let disk = DiskStore::open(dir, budget)?;
        disk.set_telemetry(telemetry.clone());
        let mut store = ArtifactStore::new();
        store.disk = Some(disk);
        store.telemetry = telemetry;
        Ok(store)
    }

    /// Direct access to the persistent tier, when the store has one (the
    /// chaos drill uses it to corrupt entries in place).
    pub fn disk(&self) -> Option<&DiskStore> {
        self.disk.as_ref()
    }

    /// Arms (or clears) the systemic-fault injector consulted on every
    /// public store request. The campaign runner arms it for the duration
    /// of a chaos run and clears it afterwards, so a store outlives the
    /// faults injected into one campaign.
    pub fn set_sys_injector(&self, injector: Option<Arc<SysInjector>>) {
        *lock_clean(&self.injector) = injector;
    }

    /// The chaos tap on the store's request path: advances the injector's
    /// `StoreRequest` counter and fails the request when a store fault
    /// fires at this index. Faults are consume-once, so the retry that
    /// follows observes a healed store.
    fn sys_tap(&self) -> Result<(), RunError> {
        let injector = lock_clean(&self.injector).clone();
        if let Some(injector) = injector {
            for fault in injector.advance_or_crash(SysOp::StoreRequest) {
                if matches!(fault, SysFault::StoreRead | SysFault::StoreWrite) {
                    return Err(RunError::Sys(fault));
                }
            }
        }
        Ok(())
    }

    /// The chaos tap on the persistent tier: advances the injector's
    /// `DiskRequest` counter once per disk operation. Disk faults are
    /// *absorbed*, never errors — a failed read is a miss (rebuild), a
    /// failed write is a skipped save, a corruption lands in the entry for
    /// the checksum layer to quarantine — because that is the store's real
    /// contract with a flaky filesystem. Returns
    /// `(skip_read, skip_write, corrupt)`.
    fn disk_tap(&self) -> (bool, bool, bool) {
        let (mut skip_read, mut skip_write, mut corrupt) = (false, false, false);
        let injector = lock_clean(&self.injector).clone();
        if let Some(injector) = injector {
            for fault in injector.advance_or_crash(SysOp::DiskRequest) {
                self.telemetry.event(EventKind::SysFault);
                match fault {
                    SysFault::DiskRead => skip_read = true,
                    SysFault::DiskWrite => skip_write = true,
                    SysFault::DiskCorrupt => corrupt = true,
                    _ => {}
                }
            }
        }
        (skip_read, skip_write, corrupt)
    }

    /// Loads one artifact from the persistent tier, if present and intact.
    /// Every failure mode — missing entry, injected read fault, I/O error,
    /// checksum mismatch (quarantined inside [`DiskStore::load`]) — is a
    /// miss: the caller rebuilds.
    fn disk_load<T: serde::Deserialize>(&self, class: ArtifactClass, key: u64) -> Option<T> {
        let disk = self.disk.as_ref()?;
        let (skip_read, _, corrupt) = self.disk_tap();
        if corrupt {
            let _ = disk.corrupt_entry(class, key);
        }
        if skip_read {
            return None;
        }
        match disk.load(class, key) {
            Ok(Some(bytes)) => {
                let text = String::from_utf8(bytes).ok()?;
                serde_json::from_str(&text).ok()
            }
            // A miss, a quarantined entry, or an I/O error (all counted in
            // the disk stats): rebuild.
            _ => None,
        }
    }

    /// Saves one artifact to the persistent tier, best-effort: a failed
    /// save costs a future rebuild, never the current cell.
    fn disk_save<T: serde::Serialize>(&self, class: ArtifactClass, key: u64, value: &T) {
        let Some(disk) = self.disk.as_ref() else {
            return;
        };
        let (_, skip_write, _) = self.disk_tap();
        if skip_write {
            return;
        }
        if let Ok(json) = serde_json::to_string(value) {
            let _ = disk.save(class, key, json.as_bytes());
        }
    }

    /// The disk key for one artifact: class name folded with the world
    /// identity and the configuration's stable key, all through the
    /// canonical encoder, so the same logical artifact maps to the same
    /// file across processes and derive reorderings.
    fn disk_key(&self, class: ArtifactClass, world: &World, config_key: u64) -> Option<u64> {
        self.disk.as_ref()?;
        Some(stable_key(&(
            class.name(),
            world.key.app,
            world.key.trace_len as u64,
            config_key,
        )))
    }

    /// The world for `app` at `trace_len`, generated at most once.
    ///
    /// Generation and validation mirror `Workbench::try_new` exactly, so a
    /// store-backed cell fails with the same typed error a store-less cell
    /// would.
    pub fn world(&self, app: &AppSpec, trace_len: usize) -> Result<Arc<World>, RunError> {
        self.sys_tap()?;
        let key = WorldKey::new(app, trace_len);
        self.worlds.get_or_try_build(key, || {
            let program = app.generate_program();
            program.validate()?;
            let path = ExecutionPath::generate(&program, app.path_seed(), trace_len);
            let trace = Trace::expand(&program, &path);
            program.validate_encoding()?;
            trace.validate(&program)?;
            let fanout = trace.compute_fanout();
            Ok(World {
                key,
                program: Arc::new(program),
                path: Arc::new(path),
                trace: Arc::new(trace),
                fanout: Arc::new(fanout),
            })
        })
    }

    /// The ROB-cone fanout vector of a world's baseline trace (horizon =
    /// the Table I ROB size), computed at most once; every profiler
    /// configuration shares it.
    pub fn cone_fanout(&self, world: &World) -> Arc<Vec<u32>> {
        let result: Result<Arc<Vec<u32>>, RunError> = self
            .cones
            .get_or_try_build(world.key, || Ok(world.trace.compute_cone_fanout(128)));
        match result {
            Ok(cone) => cone,
            Err(never) => unreachable!("infallible cone build failed: {never}"),
        }
    }

    /// The profile of a world under `config`, built at most once per
    /// distinct configuration.
    pub fn profile(
        &self,
        world: &World,
        config: &ProfilerConfig,
    ) -> Result<Arc<Profile>, RunError> {
        self.sys_tap()?;
        let config_key = stable_key(config);
        let disk_key = self.disk_key(ArtifactClass::Profile, world, config_key);
        self.profiles.get_or_try_build((world.key, config_key), || {
            if let Some(disk_key) = disk_key {
                if let Some(profile) = self.disk_load::<Profile>(ArtifactClass::Profile, disk_key) {
                    return Ok(profile);
                }
            }
            let cone = self.cone_fanout(world);
            // The world's program/trace pair was validated when the world
            // was built, so the per-config re-validation walk is skipped.
            let profile = Profiler::new(config.clone()).build_profile_prevalidated(
                &world.program,
                &world.trace,
                &cone,
            );
            if let Some(disk_key) = disk_key {
                self.disk_save(ArtifactClass::Profile, disk_key, &profile);
            }
            Ok(profile)
        })
    }

    /// The baseline run outcome of a world under `point`'s hardware
    /// configuration, simulated at most once. `point`'s software must be
    /// the baseline binary (the world's own trace is simulated as-is).
    pub fn baseline(
        &self,
        world: &World,
        point: &DesignPoint,
    ) -> Result<Arc<RunOutcome>, RunError> {
        self.sys_tap()?;
        let cpu = point.cpu_config();
        let mem = point.mem_config();
        let config_key = stable_key(&(&cpu, &mem));
        let disk_key = self.disk_key(ArtifactClass::Baseline, world, config_key);
        self.baselines
            .get_or_try_build((world.key, config_key), || {
                if let Some(disk_key) = disk_key {
                    if let Some(outcome) =
                        self.disk_load::<RunOutcome>(ArtifactClass::Baseline, disk_key)
                    {
                        return Ok(outcome);
                    }
                }
                let sim = Simulator::new(cpu, mem).run(&world.trace, &world.fanout);
                let energy = EnergyModel::default().evaluate(&sim);
                let outcome = RunOutcome {
                    design: point.label(),
                    thumb_dyn_frac: world.trace.thumb_fraction(),
                    dyn_insns: world.trace.len(),
                    sim,
                    energy,
                    pass: Default::default(),
                };
                if let Some(disk_key) = disk_key {
                    self.disk_save(ArtifactClass::Baseline, disk_key, &outcome);
                }
                Ok(outcome)
            })
    }

    /// The captured baseline oracle execution of a world under `seed`,
    /// interpreted at most once; every validated scheme of the app replays
    /// its variants against it.
    pub fn baseline_execution(
        &self,
        world: &World,
        seed: u64,
    ) -> Result<Arc<BaselineExecution>, RunError> {
        self.sys_tap()?;
        self.baseline_execs.get_or_try_build((world.key, seed), || {
            BaselineExecution::capture(&world.program, &world.path, seed)
                .map_err(|e| RunError::Validation(e.to_string()))
        })
    }

    /// Snapshot of the build/hit counters.
    pub fn stats(&self) -> StoreStats {
        let worlds_hit = self.worlds.hits.load(Ordering::Relaxed);
        let cones_hit = self.cones.hits.load(Ordering::Relaxed);
        let profiles_hit = self.profiles.hits.load(Ordering::Relaxed);
        let baselines_hit = self.baselines.hits.load(Ordering::Relaxed);
        let baseline_execs_hit = self.baseline_execs.hits.load(Ordering::Relaxed);
        StoreStats {
            worlds_built: self.worlds.computed.load(Ordering::Relaxed),
            cones_built: self.cones.computed.load(Ordering::Relaxed),
            profiles_built: self.profiles.computed.load(Ordering::Relaxed),
            baselines_built: self.baselines.computed.load(Ordering::Relaxed),
            baseline_execs_built: self.baseline_execs.computed.load(Ordering::Relaxed),
            worlds_hit,
            cones_hit,
            profiles_hit,
            baselines_hit,
            baseline_execs_hit,
            hits: worlds_hit + cones_hit + profiles_hit + baselines_hit + baseline_execs_hit,
            build_nanos: self.worlds.build_nanos.load(Ordering::Relaxed)
                + self.cones.build_nanos.load(Ordering::Relaxed)
                + self.profiles.build_nanos.load(Ordering::Relaxed)
                + self.baselines.build_nanos.load(Ordering::Relaxed)
                + self.baseline_execs.build_nanos.load(Ordering::Relaxed),
            disk: self.disk.as_ref().map(DiskStore::stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicUsize;

    use critic_workloads::Suite;

    use super::*;

    fn small_app(index: usize) -> AppSpec {
        let mut app = Suite::Mobile.apps()[index].clone();
        app.params.num_functions = 24;
        app
    }

    #[test]
    fn memo_computes_once_and_then_hits() {
        let memo: Memo<u32, u32> = Memo::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = memo
                .get_or_try_build(7, || -> Result<u32, RunError> {
                    calls.fetch_add(1, Ordering::Relaxed);
                    Ok(42)
                })
                .expect("build succeeds");
            assert_eq!(*v, 42);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(memo.computed.load(Ordering::Relaxed), 1);
        assert_eq!(memo.hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn memo_does_not_cache_errors() {
        let memo: Memo<u32, u32> = Memo::new();
        let err = memo.get_or_try_build(1, || Err(RunError::Inject("boom".into())));
        assert!(err.is_err());
        // The failed slot must recompute, not replay the error.
        let ok = memo.get_or_try_build(1, || -> Result<u32, RunError> { Ok(9) });
        assert_eq!(*ok.expect("retry succeeds"), 9);
    }

    #[test]
    fn memo_survives_a_panicking_build() {
        let memo = Arc::new(Memo::<u32, u32>::new());
        let inner = Arc::clone(&memo);
        let panicked = std::thread::spawn(move || {
            let _ = inner.get_or_try_build(5, || -> Result<u32, RunError> {
                panic!("injected build panic")
            });
        })
        .join();
        assert!(panicked.is_err(), "the build must have panicked");
        // The poisoned slot self-heals: the value was never written, so the
        // next caller recomputes.
        let v = memo
            .get_or_try_build(5, || -> Result<u32, RunError> { Ok(11) })
            .expect("recompute succeeds");
        assert_eq!(*v, 11);
    }

    #[test]
    fn concurrent_world_requests_build_once() {
        let store = Arc::new(ArtifactStore::new());
        let app = small_app(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let store = Arc::clone(&store);
                let app = app.clone();
                scope.spawn(move || {
                    let world = store.world(&app, 6_000).expect("world builds");
                    assert_eq!(world.fanout.len(), world.trace.len());
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.worlds_built, 1, "{stats:?}");
        assert_eq!(stats.hits, 3, "{stats:?}");
    }

    #[test]
    fn distinct_keys_get_distinct_artifacts() {
        let store = ArtifactStore::new();
        let a = store.world(&small_app(0), 6_000).expect("world a");
        let b = store.world(&small_app(1), 6_000).expect("world b");
        let a_short = store.world(&small_app(0), 3_000).expect("world a short");
        assert_ne!(a.key, b.key);
        assert_ne!(a.key, a_short.key);
        assert_eq!(store.stats().worlds_built, 3);
        // Same app + length hits the cache.
        let again = store.world(&small_app(0), 6_000).expect("cached world");
        assert!(Arc::ptr_eq(&a.program, &again.program));
    }

    #[test]
    fn profiles_and_baselines_are_shared_per_config() {
        let store = ArtifactStore::new();
        let world = store.world(&small_app(0), 8_000).expect("world");
        let p1 = store
            .profile(&world, &ProfilerConfig::default())
            .expect("profile");
        let p2 = store
            .profile(&world, &ProfilerConfig::default())
            .expect("profile again");
        assert!(Arc::ptr_eq(&p1, &p2));
        let ideal = store
            .profile(&world, &ProfilerConfig::ideal())
            .expect("ideal profile");
        assert!(!Arc::ptr_eq(&p1, &ideal));
        let b1 = store
            .baseline(&world, &DesignPoint::baseline())
            .expect("baseline");
        let b2 = store
            .baseline(&world, &DesignPoint::baseline())
            .expect("baseline again");
        assert!(Arc::ptr_eq(&b1, &b2));
        let stats = store.stats();
        assert_eq!(stats.profiles_built, 2, "{stats:?}");
        assert_eq!(stats.cones_built, 1, "cone shared across configs");
        assert_eq!(stats.baselines_built, 1, "{stats:?}");
    }

    #[test]
    fn per_class_counters_partition_the_totals() {
        let store = ArtifactStore::new();
        let world = store.world(&small_app(0), 6_000).expect("world");
        let _ = store.world(&small_app(0), 6_000).expect("cached world");
        let _ = store
            .profile(&world, &ProfilerConfig::default())
            .expect("profile");
        let _ = store
            .profile(&world, &ProfilerConfig::default())
            .expect("cached profile");
        let stats = store.stats();
        assert_eq!(stats.worlds_hit, 1, "{stats:?}");
        assert_eq!(stats.profiles_hit, 1, "{stats:?}");
        assert_eq!(
            stats.hits,
            stats.worlds_hit
                + stats.cones_hit
                + stats.profiles_hit
                + stats.baselines_hit
                + stats.baseline_execs_hit,
            "the rollup must equal the per-class sum"
        );
        assert_eq!(stats.built(), 3, "world + cone + profile, {stats:?}");
        assert_eq!(stats.requests(), stats.built() + stats.hits);
        assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
        assert!(stats.build_nanos > 0, "builds take measurable time");
        assert!(stats.disk.is_none(), "in-memory store has no disk tier");
    }

    /// The durable-warm guarantee at store level: a *fresh process* (here,
    /// a fresh store over the same directory) serves profiles and
    /// baselines from disk, bit-identical to what the cold store built.
    #[test]
    fn persistent_store_restarts_warm_and_bit_identical() {
        let dir = std::env::temp_dir().join(format!("critic-store-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let app = small_app(0);
        let cold = ArtifactStore::persistent(&dir, None, Telemetry::off()).expect("open");
        let world = cold.world(&app, 6_000).expect("world");
        let p_cold = cold
            .profile(&world, &ProfilerConfig::default())
            .expect("profile");
        let b_cold = cold
            .baseline(&world, &DesignPoint::baseline())
            .expect("baseline");
        let cold_disk = cold.stats().disk.expect("disk stats");
        assert_eq!(cold_disk.saves, 2, "{cold_disk:?}");
        assert_eq!(cold_disk.disk_hits, 0, "{cold_disk:?}");
        drop(cold);

        let warm = ArtifactStore::persistent(&dir, None, Telemetry::off()).expect("reopen");
        let world = warm.world(&app, 6_000).expect("world rebuilt");
        let p_warm = warm
            .profile(&world, &ProfilerConfig::default())
            .expect("disk profile");
        let b_warm = warm
            .baseline(&world, &DesignPoint::baseline())
            .expect("disk baseline");
        assert_eq!(*p_cold, *p_warm, "disk round-trip is lossless");
        assert_eq!(*b_cold, *b_warm, "disk round-trip is lossless");
        let warm_disk = warm.stats().disk.expect("disk stats");
        assert_eq!(warm_disk.disk_hits, 2, "{warm_disk:?}");
        assert_eq!(warm_disk.saves, 0, "nothing rebuilt, nothing saved");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
