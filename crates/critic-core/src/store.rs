//! Campaign-wide content-addressed artifact store.
//!
//! A campaign grid shares enormous amounts of work between cells: every
//! cell of one app regenerates the same program, re-records the same
//! execution path, re-expands the same trace, recomputes the same fanout
//! vectors, rebuilds the same profiles, and re-simulates the same baseline.
//! The store memoizes those stages *across* cells so each artifact is
//! computed exactly once per campaign:
//!
//! * a [`World`] (program + path + trace + fanout) is keyed by the app
//!   spec's content hash and the trace length;
//! * a ROB-cone fanout vector is keyed by the world (it is profiler-config
//!   independent);
//! * a [`Profile`] is keyed by the world plus the profiler configuration;
//! * a baseline [`RunOutcome`] is keyed by the world plus the CPU and
//!   memory configurations it was simulated under.
//!
//! Concurrency uses a per-key slot: the key map is held only long enough
//! to clone out an `Arc` to the key's slot, and the computation runs under
//! the *slot's* lock — so two cells needing different artifacts never block
//! each other, and two cells needing the same artifact compute it once
//! (the second blocks until the first finishes, then shares the result).
//! A failed computation leaves the slot empty: errors are never cached, so
//! a faulted or cancelled attempt cannot poison siblings, and a retry
//! recomputes from scratch.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use critic_compiler::BaselineExecution;
use critic_energy::EnergyModel;
use critic_pipeline::Simulator;
use critic_profiler::{Profile, Profiler, ProfilerConfig};
use critic_workloads::{AppSpec, ExecutionPath, Program, SysFault, SysInjector, SysOp, Trace};
use serde::{Deserialize, Serialize};

use crate::design::DesignPoint;
use crate::error::RunError;
use crate::runner::RunOutcome;

/// FNV-1a over a byte string: a stable, dependency-free content hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content hash of any `Debug`-printable configuration. The structs being
/// keyed (app specs, profiler/CPU/memory configs) carry `f64` fields and so
/// cannot derive `Hash`; their `Debug` form round-trips every field at full
/// precision, which makes it a faithful content address.
fn debug_hash(value: &impl std::fmt::Debug) -> u64 {
    fnv1a(format!("{value:?}").as_bytes())
}

/// Identity of one generated world: app content hash × trace length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorldKey {
    app: u64,
    trace_len: usize,
}

impl WorldKey {
    /// The key for `app` at `trace_len` dynamic instructions.
    pub fn new(app: &AppSpec, trace_len: usize) -> WorldKey {
        WorldKey {
            app: debug_hash(app),
            trace_len,
        }
    }
}

/// Everything deterministic generation produces for one app: the binary,
/// the recorded input, the expanded baseline trace, and its direct-fanout
/// vector. Shared read-only between every cell of the app.
#[derive(Debug)]
pub struct World {
    /// The store key this world was built under.
    pub key: WorldKey,
    /// The original (baseline) binary.
    pub program: Arc<Program>,
    /// The recorded block-level input.
    pub path: Arc<ExecutionPath>,
    /// The baseline dynamic trace.
    pub trace: Arc<Trace>,
    /// `trace.compute_fanout()`, computed once at build time.
    pub fanout: Arc<Vec<u32>>,
}

/// A single-key memoization slot map. See the module docs for the locking
/// discipline; `lock_clean` recovers from poisoning because a panic inside
/// a computation leaves the slot value `None` (the value is only written on
/// success), so the slot is still in a consistent "recompute me" state.
/// One artifact's slot: taken for the duration of its (single) build,
/// then holding the shared value.
type Slot<V> = Arc<Mutex<Option<Arc<V>>>>;

struct Memo<K, V> {
    map: Mutex<HashMap<K, Slot<V>>>,
    computed: AtomicU64,
    hits: AtomicU64,
    build_nanos: AtomicU64,
}

fn lock_clean<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<K: Eq + Hash + Clone, V> Memo<K, V> {
    fn new() -> Memo<K, V> {
        Memo {
            map: Mutex::new(HashMap::new()),
            computed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            build_nanos: AtomicU64::new(0),
        }
    }

    /// Returns the cached value for `key`, or computes it with `build`.
    /// Exactly one caller computes; concurrent callers for the same key
    /// block on the slot and share the result. `Err` is never cached.
    fn get_or_try_build<E>(
        &self,
        key: K,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let slot = {
            let mut map = lock_clean(&self.map);
            Arc::clone(map.entry(key).or_default())
        };
        let mut guard = lock_clean(&slot);
        if let Some(value) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(value));
        }
        let start = std::time::Instant::now();
        let value = Arc::new(build()?);
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        *guard = Some(Arc::clone(&value));
        self.computed.fetch_add(1, Ordering::Relaxed);
        self.build_nanos.fetch_add(nanos, Ordering::Relaxed);
        Ok(value)
    }
}

/// Counters describing what a store computed and what it served from
/// cache; the memoization-correctness tests, the telemetry layer, and the
/// bench harness read these to prove each artifact was built exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Worlds generated (program + path + trace + fanout).
    pub worlds_built: u64,
    /// ROB-cone fanout vectors computed.
    pub cones_built: u64,
    /// Profiles built.
    pub profiles_built: u64,
    /// Baseline simulations run.
    pub baselines_built: u64,
    /// Baseline oracle executions captured (for translation validation).
    pub baseline_execs_built: u64,
    /// World requests served from cache.
    pub worlds_hit: u64,
    /// Cone-fanout requests served from cache.
    pub cones_hit: u64,
    /// Profile requests served from cache.
    pub profiles_hit: u64,
    /// Baseline-simulation requests served from cache.
    pub baselines_hit: u64,
    /// Baseline-execution requests served from cache.
    pub baseline_execs_hit: u64,
    /// Requests served from cache across all artifact classes.
    pub hits: u64,
    /// Wall-clock nanoseconds spent inside build closures (cache misses).
    pub build_nanos: u64,
}

impl StoreStats {
    /// Total artifacts built across every class.
    pub fn built(&self) -> u64 {
        self.worlds_built
            + self.cones_built
            + self.profiles_built
            + self.baselines_built
            + self.baseline_execs_built
    }

    /// Total requests (builds + cache hits) across every class.
    pub fn requests(&self) -> u64 {
        self.built() + self.hits
    }

    /// Fraction of requests served from cache, 0 when the store is idle.
    pub fn hit_rate(&self) -> f64 {
        let requests = self.requests();
        if requests == 0 {
            0.0
        } else {
            self.hits as f64 / requests as f64
        }
    }

    /// Milliseconds spent building artifacts (cache misses only).
    pub fn build_millis(&self) -> f64 {
        self.build_nanos as f64 / 1e6
    }
}

/// The campaign-wide artifact store. Cheap to share: wrap in an [`Arc`]
/// and clone the handle into every worker.
pub struct ArtifactStore {
    worlds: Memo<WorldKey, World>,
    cones: Memo<WorldKey, Vec<u32>>,
    profiles: Memo<(WorldKey, u64), Profile>,
    baselines: Memo<(WorldKey, u64), RunOutcome>,
    baseline_execs: Memo<(WorldKey, u64), BaselineExecution>,
    /// Chaos tap: when armed, every public store request advances the
    /// injector's `StoreRequest` counter and may fail with an injected
    /// I/O error. `None` (the default) is a branch and nothing more.
    injector: Mutex<Option<Arc<SysInjector>>>,
}

impl Default for ArtifactStore {
    fn default() -> ArtifactStore {
        ArtifactStore::new()
    }
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ArtifactStore({:?})", self.stats())
    }
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> ArtifactStore {
        ArtifactStore {
            worlds: Memo::new(),
            cones: Memo::new(),
            profiles: Memo::new(),
            baselines: Memo::new(),
            baseline_execs: Memo::new(),
            injector: Mutex::new(None),
        }
    }

    /// Arms (or clears) the systemic-fault injector consulted on every
    /// public store request. The campaign runner arms it for the duration
    /// of a chaos run and clears it afterwards, so a store outlives the
    /// faults injected into one campaign.
    pub fn set_sys_injector(&self, injector: Option<Arc<SysInjector>>) {
        *lock_clean(&self.injector) = injector;
    }

    /// The chaos tap on the store's request path: advances the injector's
    /// `StoreRequest` counter and fails the request when a store fault
    /// fires at this index. Faults are consume-once, so the retry that
    /// follows observes a healed store.
    fn sys_tap(&self) -> Result<(), RunError> {
        let injector = lock_clean(&self.injector).clone();
        if let Some(injector) = injector {
            for fault in injector.advance(SysOp::StoreRequest) {
                if matches!(fault, SysFault::StoreRead | SysFault::StoreWrite) {
                    return Err(RunError::Sys(fault));
                }
            }
        }
        Ok(())
    }

    /// The world for `app` at `trace_len`, generated at most once.
    ///
    /// Generation and validation mirror `Workbench::try_new` exactly, so a
    /// store-backed cell fails with the same typed error a store-less cell
    /// would.
    pub fn world(&self, app: &AppSpec, trace_len: usize) -> Result<Arc<World>, RunError> {
        self.sys_tap()?;
        let key = WorldKey::new(app, trace_len);
        self.worlds.get_or_try_build(key, || {
            let program = app.generate_program();
            program.validate()?;
            let path = ExecutionPath::generate(&program, app.path_seed(), trace_len);
            let trace = Trace::expand(&program, &path);
            program.validate_encoding()?;
            trace.validate(&program)?;
            let fanout = trace.compute_fanout();
            Ok(World {
                key,
                program: Arc::new(program),
                path: Arc::new(path),
                trace: Arc::new(trace),
                fanout: Arc::new(fanout),
            })
        })
    }

    /// The ROB-cone fanout vector of a world's baseline trace (horizon =
    /// the Table I ROB size), computed at most once; every profiler
    /// configuration shares it.
    pub fn cone_fanout(&self, world: &World) -> Arc<Vec<u32>> {
        let result: Result<Arc<Vec<u32>>, RunError> = self
            .cones
            .get_or_try_build(world.key, || Ok(world.trace.compute_cone_fanout(128)));
        match result {
            Ok(cone) => cone,
            Err(never) => unreachable!("infallible cone build failed: {never}"),
        }
    }

    /// The profile of a world under `config`, built at most once per
    /// distinct configuration.
    pub fn profile(
        &self,
        world: &World,
        config: &ProfilerConfig,
    ) -> Result<Arc<Profile>, RunError> {
        self.sys_tap()?;
        let key = (world.key, debug_hash(config));
        self.profiles.get_or_try_build(key, || {
            let cone = self.cone_fanout(world);
            Ok(Profiler::new(config.clone()).try_build_profile_with_cone(
                &world.program,
                &world.trace,
                &cone,
            )?)
        })
    }

    /// The baseline run outcome of a world under `point`'s hardware
    /// configuration, simulated at most once. `point`'s software must be
    /// the baseline binary (the world's own trace is simulated as-is).
    pub fn baseline(
        &self,
        world: &World,
        point: &DesignPoint,
    ) -> Result<Arc<RunOutcome>, RunError> {
        self.sys_tap()?;
        let cpu = point.cpu_config();
        let mem = point.mem_config();
        let key = (world.key, debug_hash(&(&cpu, &mem)));
        self.baselines.get_or_try_build(key, || {
            let sim = Simulator::new(cpu, mem).run(&world.trace, &world.fanout);
            let energy = EnergyModel::default().evaluate(&sim);
            Ok(RunOutcome {
                design: point.label(),
                thumb_dyn_frac: world.trace.thumb_fraction(),
                dyn_insns: world.trace.len(),
                sim,
                energy,
                pass: Default::default(),
            })
        })
    }

    /// The captured baseline oracle execution of a world under `seed`,
    /// interpreted at most once; every validated scheme of the app replays
    /// its variants against it.
    pub fn baseline_execution(
        &self,
        world: &World,
        seed: u64,
    ) -> Result<Arc<BaselineExecution>, RunError> {
        self.sys_tap()?;
        self.baseline_execs.get_or_try_build((world.key, seed), || {
            BaselineExecution::capture(&world.program, &world.path, seed)
                .map_err(|e| RunError::Validation(e.to_string()))
        })
    }

    /// Snapshot of the build/hit counters.
    pub fn stats(&self) -> StoreStats {
        let worlds_hit = self.worlds.hits.load(Ordering::Relaxed);
        let cones_hit = self.cones.hits.load(Ordering::Relaxed);
        let profiles_hit = self.profiles.hits.load(Ordering::Relaxed);
        let baselines_hit = self.baselines.hits.load(Ordering::Relaxed);
        let baseline_execs_hit = self.baseline_execs.hits.load(Ordering::Relaxed);
        StoreStats {
            worlds_built: self.worlds.computed.load(Ordering::Relaxed),
            cones_built: self.cones.computed.load(Ordering::Relaxed),
            profiles_built: self.profiles.computed.load(Ordering::Relaxed),
            baselines_built: self.baselines.computed.load(Ordering::Relaxed),
            baseline_execs_built: self.baseline_execs.computed.load(Ordering::Relaxed),
            worlds_hit,
            cones_hit,
            profiles_hit,
            baselines_hit,
            baseline_execs_hit,
            hits: worlds_hit + cones_hit + profiles_hit + baselines_hit + baseline_execs_hit,
            build_nanos: self.worlds.build_nanos.load(Ordering::Relaxed)
                + self.cones.build_nanos.load(Ordering::Relaxed)
                + self.profiles.build_nanos.load(Ordering::Relaxed)
                + self.baselines.build_nanos.load(Ordering::Relaxed)
                + self.baseline_execs.build_nanos.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicUsize;

    use critic_workloads::Suite;

    use super::*;

    fn small_app(index: usize) -> AppSpec {
        let mut app = Suite::Mobile.apps()[index].clone();
        app.params.num_functions = 24;
        app
    }

    #[test]
    fn memo_computes_once_and_then_hits() {
        let memo: Memo<u32, u32> = Memo::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = memo
                .get_or_try_build(7, || -> Result<u32, RunError> {
                    calls.fetch_add(1, Ordering::Relaxed);
                    Ok(42)
                })
                .expect("build succeeds");
            assert_eq!(*v, 42);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(memo.computed.load(Ordering::Relaxed), 1);
        assert_eq!(memo.hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn memo_does_not_cache_errors() {
        let memo: Memo<u32, u32> = Memo::new();
        let err = memo.get_or_try_build(1, || Err(RunError::Inject("boom".into())));
        assert!(err.is_err());
        // The failed slot must recompute, not replay the error.
        let ok = memo.get_or_try_build(1, || -> Result<u32, RunError> { Ok(9) });
        assert_eq!(*ok.expect("retry succeeds"), 9);
    }

    #[test]
    fn memo_survives_a_panicking_build() {
        let memo = Arc::new(Memo::<u32, u32>::new());
        let inner = Arc::clone(&memo);
        let panicked = std::thread::spawn(move || {
            let _ = inner.get_or_try_build(5, || -> Result<u32, RunError> {
                panic!("injected build panic")
            });
        })
        .join();
        assert!(panicked.is_err(), "the build must have panicked");
        // The poisoned slot self-heals: the value was never written, so the
        // next caller recomputes.
        let v = memo
            .get_or_try_build(5, || -> Result<u32, RunError> { Ok(11) })
            .expect("recompute succeeds");
        assert_eq!(*v, 11);
    }

    #[test]
    fn concurrent_world_requests_build_once() {
        let store = Arc::new(ArtifactStore::new());
        let app = small_app(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let store = Arc::clone(&store);
                let app = app.clone();
                scope.spawn(move || {
                    let world = store.world(&app, 6_000).expect("world builds");
                    assert_eq!(world.fanout.len(), world.trace.len());
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.worlds_built, 1, "{stats:?}");
        assert_eq!(stats.hits, 3, "{stats:?}");
    }

    #[test]
    fn distinct_keys_get_distinct_artifacts() {
        let store = ArtifactStore::new();
        let a = store.world(&small_app(0), 6_000).expect("world a");
        let b = store.world(&small_app(1), 6_000).expect("world b");
        let a_short = store.world(&small_app(0), 3_000).expect("world a short");
        assert_ne!(a.key, b.key);
        assert_ne!(a.key, a_short.key);
        assert_eq!(store.stats().worlds_built, 3);
        // Same app + length hits the cache.
        let again = store.world(&small_app(0), 6_000).expect("cached world");
        assert!(Arc::ptr_eq(&a.program, &again.program));
    }

    #[test]
    fn profiles_and_baselines_are_shared_per_config() {
        let store = ArtifactStore::new();
        let world = store.world(&small_app(0), 8_000).expect("world");
        let p1 = store
            .profile(&world, &ProfilerConfig::default())
            .expect("profile");
        let p2 = store
            .profile(&world, &ProfilerConfig::default())
            .expect("profile again");
        assert!(Arc::ptr_eq(&p1, &p2));
        let ideal = store
            .profile(&world, &ProfilerConfig::ideal())
            .expect("ideal profile");
        assert!(!Arc::ptr_eq(&p1, &ideal));
        let b1 = store
            .baseline(&world, &DesignPoint::baseline())
            .expect("baseline");
        let b2 = store
            .baseline(&world, &DesignPoint::baseline())
            .expect("baseline again");
        assert!(Arc::ptr_eq(&b1, &b2));
        let stats = store.stats();
        assert_eq!(stats.profiles_built, 2, "{stats:?}");
        assert_eq!(stats.cones_built, 1, "cone shared across configs");
        assert_eq!(stats.baselines_built, 1, "{stats:?}");
    }

    #[test]
    fn per_class_counters_partition_the_totals() {
        let store = ArtifactStore::new();
        let world = store.world(&small_app(0), 6_000).expect("world");
        let _ = store.world(&small_app(0), 6_000).expect("cached world");
        let _ = store
            .profile(&world, &ProfilerConfig::default())
            .expect("profile");
        let _ = store
            .profile(&world, &ProfilerConfig::default())
            .expect("cached profile");
        let stats = store.stats();
        assert_eq!(stats.worlds_hit, 1, "{stats:?}");
        assert_eq!(stats.profiles_hit, 1, "{stats:?}");
        assert_eq!(
            stats.hits,
            stats.worlds_hit
                + stats.cones_hit
                + stats.profiles_hit
                + stats.baselines_hit
                + stats.baseline_execs_hit,
            "the rollup must equal the per-class sum"
        );
        assert_eq!(stats.built(), 3, "world + cone + profile, {stats:?}");
        assert_eq!(stats.requests(), stats.built() + stats.hits);
        assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
        assert!(stats.build_nanos > 0, "builds take measurable time");
    }
}
