//! The fault-tolerant campaign runner: an app × design-point grid with
//! per-cell panic isolation, deadlines, bounded retry, and a JSONL journal
//! for checkpoint/resume.
//!
//! A *campaign* evaluates every scheme of interest over every app of one
//! or more suites — the full-evaluation shape behind the paper's Figs. 10,
//! 11 and 13. One pathological cell (a generator edge case, a corrupted
//! profile, a runaway simulation) must not take the other 79 cells down
//! with it, so each cell runs behind [`std::panic::catch_unwind`] on its
//! own attempt thread, bounded by a per-attempt deadline and a retry
//! budget. Every finished cell is appended to a JSONL journal and the
//! journal is replayed on `--resume`, so a killed campaign continues where
//! it stopped instead of starting over.

use std::collections::{BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use critic_obs::{EventKind, SpanKind, Telemetry, TelemetrySnapshot};
use critic_workloads::{
    inject_program, inject_trace, AppSpec, ExecutionPath, Fault, FaultTarget, SysFault,
    SysInjector, SysOp, Trace, DEFAULT_LOOKAHEAD,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::design::DesignPoint;
use crate::error::RunError;
use crate::journal::Journal;
use crate::runner::{ValidationStats, Workbench};
use crate::service::{Breaker, BreakerDecision};
use crate::store::{ArtifactStore, StoreStats};

/// One named software/hardware configuration of the campaign grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scheme {
    /// Short stable name (journal key; e.g. `critic`, `opp16`).
    pub name: String,
    /// The design point it runs.
    pub point: DesignPoint,
}

impl Scheme {
    /// Convenience constructor.
    pub fn new(name: &str, point: DesignPoint) -> Scheme {
        Scheme {
            name: name.to_string(),
            point,
        }
    }
}

/// A fault to inject into one specific cell (for harness validation and
/// robustness drills).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedFault {
    /// App name the fault applies to (case-insensitive match).
    pub app: String,
    /// Scheme name the fault applies to.
    pub scheme: String,
    /// What to corrupt.
    pub fault: Fault,
    /// Seed steering the injection site.
    pub seed: u64,
}

/// The supervision policy a campaign runs its retry loop under. The
/// default is a strict no-op — no backoff, no breaker, no degradation —
/// so existing campaigns behave exactly as before opting in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisionPolicy {
    /// First-retry backoff in milliseconds; doubles per retry. 0 disables
    /// backoff entirely.
    pub backoff_base_millis: u64,
    /// Hard upper bound on any single backoff delay (jitter included).
    pub backoff_cap_millis: u64,
    /// Seed for the deterministic backoff jitter. The same seed, app, and
    /// scheme always produce the same delay schedule.
    pub backoff_seed: u64,
    /// Consecutive terminal cell failures of one *app* that trip its
    /// circuit breaker; once open, the app's remaining cells are shed
    /// with [`CellStatus::Shed`] records. 0 disables the breaker.
    ///
    /// The grid has exactly one cell per (app, scheme), so a pair-keyed
    /// breaker could never see two consecutive failures; the app is the
    /// shared resource (its generated world) and is the breaker key.
    pub breaker_threshold: u32,
    /// Walk the degradation ladder between failed attempts: first drop
    /// validation, then drop telemetry, then fall back to the baseline
    /// scheme. Each step is counted as an [`EventKind::Degrade`] and the
    /// final level is recorded on the cell.
    pub degrade: bool,
}

impl SupervisionPolicy {
    /// The exponential-backoff delay (milliseconds) before each of the
    /// cell's `retries` retry attempts: `min(cap, base * 2^k)` jittered
    /// deterministically into `[delay/2, delay]` by a [`StdRng`] seeded
    /// from `(backoff_seed, app, scheme)`. Every delay is `<= cap`, and
    /// the same inputs always produce the same schedule.
    pub fn backoff_schedule(&self, app: &str, scheme: &str, retries: u32) -> Vec<u64> {
        if self.backoff_base_millis == 0 || retries == 0 {
            return vec![0; retries as usize];
        }
        let key = fnv1a(format!("{app}:{scheme}").as_bytes());
        let mut rng = StdRng::seed_from_u64(self.backoff_seed ^ key);
        (0..retries)
            .map(|k| {
                let raw = self
                    .backoff_base_millis
                    .saturating_mul(1u64 << k.min(20) as u64);
                let delay = raw.min(self.backoff_cap_millis);
                if delay == 0 {
                    0
                } else {
                    delay / 2 + rng.gen_range(0..=delay - delay / 2)
                }
            })
            .collect()
    }
}

/// FNV-1a (the store's content hash) over a byte string — used here to
/// fold cell identity into the backoff jitter seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Recovers the guard from a poisoned lock. Campaign state behind these
/// locks (queue, record list, journal file) is only mutated by whole-value
/// pushes/pops, so a worker that panicked mid-cell cannot leave it halfway
/// written; discarding records because a *sibling* panicked would be a
/// silent drop.
fn lock_clean<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The full description of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Apps to evaluate (rows of the grid).
    pub apps: Vec<AppSpec>,
    /// Schemes to evaluate (columns of the grid).
    pub schemes: Vec<Scheme>,
    /// Dynamic instructions per recorded execution.
    pub trace_len: usize,
    /// Per-attempt wall-clock budget; `None` disables the deadline.
    pub deadline: Option<Duration>,
    /// Extra attempts after the first failure (0 = fail fast).
    pub retries: u32,
    /// Worker threads; 0 picks the machine's parallelism.
    pub workers: usize,
    /// Faults to inject into specific cells.
    pub faults: Vec<PlannedFault>,
    /// JSONL journal path; `None` disables journaling (and resume).
    pub journal: Option<PathBuf>,
    /// Skip cells already journaled as [`CellStatus::Ok`]; failed,
    /// timed-out, and panicked cells are retried (their newest record
    /// supersedes the journaled one in the summary).
    pub resume: bool,
    /// Run every scheme cell through the translation-validation oracle
    /// ([`Workbench::try_run_validated`]): miscompiled chains are demoted
    /// and counted in the cell's [`ValidationStats`]; divergences that
    /// survive demotion fail the cell with [`RunError::Validation`].
    pub validate: bool,
    /// Campaign-wide telemetry sink. [`CampaignSpec::new`] seeds it from
    /// the `CRITIC_TELEMETRY` environment variable; when enabled, every
    /// cell records its stage spans into a private recorder (journaled on
    /// its [`CellRecord`]) and the campaign aggregate lands on the
    /// [`CampaignSummary`] and as a trailing journal line. When disabled
    /// (the default) the instrumented paths reduce to one branch per span.
    pub telemetry: Telemetry,
    /// Supervision policy: backoff between retries, circuit breaker,
    /// degradation ladder. The default is a no-op.
    pub supervision: SupervisionPolicy,
    /// Systemic-fault injector (chaos harness). When armed, the campaign's
    /// tap points — journal appends, store requests, attempt starts, cell
    /// completions — consult it; `None` (the default) costs one branch.
    pub sys: Option<Arc<SysInjector>>,
    /// Root of the persistent artifact store; `None` (the default) keeps
    /// the store purely in-memory. [`run_campaign`] opens the disk tier
    /// here, so a *restarted* campaign over the same directory is warm
    /// from its first cell.
    pub store_dir: Option<PathBuf>,
    /// Byte budget for the persistent store's entries (`None` =
    /// unbounded); the oldest entries are LRU-evicted over budget.
    pub store_budget: Option<u64>,
    /// Cell records per journal segment before it is rolled into a
    /// checkpointed segment and compacted; `0` (the default) disables
    /// segmentation — one unbounded journal file, the original format.
    pub segment_max_lines: usize,
    /// Tag stamped on every cell record this run journals (the recovery
    /// drill uses monotonically increasing tags to prove a journaled-Ok
    /// cell is never re-simulated after a crash). `None` journals no tag.
    pub run_tag: Option<u64>,
    /// When set, each cell's data-oriented simulations run through the
    /// bounded-memory streaming trace pipeline with this window size
    /// ([`Workbench::set_stream_window`]); results are bit-identical, the
    /// cell's expansion/simulation allocations become O(window) instead of
    /// O(trace_len), and the injected allocation budget is charged
    /// accordingly. Trace-targeted fault cells always stay materialized
    /// (the stream would re-expand past the injected corruption).
    pub stream_window: Option<usize>,
}

impl CampaignSpec {
    /// A campaign over `apps` × `schemes` with journaling and resume off,
    /// no deadline, no retries, and automatic worker count.
    pub fn new(apps: Vec<AppSpec>, schemes: Vec<Scheme>, trace_len: usize) -> CampaignSpec {
        CampaignSpec {
            apps,
            schemes,
            trace_len,
            deadline: None,
            retries: 0,
            workers: 0,
            faults: Vec::new(),
            journal: None,
            resume: false,
            validate: false,
            telemetry: Telemetry::from_env(),
            supervision: SupervisionPolicy::default(),
            sys: None,
            store_dir: None,
            store_budget: None,
            segment_max_lines: 0,
            run_tag: None,
            stream_window: None,
        }
    }
}

/// Terminal status of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellStatus {
    /// The cell produced a result.
    Ok,
    /// Every attempt returned a typed error.
    Failed,
    /// Every attempt blew the deadline.
    TimedOut,
    /// The final attempt panicked (trapped at the isolation boundary).
    Panicked,
    /// The cell never ran: its app's circuit breaker was open, or a
    /// graceful shutdown drained the queue. Resume reruns shed cells.
    Shed,
}

/// The metrics a successful cell contributes (the campaign-level subset of
/// [`RunOutcome`]; the full outcome stays in memory, not in the journal).
///
/// [`RunOutcome`]: crate::runner::RunOutcome
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellMetrics {
    /// Speedup over the same app's baseline run.
    pub speedup: f64,
    /// CPU energy saving vs baseline (fraction).
    pub cpu_energy_saving: f64,
    /// Fraction of dynamic instructions fetched 16-bit.
    pub thumb_dyn_frac: f64,
    /// Dynamic instructions executed.
    pub dyn_insns: usize,
}

/// One journaled cell: identity, terminal status, and either metrics or
/// the error that killed it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// App name.
    pub app: String,
    /// Scheme name.
    pub scheme: String,
    /// Terminal status.
    pub status: CellStatus,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Wall-clock of the final attempt, in milliseconds.
    pub millis: u64,
    /// Fault injected into this cell, if any.
    pub fault: Option<Fault>,
    /// Metrics, when `status == Ok`.
    pub metrics: Option<CellMetrics>,
    /// The final attempt's error, when `status != Ok`.
    pub error: Option<RunError>,
    /// Per-cell translation-validation stats, when the campaign ran with
    /// [`CampaignSpec::validate`]. Absent in journals written before
    /// validation existed (and when validation is off), so old journals
    /// still resume.
    pub validation: Option<ValidationStats>,
    /// Per-cell telemetry (stage spans and fault/retry/demotion events),
    /// when the campaign ran with telemetry enabled. Absent otherwise and
    /// in journals written before telemetry existed, so old journals still
    /// resume.
    pub spans: Option<TelemetrySnapshot>,
    /// The degradation-ladder level the cell finished at (1 = validation
    /// dropped, 2 = telemetry also dropped, 3 = baseline-scheme fallback),
    /// when the supervisor degraded it. `None` for undegraded cells and in
    /// journals written before the supervision layer existed.
    pub degraded: Option<u8>,
    /// The [`CampaignSpec::run_tag`] of the invocation that produced this
    /// record. `None` for untagged runs and in journals written before the
    /// durability layer existed, so old journals still resume.
    pub run: Option<u64>,
}

impl CellRecord {
    fn key(&self) -> (String, String) {
        (self.app.clone(), self.scheme.clone())
    }
}

/// Aggregate of a finished (or resumed-and-finished) campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Every cell of the grid, in (app, scheme) order, including cells
    /// replayed from the journal on resume.
    pub records: Vec<CellRecord>,
    /// Cells replayed from the journal rather than run this invocation.
    pub resumed: usize,
    /// Campaign-wide telemetry aggregate (the sum of every fresh cell's
    /// spans and events), when the campaign ran with telemetry enabled.
    pub telemetry: Option<TelemetrySnapshot>,
    /// Whether a graceful shutdown (an injected [`SysFault::Kill`]) drained
    /// the campaign before every cell ran. Shed cells still appear in
    /// `records`, and the CLI maps this flag to its own exit code so
    /// scripts can tell an interrupted grid from a completed one.
    pub interrupted: bool,
}

impl CampaignSummary {
    /// Cells that did not finish with [`CellStatus::Ok`].
    pub fn failed(&self) -> Vec<&CellRecord> {
        self.records
            .iter()
            .filter(|r| r.status != CellStatus::Ok)
            .collect()
    }

    /// Cells shed without running (open breaker or graceful shutdown).
    pub fn shed(&self) -> Vec<&CellRecord> {
        self.records
            .iter()
            .filter(|r| r.status == CellStatus::Shed)
            .collect()
    }

    /// Whether every cell succeeded.
    pub fn all_ok(&self) -> bool {
        self.records.iter().all(|r| r.status == CellStatus::Ok)
    }

    /// Cells whose final error was a translation-validation failure — a
    /// divergence the demotion loop could not attribute or resolve. The
    /// CLI maps a non-empty result to its dedicated exit code.
    pub fn validation_failures(&self) -> Vec<&CellRecord> {
        self.records
            .iter()
            .filter(|r| matches!(r.error, Some(RunError::Validation(_))))
            .collect()
    }

    /// Human-readable report: one line per cell plus a failure roll-up.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let tag = match r.status {
                CellStatus::Ok => "ok",
                CellStatus::Failed => "FAILED",
                CellStatus::TimedOut => "TIMEOUT",
                CellStatus::Panicked => "PANICKED",
                CellStatus::Shed => "SHED",
            };
            let validation = match &r.validation {
                Some(v) if v.chains_demoted > 0 => {
                    format!(
                        "  [validated: {}/{} chains demoted]",
                        v.chains_demoted, v.chains_checked
                    )
                }
                Some(v) => format!("  [validated: {} chains]", v.chains_checked),
                None => String::new(),
            };
            let validation = match r.degraded {
                Some(level) => format!("{validation}  [degraded: level {level}]"),
                None => validation,
            };
            match (&r.metrics, &r.error) {
                (Some(m), _) => out.push_str(&format!(
                    "  {:12} {:14} {:8} speedup {:+.2}%  thumb {:4.1}%  ({} ms{}){}\n",
                    r.app,
                    r.scheme,
                    tag,
                    (m.speedup - 1.0) * 100.0,
                    m.thumb_dyn_frac * 100.0,
                    r.millis,
                    if r.attempts > 1 {
                        format!(", {} attempts", r.attempts)
                    } else {
                        String::new()
                    },
                    validation,
                )),
                (None, Some(e)) => {
                    out.push_str(&format!("  {:12} {:14} {:8} {}\n", r.app, r.scheme, tag, e))
                }
                (None, None) => {
                    out.push_str(&format!("  {:12} {:14} {:8}\n", r.app, r.scheme, tag))
                }
            }
        }
        let failed = self.failed();
        if failed.is_empty() {
            out.push_str(&format!(
                "campaign complete: all {} cells ok",
                self.records.len()
            ));
        } else {
            out.push_str(&format!(
                "campaign complete: {}/{} cells FAILED:",
                failed.len(),
                self.records.len()
            ));
            for r in failed {
                out.push_str(&format!("\n  {}:{}", r.app, r.scheme));
            }
        }
        if self.resumed > 0 {
            out.push_str(&format!("\n({} cells resumed from journal)", self.resumed));
        }
        if self.interrupted {
            out.push_str("\n(campaign interrupted by graceful shutdown; resume to finish)");
        }
        if let Some(telemetry) = &self.telemetry {
            out.push_str("\ntelemetry:\n");
            out.push_str(&telemetry.render());
        }
        out
    }
}

/// The trailing journal line a telemetry-enabled campaign appends after
/// its cell records: the campaign-wide aggregate under a key no
/// [`CellRecord`] has, so resume skips it and `critic stats` finds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignTelemetryRecord {
    /// The aggregate snapshot.
    pub campaign_telemetry: TelemetrySnapshot,
}

/// The journal trailer a persistent-store campaign appends *before* the
/// telemetry trailer (which stays the journal's last line): the final
/// store counters, including the disk tier's, under a key no
/// [`CellRecord`] has — resume skips it, `critic stats` reads it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignStoreRecord {
    /// The store counter snapshot at campaign end.
    pub campaign_store: StoreStats,
}

/// One unit of work: an app × scheme pair plus its planned fault.
#[derive(Debug, Clone)]
struct Cell {
    app: AppSpec,
    scheme: Scheme,
    fault: Option<(Fault, u64)>,
}

/// One queue entry a worker claims.
///
/// A *batch* is an app's full row of fault-free cells: the worker runs
/// them over one shared [`Workbench`], so the app's base trace is decoded
/// once and the simulator scratch/models recycle across every scheme —
/// one trace-decode walk per app instead of one per (app, scheme) cell.
/// Cells that need per-cell isolation machinery (planned faults, systemic
/// fault injection, per-attempt deadlines) stay [`WorkItem::Single`] and
/// run exactly as before batching existed.
#[derive(Debug, Clone)]
enum WorkItem {
    /// One isolated cell with the full retry/degradation/deadline path.
    /// Boxed so the queue's enum is as small as its `Batch` variant.
    Single(Box<Cell>),
    /// An app's fault-free cells, evaluated over one shared workbench.
    Batch(Vec<Cell>),
}

/// Per-attempt allocation budget (an injected [`SysFault::AllocBudget`]).
/// Pipeline stages charge their dominant allocations against it; the
/// charge that crosses the budget fails the attempt with
/// [`RunError::Sys`], modelling an OOM kill without actually exhausting
/// the host.
struct AllocMeter {
    budget: u64,
    charged: AtomicU64,
}

impl AllocMeter {
    fn new(budget: u64) -> AllocMeter {
        AllocMeter {
            budget,
            charged: AtomicU64::new(0),
        }
    }

    fn charge(&self, bytes: u64) -> Result<(), RunError> {
        let total = self.charged.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if total > self.budget {
            Err(RunError::Sys(SysFault::AllocBudget { bytes: self.budget }))
        } else {
            Ok(())
        }
    }
}

/// A [`CellStatus::Shed`] record for a cell that never ran. The record
/// carries the reason as [`RunError::Shed`] so nothing is silently
/// dropped: Ok + Failed + Shed always sums to the grid.
fn shed_record(cell: &Cell, reason: String, run: Option<u64>) -> CellRecord {
    CellRecord {
        app: cell.app.name.clone(),
        scheme: cell.scheme.name.clone(),
        status: CellStatus::Shed,
        attempts: 0,
        millis: 0,
        fault: cell.fault.map(|(f, _)| f),
        metrics: None,
        error: Some(RunError::Shed(reason)),
        validation: None,
        spans: None,
        degraded: None,
        run,
    }
}

/// Runs the campaign to completion. Individual cell failures never abort
/// the grid; they are journaled and reported in the summary. The only
/// campaign-level errors are an unusable journal or an unusable persistent
/// store directory.
///
/// With [`CampaignSpec::store_dir`] set, the campaign runs over a
/// [`ArtifactStore::persistent`] store rooted there: artifacts built this
/// run spill to disk, and a restarted campaign (same directory) serves
/// them back without re-simulating — the *durable-warm* property the
/// recovery drill proves.
pub fn run_campaign(spec: &CampaignSpec) -> Result<CampaignSummary, RunError> {
    let store = match &spec.store_dir {
        Some(dir) => ArtifactStore::persistent(dir, spec.store_budget, spec.telemetry.clone())
            .map_err(|e| RunError::Store(e.to_string()))?,
        None => ArtifactStore::new(),
    };
    run_campaign_with_store(spec, &Arc::new(store))
}

/// [`run_campaign`] over a caller-owned [`ArtifactStore`].
///
/// Cells share generated worlds, cone fanouts, profiles, baseline
/// simulations, and baseline oracle executions through the store, each
/// computed exactly once per key; fault-injected cells bypass it entirely
/// (they must neither consume pristine artifacts nor contribute corrupted
/// ones). Passing the same store to a second run makes it a *warm* run:
/// results are bit-identical, only faster — the bench harness measures
/// exactly this cold/warm pair.
pub fn run_campaign_with_store(
    spec: &CampaignSpec,
    store: &Arc<ArtifactStore>,
) -> Result<CampaignSummary, RunError> {
    // A planned fault that matches no grid cell is a spec typo: the
    // campaign would run clean while the caller believes it injected.
    for fault in &spec.faults {
        let matches_cell = spec
            .apps
            .iter()
            .any(|a| fault.app.eq_ignore_ascii_case(&a.name))
            && spec
                .schemes
                .iter()
                .any(|s| fault.scheme.eq_ignore_ascii_case(&s.name));
        if !matches_cell {
            return Err(RunError::Inject(format!(
                "planned fault targets no cell in the grid: `{}:{}`",
                fault.app, fault.scheme
            )));
        }
    }

    let grid: BTreeSet<(String, String)> = spec
        .apps
        .iter()
        .flat_map(|a| {
            spec.schemes
                .iter()
                .map(move |s| (a.name.clone(), s.name.clone()))
        })
        .collect();

    // Open the journal (creating it if absent). Opening runs recovery:
    // segments, checkpoints, and the active file are replayed with
    // per-line checksum verification, a torn final line (the process died
    // mid-write) is truncated away, and the checkpoint state is seeded
    // from every parseable record — grid-filtered or not — so a later
    // compaction can never silently drop out-of-grid history.
    let (journal, replayed) = match &spec.journal {
        Some(path) => {
            let (journal, replayed) =
                Journal::open(path, spec.segment_max_lines, spec.telemetry.clone())
                    .map_err(|e| RunError::Journal(e.to_string()))?;
            (Some(journal), Some(replayed))
        }
        None => (None, None),
    };

    // Resume from the replayed records. Only cells journaled Ok count as
    // finished work: failed/timed-out/panicked cells rerun (so resuming
    // after fixing a transient cause — e.g. a too-tight deadline — retries
    // them rather than re-reporting the stale failure). Replay already
    // deduped by cell key with the newest record winning; records for
    // cells outside the current grid are dropped here, so repeated or
    // re-scoped runs against the same journal cannot inflate the summary
    // past the grid size.
    let resumed_records: Vec<CellRecord> = match (&replayed, spec.resume) {
        (Some(replayed), true) => replayed
            .records
            .iter()
            .filter(|r| r.status == CellStatus::Ok && grid.contains(&r.key()))
            .cloned()
            .collect(),
        _ => Vec::new(),
    };
    let done: BTreeSet<(String, String)> = resumed_records.iter().map(CellRecord::key).collect();
    // Fold replayed cells' spans back into the campaign aggregate: the
    // telemetry trailer is recomputed from cell records on resume, so a
    // torn or absent trailer (the process died before appending it) still
    // yields a complete aggregate for the resumed run's own trailer.
    for record in &resumed_records {
        if let Some(spans) = &record.spans {
            spec.telemetry.absorb(spans);
        }
    }

    // Batched queue order: one work item per app (its fault-free cells
    // share a workbench — one base-trace decode per app), so the initial
    // wave of workers still seeds the store with every app's world and
    // baseline in parallel. Fault-injected cells, and every cell when the
    // per-cell isolation machinery is armed (systemic faults, per-attempt
    // deadlines), stay single items in scheme-major order (the summary is
    // still reported in app-major grid order below).
    let batchable = spec.sys.is_none() && spec.deadline.is_none();
    let mut items: VecDeque<WorkItem> = VecDeque::new();
    let mut singles: VecDeque<Cell> = VecDeque::new();
    for app in &spec.apps {
        let mut group: Vec<Cell> = Vec::new();
        for scheme in &spec.schemes {
            if done.contains(&(app.name.clone(), scheme.name.clone())) {
                continue;
            }
            let fault = spec
                .faults
                .iter()
                .find(|f| {
                    f.app.eq_ignore_ascii_case(&app.name)
                        && f.scheme.eq_ignore_ascii_case(&scheme.name)
                })
                .map(|f| (f.fault, f.seed));
            let cell = Cell {
                app: app.clone(),
                scheme: scheme.clone(),
                fault,
            };
            if batchable && fault.is_none() {
                group.push(cell);
            } else {
                singles.push_back(cell);
            }
        }
        if !group.is_empty() {
            items.push_back(WorkItem::Batch(group));
        }
    }
    // Singles after the batches, scheme-major across apps as before.
    let mut by_scheme: Vec<Cell> = singles.into();
    by_scheme.sort_by_key(|c| {
        spec.schemes
            .iter()
            .position(|s| s.name == c.scheme.name)
            .unwrap_or(usize::MAX)
    });
    items.extend(by_scheme.into_iter().map(|c| WorkItem::Single(Box::new(c))));

    let workers = if spec.workers > 0 {
        spec.workers
    } else {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
    .min(items.len().max(1));

    // Arm the store's systemic-fault tap for the duration of this run.
    // The guard below disarms it on every exit path so a caller-owned
    // store passed to a later (warm) campaign is clean again.
    if spec.sys.is_some() {
        store.set_sys_injector(spec.sys.clone());
    }

    let shutdown = AtomicBool::new(false);
    let breaker = Breaker::new(spec.supervision.breaker_threshold);
    let queue = Mutex::new(items);
    let fresh: Mutex<Vec<CellRecord>> = Mutex::new(Vec::new());
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // The guard is dropped before the loop body runs; holding
                // it across run_cell would serialize the workers.
                let next = || lock_clean(&queue).pop_front();
                // Shared post-cell bookkeeping for singles and batch
                // members alike: breaker accounting, systemic-fault tap,
                // journal append, record collection.
                let commit = |record: CellRecord| {
                    breaker.on_record(&record, &spec.telemetry);
                    if let Some(sys) = &spec.sys {
                        for fault in sys.advance_or_crash(SysOp::CellDone) {
                            spec.telemetry.event(EventKind::SysFault);
                            if fault == SysFault::Kill {
                                shutdown.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    if let Some(journal) = &journal {
                        // Journal full checksummed lines only; flush +
                        // fsync so a kill -9 (or power loss) loses at
                        // most the cell in flight, never an
                        // already-acknowledged one. Recovery truncates
                        // the torn tail such a kill can still leave.
                        journal.append_cell(&record, spec.sys.as_ref());
                    }
                    lock_clean(&fresh).push(record);
                };
                // Per-cell admission: graceful-shutdown drain and the
                // app circuit breaker, identical for both item kinds.
                let admit = |cell: &Cell| -> Result<(), Box<CellRecord>> {
                    if shutdown.load(Ordering::Relaxed) {
                        // Graceful shutdown: drain the queue with Shed
                        // records (in-flight siblings finish normally).
                        spec.telemetry.event(EventKind::Shed);
                        return Err(Box::new(shed_record(
                            cell,
                            "graceful shutdown: queue drained".to_string(),
                            spec.run_tag,
                        )));
                    }
                    match breaker.admit(&cell.app.name) {
                        BreakerDecision::Shed => {
                            spec.telemetry.event(EventKind::Shed);
                            Err(Box::new(shed_record(
                                cell,
                                format!("circuit breaker open for app `{}`", cell.app.name),
                                spec.run_tag,
                            )))
                        }
                        decision => {
                            if decision == BreakerDecision::Probe {
                                spec.telemetry.event(EventKind::Probe);
                            }
                            Ok(())
                        }
                    }
                };
                while let Some(item) = next() {
                    match item {
                        WorkItem::Single(cell) => {
                            let record = match admit(&cell) {
                                Err(shed) => *shed,
                                Ok(()) => {
                                    let (record, saw_store_write) = run_cell(&cell, spec, store);
                                    // The planted supervision bug the chaos
                                    // minimizer must isolate: a store-write
                                    // fault makes the worker drop the
                                    // finished record on the floor.
                                    if cfg!(feature = "chaos-planted-bug") && saw_store_write {
                                        continue;
                                    }
                                    record
                                }
                            };
                            commit(record);
                        }
                        WorkItem::Batch(cells) => {
                            // The app's shared workbench, built on first
                            // admitted cell; discarded if a cell errors
                            // (its fallback runs fully isolated).
                            let mut bench: Option<Workbench> = None;
                            for cell in cells {
                                let record = match admit(&cell) {
                                    Err(shed) => *shed,
                                    Ok(()) => run_batch_cell(&mut bench, &cell, spec, store),
                                };
                                commit(record);
                            }
                        }
                    }
                }
            });
        }
    });
    if spec.sys.is_some() {
        store.set_sys_injector(None);
    }
    let interrupted = shutdown.load(Ordering::Relaxed);

    let resumed = resumed_records.len();
    let mut records = resumed_records;
    records.extend(
        fresh
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    // Grid order, independent of worker interleaving.
    let order: Vec<(String, String)> = spec
        .apps
        .iter()
        .flat_map(|a| {
            spec.schemes
                .iter()
                .map(move |s| (a.name.clone(), s.name.clone()))
        })
        .collect();
    records.sort_by_key(|r| {
        order
            .iter()
            .position(|k| *k == r.key())
            .unwrap_or(usize::MAX)
    });
    let telemetry = spec.telemetry.snapshot();
    if let Some(journal) = &journal {
        // Trailers ride in the journal after the cell records — the
        // crash-safe aggregates. Their keys match no CellRecord field, so
        // resume skips them the same way it skips a torn tail; a resumed
        // run recomputes and appends fresh, complete trailers. The store
        // trailer (persistent stores only) goes first: downstream tooling
        // relies on the telemetry aggregate staying the last line.
        let store_stats = store.stats();
        if store_stats.disk.is_some() {
            let record = CampaignStoreRecord {
                campaign_store: store_stats,
            };
            if let Ok(line) = serde_json::to_string(&record) {
                journal.append_trailer(&line, spec.sys.as_ref());
            }
        }
        if let Some(snapshot) = &telemetry {
            let record = CampaignTelemetryRecord {
                campaign_telemetry: *snapshot,
            };
            if let Ok(line) = serde_json::to_string(&record) {
                journal.append_trailer(&line, spec.sys.as_ref());
            }
        }
    }
    Ok(CampaignSummary {
        records,
        resumed,
        telemetry,
        interrupted,
    })
}

/// Runs one cell with its retry budget; always returns a terminal record,
/// plus whether a [`SysFault::StoreWrite`] fired during the cell (the
/// planted-bug hook in the worker loop keys on it).
///
/// When campaign telemetry is enabled the cell gets a *private* recorder:
/// its spans/events are journaled on the record, then absorbed into the
/// campaign-wide aggregate, so concurrent cells never interleave into each
/// other's snapshots.
///
/// Between failed attempts the supervision policy applies: a deterministic
/// jittered exponential backoff, and (when `degrade` is set) one step down
/// the degradation ladder per failed attempt — drop validation, then drop
/// per-stage telemetry, then fall back to the baseline scheme — each step
/// counted as [`EventKind::Degrade`] and the final level recorded on the
/// cell so a degraded result is never mistaken for a full-fidelity one.
fn run_cell(cell: &Cell, spec: &CampaignSpec, store: &Arc<ArtifactStore>) -> (CellRecord, bool) {
    let telemetry = if spec.telemetry.is_enabled() {
        Telemetry::enabled()
    } else {
        Telemetry::off()
    };
    if cell.fault.is_some() {
        telemetry.event(EventKind::Fault);
    }
    let backoff =
        spec.supervision
            .backoff_schedule(&cell.app.name, &cell.scheme.name, spec.retries);
    let attempts_allowed = spec.retries + 1;
    let mut attempt = 0;
    let mut level: u8 = 0;
    let mut saw_store_write = false;
    loop {
        attempt += 1;
        let mut meter = None;
        let mut stall = None;
        if let Some(sys) = &spec.sys {
            for fault in sys.advance_or_crash(SysOp::AttemptStart) {
                telemetry.event(EventKind::SysFault);
                match fault {
                    SysFault::AllocBudget { bytes } => {
                        meter = Some(Arc::new(AllocMeter::new(bytes)))
                    }
                    SysFault::WorkerStall { millis } => stall = Some(Duration::from_millis(millis)),
                    _ => {}
                }
            }
        }
        let validate = spec.validate && level < 1;
        let attempt_telemetry = if level >= 2 {
            Telemetry::off()
        } else {
            telemetry.clone()
        };
        let fallback;
        let target = if level >= 3 {
            // Last rung: keep the cell's name (the grid key must stay
            // stable) but run the baseline design point.
            let mut cell = cell.clone();
            cell.scheme.point = DesignPoint::baseline();
            fallback = cell;
            &fallback
        } else {
            cell
        };
        let started = Instant::now();
        let result = run_attempt(
            target,
            spec.trace_len,
            validate,
            spec.deadline,
            store,
            &attempt_telemetry,
            meter,
            stall,
            spec.stream_window,
        );
        let millis = started.elapsed().as_millis() as u64;
        let fault = cell.fault.map(|(f, _)| f);
        if let Err(RunError::Sys(fault)) = &result {
            // Store faults surface here (the store has no access to the
            // cell's recorder); alloc-budget and stall faults were already
            // counted when the injector fired at attempt start.
            match fault {
                SysFault::StoreRead => telemetry.event(EventKind::SysFault),
                SysFault::StoreWrite => {
                    telemetry.event(EventKind::SysFault);
                    saw_store_write = true;
                }
                _ => {}
            }
        }
        let finish = |telemetry: &Telemetry| {
            let spans = telemetry.snapshot();
            if let Some(snapshot) = &spans {
                spec.telemetry.absorb(snapshot);
            }
            spans
        };
        let degraded = (level > 0).then_some(level);
        match result {
            Ok((metrics, validation)) => {
                return (
                    CellRecord {
                        app: cell.app.name.clone(),
                        scheme: cell.scheme.name.clone(),
                        status: CellStatus::Ok,
                        attempts: attempt,
                        millis,
                        fault,
                        metrics: Some(metrics),
                        error: None,
                        validation,
                        spans: finish(&telemetry),
                        degraded,
                        run: spec.run_tag,
                    },
                    saw_store_write,
                );
            }
            Err(error) if attempt >= attempts_allowed => {
                let status = match error {
                    RunError::Panic(_) => CellStatus::Panicked,
                    RunError::DeadlineExceeded { .. } => CellStatus::TimedOut,
                    _ => CellStatus::Failed,
                };
                return (
                    CellRecord {
                        app: cell.app.name.clone(),
                        scheme: cell.scheme.name.clone(),
                        status,
                        attempts: attempt,
                        millis,
                        fault,
                        metrics: None,
                        error: Some(error),
                        validation: None,
                        spans: finish(&telemetry),
                        degraded,
                        run: spec.run_tag,
                    },
                    saw_store_write,
                );
            }
            Err(_) => {
                telemetry.event(EventKind::Retry);
                if spec.supervision.degrade && level < 3 {
                    level += 1;
                    telemetry.event(EventKind::Degrade);
                }
                let delay = backoff.get((attempt - 1) as usize).copied().unwrap_or(0);
                if delay > 0 {
                    thread::sleep(Duration::from_millis(delay));
                }
                continue;
            }
        }
    }
}

/// One cell of an app batch: a single attempt over the batch's shared
/// [`Workbench`], so every scheme of the app reuses one base-trace decode
/// and one set of recycled simulator scratch/models.
///
/// Batch cells run only when the per-cell isolation machinery is idle (no
/// planned fault, no systemic injector, no per-attempt deadline — the
/// queue builder guarantees it), so the fast path needs no attempt thread.
/// Panic isolation still applies via [`isolate`]. On *any* failure —
/// typed error or trapped panic — the shared workbench is discarded (a
/// panic may have left it mid-update) and the cell falls back to the
/// fully isolated per-cell path ([`run_cell`]) with its complete
/// retry/degradation budget, so batch-mode failure semantics are a
/// superset of single-cell semantics.
///
/// Each cell still records its own private telemetry: its world-build
/// span re-reads the store-cached world (microseconds after the first
/// cell), and its sim spans cover the baseline fetch and the scheme run,
/// exactly like the single-cell path.
fn run_batch_cell(
    bench: &mut Option<Workbench>,
    cell: &Cell,
    spec: &CampaignSpec,
    store: &Arc<ArtifactStore>,
) -> CellRecord {
    debug_assert!(cell.fault.is_none() && spec.sys.is_none() && spec.deadline.is_none());
    let telemetry = if spec.telemetry.is_enabled() {
        Telemetry::enabled()
    } else {
        Telemetry::off()
    };
    let started = Instant::now();
    let label = format!("{}:{}", cell.app.name, cell.scheme.name);
    let attempt = isolate(&label, || -> Result<_, RunError> {
        let bench = match bench {
            Some(bench) => {
                // The world is already resident in the batch workbench; the
                // empty span still marks the stage so every record carries
                // the full per-phase breakdown.
                telemetry.time(SpanKind::WorldBuild, || ());
                bench
            }
            None => {
                let world = telemetry.time(SpanKind::WorldBuild, || {
                    store.world(&cell.app, spec.trace_len)
                })?;
                bench.insert(Workbench::from_world(&cell.app, world, Arc::clone(store)))
            }
        };
        bench.set_telemetry(telemetry.clone());
        bench.set_stream_window(spec.stream_window);
        let base = bench.try_run(&DesignPoint::baseline())?;
        let (outcome, validation) = if spec.validate {
            let (outcome, stats) =
                bench.try_run_validated(&cell.scheme.point, cell.app.path_seed())?;
            (outcome, Some(stats))
        } else {
            (bench.try_run(&cell.scheme.point)?, None)
        };
        Ok((
            CellMetrics {
                speedup: outcome.sim.speedup_over(&base.sim),
                cpu_energy_saving: outcome.energy.cpu_saving(&base.energy),
                thumb_dyn_frac: outcome.thumb_dyn_frac,
                dyn_insns: outcome.dyn_insns,
            },
            validation,
        ))
    });
    let millis = started.elapsed().as_millis() as u64;
    match attempt.and_then(|inner| inner) {
        Ok((metrics, validation)) => {
            let spans = telemetry.snapshot();
            if let Some(snapshot) = &spans {
                spec.telemetry.absorb(snapshot);
            }
            CellRecord {
                app: cell.app.name.clone(),
                scheme: cell.scheme.name.clone(),
                status: CellStatus::Ok,
                attempts: 1,
                millis,
                fault: None,
                metrics: Some(metrics),
                error: None,
                validation,
                spans,
                degraded: None,
                run: spec.run_tag,
            }
        }
        Err(_) => {
            // The failed batch attempt's recorder is dropped: the isolated
            // fallback records its own spans, and its record (with the
            // full retry accounting) is the one that stands.
            *bench = None;
            run_cell(cell, spec, store).0
        }
    }
}

/// One service-mode cell: a single attempt (the service retries nothing —
/// the *client* owns retry policy, steered by the record it gets back)
/// at an explicit degradation level, producing a terminal [`CellRecord`].
///
/// The level reuses the batch ladder's semantics: level >= 1 drops
/// validation, >= 2 drops per-cell telemetry, >= 3 runs the baseline
/// design point under the cell's scheme name. The level is stamped on the
/// record (`degraded`), so a shed-load result is never mistaken for a
/// full-fidelity one.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_service_attempt(
    app: &AppSpec,
    scheme: &Scheme,
    trace_len: usize,
    validate: bool,
    deadline: Option<Duration>,
    level: u8,
    stream_window: Option<usize>,
    store: &Arc<ArtifactStore>,
    aggregate: &Telemetry,
    sys: Option<&Arc<SysInjector>>,
    run_tag: Option<u64>,
) -> CellRecord {
    let cell = Cell {
        app: app.clone(),
        scheme: scheme.clone(),
        fault: None,
    };
    let telemetry = if aggregate.is_enabled() && level < 2 {
        Telemetry::enabled()
    } else {
        Telemetry::off()
    };
    let mut meter = None;
    let mut stall = None;
    if let Some(sys) = sys {
        for fault in sys.advance_or_crash(SysOp::AttemptStart) {
            aggregate.event(EventKind::SysFault);
            match fault {
                SysFault::AllocBudget { bytes } => meter = Some(Arc::new(AllocMeter::new(bytes))),
                SysFault::WorkerStall { millis } => stall = Some(Duration::from_millis(millis)),
                _ => {}
            }
        }
    }
    let validate = validate && level < 1;
    let fallback;
    let target = if level >= 3 {
        // Last rung: keep the cell's name (the journal key must stay
        // stable) but run the baseline design point.
        let mut cell = cell.clone();
        cell.scheme.point = DesignPoint::baseline();
        fallback = cell;
        &fallback
    } else {
        &cell
    };
    let started = Instant::now();
    let result = run_attempt(
        target,
        trace_len,
        validate,
        deadline,
        store,
        &telemetry,
        meter,
        stall,
        stream_window,
    );
    let millis = started.elapsed().as_millis() as u64;
    let spans = telemetry.snapshot();
    if let Some(snapshot) = &spans {
        aggregate.absorb(snapshot);
    }
    let degraded = (level > 0).then_some(level.min(3));
    match result {
        Ok((metrics, validation)) => CellRecord {
            app: cell.app.name.clone(),
            scheme: cell.scheme.name.clone(),
            status: CellStatus::Ok,
            attempts: 1,
            millis,
            fault: None,
            metrics: Some(metrics),
            error: None,
            validation,
            spans,
            degraded,
            run: run_tag,
        },
        Err(error) => {
            let status = match error {
                RunError::Panic(_) => CellStatus::Panicked,
                RunError::DeadlineExceeded { .. } => CellStatus::TimedOut,
                _ => CellStatus::Failed,
            };
            CellRecord {
                app: cell.app.name.clone(),
                scheme: cell.scheme.name.clone(),
                status,
                attempts: 1,
                millis,
                fault: None,
                metrics: None,
                error: Some(error),
                validation: None,
                spans,
                degraded,
                run: run_tag,
            }
        }
    }
}

/// One attempt, under the deadline if one is set. The body runs on its own
/// thread so a blown deadline abandons the attempt instead of blocking the
/// worker. On timeout the attempt's cancellation flag is raised; the
/// abandoned thread exits at the next checkpoint between pipeline stages
/// (generate / validate / trace / assemble / each simulated run) instead of
/// computing the whole cell in the background. The stage already in flight
/// runs to completion — cancellation is cooperative, not preemptive — so an
/// abandoned attempt can outlive its deadline by at most one stage.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    cell: &Cell,
    trace_len: usize,
    validate: bool,
    deadline: Option<Duration>,
    store: &Arc<ArtifactStore>,
    telemetry: &Telemetry,
    meter: Option<Arc<AllocMeter>>,
    stall: Option<Duration>,
    stream_window: Option<usize>,
) -> Result<(CellMetrics, Option<ValidationStats>), RunError> {
    match deadline {
        Some(deadline) => {
            let (tx, rx) = mpsc::channel();
            let cancel = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&cancel);
            let cell = cell.clone();
            let store = Arc::clone(store);
            let telemetry = telemetry.clone();
            thread::spawn(move || {
                // An injected worker stall burns attempt time *inside* the
                // deadline window: a long enough stall manifests as a
                // DeadlineExceeded, exactly like a wedged host thread.
                if let Some(stall) = stall {
                    thread::sleep(stall);
                }
                let _ = tx.send(run_isolated(
                    &cell,
                    trace_len,
                    validate,
                    &flag,
                    &store,
                    &telemetry,
                    meter.as_deref(),
                    stream_window,
                ));
            });
            match rx.recv_timeout(deadline) {
                Ok(result) => result,
                Err(_) => {
                    cancel.store(true, Ordering::Relaxed);
                    Err(RunError::DeadlineExceeded {
                        millis: deadline.as_millis() as u64,
                    })
                }
            }
        }
        None => {
            if let Some(stall) = stall {
                thread::sleep(stall);
            }
            run_isolated(
                cell,
                trace_len,
                validate,
                &AtomicBool::new(false),
                store,
                telemetry,
                meter.as_deref(),
                stream_window,
            )
        }
    }
}

/// The panic isolation boundary: a panic anywhere below becomes
/// [`RunError::Panic`].
#[allow(clippy::too_many_arguments)]
fn run_isolated(
    cell: &Cell,
    trace_len: usize,
    validate: bool,
    cancel: &AtomicBool,
    store: &Arc<ArtifactStore>,
    telemetry: &Telemetry,
    meter: Option<&AllocMeter>,
    stream_window: Option<usize>,
) -> Result<(CellMetrics, Option<ValidationStats>), RunError> {
    catch_unwind(AssertUnwindSafe(|| {
        run_cell_body(
            cell,
            trace_len,
            validate,
            cancel,
            store,
            telemetry,
            meter,
            stream_window,
        )
    }))
    .unwrap_or_else(|payload| Err(RunError::Panic(panic_message(payload))))
}

/// Returns early with [`RunError::Cancelled`] once the attempt has been
/// abandoned by its worker; the result is never observed, so the variant
/// only short-circuits the remaining stages.
fn checkpoint(cancel: &AtomicBool) -> Result<(), RunError> {
    if cancel.load(Ordering::Relaxed) {
        Err(RunError::Cancelled)
    } else {
        Ok(())
    }
}

/// The cell proper: generate (or fetch the shared world), inject the
/// planned fault (if any), validate, profile/compile/simulate baseline and
/// scheme, reduce to metrics.
#[allow(clippy::too_many_arguments)]
fn run_cell_body(
    cell: &Cell,
    trace_len: usize,
    validate: bool,
    cancel: &AtomicBool,
    store: &Arc<ArtifactStore>,
    telemetry: &Telemetry,
    meter: Option<&AllocMeter>,
    stream_window: Option<usize>,
) -> Result<(CellMetrics, Option<ValidationStats>), RunError> {
    // Charges against an injected per-attempt allocation budget. The
    // figures are the stages' dominant allocations in bytes — the expanded
    // trace (one ~64-byte record per dynamic instruction) and each
    // simulation's per-instruction bookkeeping — deterministic in
    // trace_len, so the same budget always fails at the same stage. Under
    // the streaming pipeline the attempt's expansion and simulation state
    // are rings sized to the window, not the trace, and the charges say so:
    // the same long-trace budget that kills a materialized attempt admits
    // a streamed one (asserted by `tests/stream_memory.rs`).
    let charge = |bytes: u64| -> Result<(), RunError> {
        match meter {
            Some(meter) => meter.charge(bytes),
            None => Ok(()),
        }
    };
    // Trace-targeted faults corrupt the materialized trace; the stream
    // would innocently re-expand (program, path) past the corruption, so
    // those cells stay on the materialized path.
    let stream_window = match cell.fault {
        Some((fault, _)) if fault.target() == FaultTarget::Trace => None,
        _ => stream_window,
    };
    // Dominant per-attempt bytes of one expansion and of one simulation's
    // bookkeeping under the active pipeline.
    let expansion_span = match stream_window {
        Some(window) => (window + DEFAULT_LOOKAHEAD).min(trace_len),
        None => trace_len,
    };
    let sim_span = match stream_window {
        Some(window) => window.min(trace_len),
        None => trace_len,
    };
    let app = &cell.app;
    let mut bench = if cell.fault.is_none() {
        // Clean cell: share the generated world (and downstream artifacts)
        // with every sibling cell of the app through the store.
        let world = telemetry.time(SpanKind::WorldBuild, || store.world(app, trace_len))?;
        checkpoint(cancel)?;
        Workbench::from_world(app, world, Arc::clone(store))
    } else {
        // Fault-injected cell: build everything privately. A corrupted
        // program/trace must never be published to the store, and even the
        // cell's *pristine* stages stay private so a fault drill measures
        // the uncached pipeline it is drilling.
        telemetry.time(SpanKind::WorldBuild, || {
            let mut program = app.generate_program();
            if let Some((fault, seed)) = cell.fault {
                if fault.target() == FaultTarget::Program {
                    inject_program(&mut program, fault, seed)
                        .map_err(|e| RunError::Inject(e.to_string()))?;
                }
            }
            // Validate before walking the CFG: path generation and trace
            // expansion index blocks by id and would panic on e.g. a
            // dangling terminator.
            program.validate()?;
            checkpoint(cancel)?;
            let path = ExecutionPath::generate(&program, app.path_seed(), trace_len);
            let mut trace = Trace::expand(&program, &path);
            if let Some((fault, seed)) = cell.fault {
                if fault.target() == FaultTarget::Trace {
                    inject_trace(&mut trace, fault, seed)
                        .map_err(|e| RunError::Inject(e.to_string()))?;
                }
            }
            checkpoint(cancel)?;
            Workbench::try_assemble(app, program, path, trace)
        })?
    };
    charge(expansion_span as u64 * 64)?;
    bench.set_telemetry(telemetry.clone());
    bench.set_stream_window(stream_window);
    if let Some((fault, seed)) = cell.fault {
        // Miscompile faults corrupt the *rewritten* variant, so they are
        // armed on the workbench: the baseline design point is never
        // injected (the oracle needs an honest reference), only the
        // scheme's variant is.
        if fault.target() == FaultTarget::Variant {
            bench.set_variant_fault(fault, seed);
        }
    }
    checkpoint(cancel)?;
    charge(sim_span as u64 * 16)?;
    let base = bench.try_run(&DesignPoint::baseline())?;
    checkpoint(cancel)?;
    charge(sim_span as u64 * 16)?;
    let (outcome, validation) = if validate {
        let (outcome, stats) = bench.try_run_validated(&cell.scheme.point, app.path_seed())?;
        (outcome, Some(stats))
    } else {
        (bench.try_run(&cell.scheme.point)?, None)
    };
    Ok((
        CellMetrics {
            speedup: outcome.sim.speedup_over(&base.sim),
            cpu_energy_saving: outcome.energy.cpu_saving(&base.energy),
            thumb_dyn_frac: outcome.thumb_dyn_frac,
            dyn_insns: outcome.dyn_insns,
        },
        validation,
    ))
}

/// Runs `f` behind the campaign's panic isolation boundary — the building
/// block the `figures` binary uses so one failing figure cannot abort the
/// whole regeneration.
pub fn isolate<T>(label: &str, f: impl FnOnce() -> T) -> Result<T, RunError> {
    catch_unwind(AssertUnwindSafe(f))
        .map_err(|payload| RunError::Panic(format!("{label}: {}", panic_message(payload))))
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The scheme set of the paper's Fig. 13 conversion-scheme comparison —
/// the default `critic campaign` grid.
pub fn default_schemes() -> Vec<Scheme> {
    vec![
        Scheme::new("hoist", DesignPoint::hoist()),
        Scheme::new("critic", DesignPoint::critic()),
        Scheme::new("ideal", DesignPoint::critic_ideal()),
        Scheme::new("branch-switch", DesignPoint::critic_branch_switch()),
        Scheme::new("opp16", DesignPoint::opp16()),
        Scheme::new("compress", DesignPoint::compress()),
        Scheme::new("opp16+critic", DesignPoint::opp16_plus_critic()),
    ]
}

#[cfg(test)]
mod tests {
    use std::fs::OpenOptions;
    use std::io::Write;

    use critic_workloads::{Suite, SysFaultSpec};

    use super::*;

    fn tiny_apps(n: usize) -> Vec<AppSpec> {
        Suite::Mobile
            .apps()
            .into_iter()
            .take(n)
            .map(|mut app| {
                app.params.num_functions = 24;
                app
            })
            .collect()
    }

    #[test]
    fn healthy_campaign_is_all_ok() {
        let spec = CampaignSpec::new(
            tiny_apps(2),
            vec![
                Scheme::new("critic", DesignPoint::critic()),
                Scheme::new("opp16", DesignPoint::opp16()),
            ],
            8_000,
        );
        let summary = run_campaign(&spec).expect("campaign runs");
        assert_eq!(summary.records.len(), 4);
        assert!(summary.all_ok(), "{}", summary.render());
        for r in &summary.records {
            let m = r.metrics.as_ref().expect("ok cell has metrics");
            assert!(m.dyn_insns > 0);
        }
    }

    #[test]
    fn injected_fault_fails_its_cell_and_only_its_cell() {
        let mut spec = CampaignSpec::new(
            tiny_apps(2),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        let victim = spec.apps[0].name.clone();
        spec.faults.push(PlannedFault {
            app: victim.clone(),
            scheme: "critic".into(),
            fault: Fault::DanglingTerminator,
            seed: 7,
        });
        let summary = run_campaign(&spec).expect("campaign survives the fault");
        assert_eq!(summary.records.len(), 2);
        let failed = summary.failed();
        assert_eq!(failed.len(), 1, "{}", summary.render());
        assert_eq!(failed[0].app, victim);
        assert_eq!(failed[0].status, CellStatus::Failed);
        assert!(matches!(failed[0].error, Some(RunError::Program(_))));
        assert!(!summary.all_ok());
    }

    #[test]
    fn isolate_traps_panics() {
        let ok = isolate("fine", || 7);
        assert_eq!(ok.expect("no panic"), 7);
        let err = isolate("boom", || -> u32 { panic!("injected panic") })
            .expect_err("panic must be trapped");
        match err {
            RunError::Panic(msg) => {
                assert!(
                    msg.contains("boom") && msg.contains("injected panic"),
                    "{msg}"
                );
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn deadline_times_the_cell_out() {
        let mut spec = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            200_000,
        );
        spec.deadline = Some(Duration::from_millis(1));
        let summary = run_campaign(&spec).expect("campaign runs");
        assert_eq!(summary.records.len(), 1);
        assert_eq!(summary.records[0].status, CellStatus::TimedOut);
        assert!(matches!(
            summary.records[0].error,
            Some(RunError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn retries_are_bounded_and_counted() {
        let mut spec = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.retries = 2;
        spec.faults.push(PlannedFault {
            app: spec.apps[0].name.clone(),
            scheme: "critic".into(),
            fault: Fault::DuplicateUid,
            seed: 3,
        });
        let summary = run_campaign(&spec).expect("campaign runs");
        assert_eq!(summary.records[0].attempts, 3, "retries + 1 attempts");
        assert_eq!(summary.records[0].status, CellStatus::Failed);
    }

    #[test]
    fn journal_checkpoints_and_resumes() {
        let dir = std::env::temp_dir().join("critic_campaign_test");
        let _ = std::fs::create_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);

        // First leg: one app only.
        let mut spec = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.journal = Some(journal.clone());
        let first = run_campaign(&spec).expect("first leg");
        assert!(first.all_ok());

        // Simulate a kill mid-write: append a torn line.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(&journal)
                .expect("journal opens");
            write!(f, "{{\"app\":\"torn").expect("append");
        }

        // Second leg: two apps, resuming — the journaled cell is skipped,
        // the torn line ignored, the new cell runs.
        let mut spec2 = CampaignSpec::new(
            tiny_apps(2),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec2.journal = Some(journal.clone());
        spec2.resume = true;
        let second = run_campaign(&spec2).expect("second leg");
        assert_eq!(second.records.len(), 2);
        assert_eq!(second.resumed, 1, "{}", second.render());
        assert!(second.all_ok());
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn resume_retries_failed_cells_and_dedupes_duplicates() {
        let dir = std::env::temp_dir().join("critic_campaign_resume_retry_test");
        let _ = std::fs::create_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);

        // First leg: the fault makes the only cell fail, and is journaled
        // twice (as if the campaign ran twice without --resume).
        let mut spec = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.journal = Some(journal.clone());
        spec.faults.push(PlannedFault {
            app: spec.apps[0].name.clone(),
            scheme: "critic".into(),
            fault: Fault::DanglingTerminator,
            seed: 7,
        });
        let first = run_campaign(&spec).expect("first leg");
        assert_eq!(first.failed().len(), 1);
        let _ = run_campaign(&spec).expect("duplicate leg");

        // Second leg: same grid, fault removed (the "transient cause" is
        // fixed), resuming. The failed cell must rerun — and succeed — not
        // be replayed; the duplicate journal lines must not inflate the
        // summary past the grid size.
        let mut spec2 = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec2.journal = Some(journal.clone());
        spec2.resume = true;
        let second = run_campaign(&spec2).expect("second leg");
        assert_eq!(second.records.len(), 1, "{}", second.render());
        assert_eq!(second.resumed, 0, "failed cells are retried, not replayed");
        assert!(second.all_ok(), "{}", second.render());

        // Third leg: everything is journaled Ok now, so resume replays it.
        let third = run_campaign(&spec2).expect("third leg");
        assert_eq!(third.records.len(), 1);
        assert_eq!(third.resumed, 1, "{}", third.render());
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn validated_campaign_demotes_miscompiled_cell_and_journals_stats() {
        let mut spec = CampaignSpec::new(
            tiny_apps(2),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.validate = true;
        let victim = spec.apps[0].name.clone();
        spec.faults.push(PlannedFault {
            app: victim.clone(),
            scheme: "critic".into(),
            fault: Fault::ClobberedDestination,
            seed: 33,
        });
        let summary = run_campaign(&spec).expect("campaign runs");
        assert!(
            summary.all_ok(),
            "demotion keeps the faulted cell alive: {}",
            summary.render()
        );
        assert!(summary.validation_failures().is_empty());
        for r in &summary.records {
            let stats = r.validation.expect("validated cells journal stats");
            assert!(stats.chains_checked > 0, "{}: no chains checked", r.app);
            assert_eq!(stats.failed, 0);
            if r.app == victim {
                assert!(
                    stats.chains_demoted >= 1,
                    "miscompile must demote: {}",
                    summary.render()
                );
            } else {
                assert_eq!(stats.chains_demoted, 0, "clean cell must not demote");
            }
        }
        let text = summary.render();
        assert!(text.contains("chains demoted"), "{text}");
    }

    #[test]
    fn unvalidated_campaign_swallows_the_same_miscompile() {
        let mut spec = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.faults.push(PlannedFault {
            app: spec.apps[0].name.clone(),
            scheme: "critic".into(),
            fault: Fault::ClobberedDestination,
            seed: 33,
        });
        let summary = run_campaign(&spec).expect("campaign runs");
        assert!(summary.all_ok(), "{}", summary.render());
        assert!(
            summary.records[0].validation.is_none(),
            "no oracle, no stats"
        );
    }

    #[test]
    fn journal_lines_without_validation_field_still_resume() {
        // A journal written before translation validation existed has no
        // `validation` key; resume must replay it as `validation: None`
        // rather than rejecting the whole line (which would silently rerun
        // finished work).
        let dir = std::env::temp_dir().join("critic_campaign_compat_test");
        let _ = std::fs::create_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let apps = tiny_apps(1);
        let line = format!(
            "{{\"app\":{:?},\"scheme\":\"critic\",\"status\":\"Ok\",\"attempts\":1,\
             \"millis\":5,\"fault\":null,\"metrics\":{{\"speedup\":1.1,\
             \"cpu_energy_saving\":0.2,\"thumb_dyn_frac\":0.5,\"dyn_insns\":8000}},\
             \"error\":null}}",
            apps[0].name
        );
        std::fs::write(&journal, format!("{line}\n")).expect("journal writes");

        let mut spec = CampaignSpec::new(
            apps,
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.journal = Some(journal.clone());
        spec.resume = true;
        let summary = run_campaign(&spec).expect("campaign runs");
        assert_eq!(
            summary.resumed,
            1,
            "pre-validation record replays: {}",
            summary.render()
        );
        assert_eq!(summary.records[0].validation, None);
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn summary_render_names_failed_cells() {
        let summary = CampaignSummary {
            records: vec![CellRecord {
                app: "acrobat".into(),
                scheme: "critic".into(),
                status: CellStatus::Panicked,
                attempts: 1,
                millis: 12,
                fault: Some(Fault::ScrambleBlock),
                metrics: None,
                error: Some(RunError::Panic("index out of bounds".into())),
                validation: None,
                spans: None,
                degraded: None,
                run: None,
            }],
            resumed: 0,
            telemetry: None,
            interrupted: false,
        };
        let text = summary.render();
        assert!(text.contains("PANICKED"), "{text}");
        assert!(text.contains("acrobat:critic"), "{text}");
        assert!(text.contains("1/1 cells FAILED"), "{text}");
    }

    /// The warm-store guarantee: re-running a campaign against an already
    /// populated store must change *nothing* about the results — speedups,
    /// energy savings, validation stats, and journal-visible fields are
    /// bit-identical; only `millis`/`attempts` (wall-clock artifacts) may
    /// differ. Includes a silently-miscompiled cell so the comparison also
    /// covers demotion stats, and checks the store actually served the
    /// warm run from cache.
    #[test]
    fn warm_store_campaign_is_bit_identical_to_cold() {
        let mut spec = CampaignSpec::new(
            tiny_apps(2),
            vec![
                Scheme::new("critic", DesignPoint::critic()),
                Scheme::new("opp16", DesignPoint::opp16()),
            ],
            8_000,
        );
        spec.validate = true;
        // A miscompile fault in one cell: it must neither poison the store
        // nor change the warm/cold equivalence of any cell.
        spec.faults.push(PlannedFault {
            app: spec.apps[1].name.clone(),
            scheme: "opp16".into(),
            fault: Fault::ClobberedDestination,
            seed: 11,
        });

        let store = Arc::new(ArtifactStore::new());
        let cold = run_campaign_with_store(&spec, &store).expect("cold run");
        let cold_stats = store.stats();
        let warm = run_campaign_with_store(&spec, &store).expect("warm run");
        let warm_stats = store.stats();

        assert_eq!(cold.records.len(), 4);
        assert_eq!(cold.records.len(), warm.records.len());
        for (c, w) in cold.records.iter().zip(&warm.records) {
            assert_eq!(c.app, w.app);
            assert_eq!(c.scheme, w.scheme);
            assert_eq!(c.status, w.status, "{}:{}", c.app, c.scheme);
            assert_eq!(c.fault, w.fault);
            // PartialEq on CellMetrics compares the f64s exactly: the warm
            // run must reproduce every bit of speedup/energy/thumb-frac.
            assert_eq!(c.metrics, w.metrics, "{}:{}", c.app, c.scheme);
            assert_eq!(c.error, w.error, "{}:{}", c.app, c.scheme);
            assert_eq!(c.validation, w.validation, "{}:{}", c.app, c.scheme);
        }

        // The cold run built each app's world exactly once; the warm run
        // built nothing new and was served from cache.
        assert_eq!(cold_stats.worlds_built, 2, "one world per app");
        assert_eq!(warm_stats.worlds_built, cold_stats.worlds_built);
        assert_eq!(warm_stats.profiles_built, cold_stats.profiles_built);
        assert_eq!(warm_stats.baselines_built, cold_stats.baselines_built);
        assert_eq!(
            warm_stats.baseline_execs_built,
            cold_stats.baseline_execs_built
        );
        assert!(
            warm_stats.hits > cold_stats.hits,
            "warm run must hit the store ({} -> {})",
            cold_stats.hits,
            warm_stats.hits
        );
    }

    /// The warm-pass telemetry guarantee: a second campaign over a
    /// populated store builds nothing and reports a 100% hit rate on the
    /// memoizable artifact classes.
    #[test]
    fn warm_pass_reports_full_hit_rate() {
        let mut spec = CampaignSpec::new(
            tiny_apps(2),
            vec![
                Scheme::new("critic", DesignPoint::critic()),
                Scheme::new("opp16", DesignPoint::opp16()),
            ],
            8_000,
        );
        spec.validate = true;
        let store = Arc::new(ArtifactStore::new());
        let _ = run_campaign_with_store(&spec, &store).expect("cold run");
        let cold_stats = store.stats();
        let _ = run_campaign_with_store(&spec, &store).expect("warm run");
        let warm_stats = store.stats();

        assert_eq!(
            warm_stats.built(),
            cold_stats.built(),
            "the warm pass must build nothing: {warm_stats:?}"
        );
        let warm_requests = warm_stats.requests() - cold_stats.requests();
        let warm_hits = warm_stats.hits - cold_stats.hits;
        assert!(warm_requests > 0, "the warm pass must use the store");
        assert_eq!(
            warm_hits, warm_requests,
            "every warm request is served from cache"
        );
        assert!(warm_stats.hit_rate() > cold_stats.hit_rate());
        assert_eq!(
            warm_stats.build_nanos, cold_stats.build_nanos,
            "no build latency accrues on the warm pass"
        );
    }

    /// Telemetry-enabled campaigns journal per-cell spans, aggregate them
    /// on the summary, append the aggregate as a trailing journal line —
    /// and that line must not confuse resume.
    #[test]
    fn telemetry_campaign_journals_spans_and_aggregate() {
        let dir = std::env::temp_dir().join("critic_campaign_telemetry_test");
        let _ = std::fs::create_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);

        let mut spec = CampaignSpec::new(
            tiny_apps(2),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.validate = true;
        spec.journal = Some(journal.clone());
        spec.telemetry = Telemetry::enabled();
        spec.faults.push(PlannedFault {
            app: spec.apps[0].name.clone(),
            scheme: "critic".into(),
            fault: Fault::ClobberedDestination,
            seed: 33,
        });
        let summary = run_campaign(&spec).expect("campaign runs");
        assert!(summary.all_ok(), "{}", summary.render());

        // Every fresh cell carries a snapshot with real work in it.
        for r in &summary.records {
            let spans = r.spans.expect("telemetry-enabled cells record spans");
            assert!(spans.world_build.count >= 1, "{}: {spans:?}", r.app);
            assert!(spans.sim.count >= 1, "{}: {spans:?}", r.app);
        }
        // The aggregate sums the cells: one Fault event for the injected
        // cell, at least one demotion from its miscompile.
        let aggregate = summary.telemetry.expect("campaign aggregate");
        assert_eq!(aggregate.faults, 1, "{aggregate:?}");
        assert!(aggregate.demotions >= 1, "{aggregate:?}");
        assert!(aggregate.sim.total_nanos > 0);
        let text = summary.render();
        assert!(text.contains("telemetry:"), "{text}");

        // The trailing aggregate line exists and round-trips.
        let content = std::fs::read_to_string(&journal).expect("journal readable");
        let last = content.lines().last().expect("journal non-empty");
        let parsed: CampaignTelemetryRecord =
            serde_json::from_str(last).expect("trailing line is the aggregate");
        assert_eq!(parsed.campaign_telemetry.faults, aggregate.faults);

        // Resume replays the cells and ignores the aggregate line.
        let mut resumed_spec = spec.clone();
        resumed_spec.resume = true;
        resumed_spec.faults.clear();
        let second = run_campaign(&resumed_spec).expect("resumed run");
        assert_eq!(second.records.len(), 2);
        assert_eq!(second.resumed, 2, "{}", second.render());
        let _ = std::fs::remove_file(&journal);
    }

    /// Telemetry must observe, never perturb: the same campaign with
    /// telemetry on and off produces bit-identical metrics.
    #[test]
    fn telemetry_does_not_perturb_results() {
        let mut off_spec = CampaignSpec::new(
            tiny_apps(1),
            vec![
                Scheme::new("critic", DesignPoint::critic()),
                Scheme::new("opp16", DesignPoint::opp16()),
            ],
            8_000,
        );
        off_spec.validate = true;
        off_spec.telemetry = Telemetry::off();
        let mut on_spec = off_spec.clone();
        on_spec.telemetry = Telemetry::enabled();

        let off = run_campaign(&off_spec).expect("telemetry-off run");
        let on = run_campaign(&on_spec).expect("telemetry-on run");
        assert!(off.telemetry.is_none());
        assert!(on.telemetry.is_some());
        for (a, b) in off.records.iter().zip(&on.records) {
            assert_eq!(a.metrics, b.metrics, "{}:{}", a.app, a.scheme);
            assert_eq!(a.validation, b.validation, "{}:{}", a.app, a.scheme);
            assert_eq!(a.status, b.status);
        }
    }

    /// Fault-injected cells bypass the store entirely: they must not consume
    /// shared artifacts (a drill measures the uncached pipeline) and must
    /// not contribute any (a corrupted program/trace would poison every
    /// sibling cell).
    #[test]
    fn fault_cells_never_touch_the_store() {
        let mut spec = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.validate = true;
        spec.faults.push(PlannedFault {
            app: spec.apps[0].name.clone(),
            scheme: "critic".into(),
            fault: Fault::ClobberedDestination,
            seed: 11,
        });
        let store = Arc::new(ArtifactStore::new());
        let summary = run_campaign_with_store(&spec, &store).expect("campaign runs");
        assert!(summary.all_ok(), "{}", summary.render());

        let stats = store.stats();
        assert_eq!(stats.worlds_built, 0);
        assert_eq!(stats.cones_built, 0);
        assert_eq!(stats.profiles_built, 0);
        assert_eq!(stats.baselines_built, 0);
        assert_eq!(stats.baseline_execs_built, 0);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let policy = SupervisionPolicy {
            backoff_base_millis: 10,
            backoff_cap_millis: 35,
            backoff_seed: 42,
            ..SupervisionPolicy::default()
        };
        let a = policy.backoff_schedule("acrobat", "critic", 5);
        let b = policy.backoff_schedule("acrobat", "critic", 5);
        assert_eq!(a, b, "same (seed, app, scheme) => same schedule");
        assert!(a.iter().all(|&d| d <= 35), "{a:?}");
        // Delays grow (until the cap flattens them) and stay >= delay/2.
        assert!(a[0] >= 5 && a[0] <= 10, "{a:?}");
        let other = policy.backoff_schedule("acrobat", "opp16", 5);
        assert_ne!(a, other, "different cells get decorrelated jitter");
        let off = SupervisionPolicy::default().backoff_schedule("acrobat", "critic", 3);
        assert_eq!(off, vec![0, 0, 0], "disabled policy sleeps nowhere");
    }

    #[test]
    fn alloc_meter_fails_the_charge_that_crosses_the_budget() {
        let meter = AllocMeter::new(100);
        assert!(meter.charge(60).is_ok());
        assert!(meter.charge(40).is_ok());
        match meter.charge(1) {
            Err(RunError::Sys(SysFault::AllocBudget { bytes })) => assert_eq!(bytes, 100),
            other => panic!("wrong result: {other:?}"),
        }
    }

    /// A store-read systemic fault fails exactly one attempt; the injector
    /// is consume-once, so the retry sees a healed store and succeeds.
    #[test]
    fn store_fault_fails_one_attempt_then_heals() {
        let mut spec = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.workers = 1;
        spec.retries = 1;
        spec.telemetry = Telemetry::enabled();
        spec.sys = Some(Arc::new(SysInjector::new(vec![SysFaultSpec {
            fault: SysFault::StoreRead,
            at: 0,
        }])));
        let summary = run_campaign(&spec).expect("campaign runs");
        assert!(summary.all_ok(), "{}", summary.render());
        assert_eq!(summary.records[0].attempts, 2, "{}", summary.render());
        let aggregate = summary.telemetry.expect("aggregate");
        assert_eq!(aggregate.supervision().sys_faults, 1, "{aggregate:?}");
        assert_eq!(aggregate.retries, 1, "{aggregate:?}");
    }

    /// An injected per-attempt allocation budget fails the first attempt
    /// as an OOM; with `degrade` set the retry walks one rung down the
    /// ladder and the record says so.
    #[test]
    fn alloc_budget_fault_degrades_then_recovers() {
        let mut spec = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.workers = 1;
        spec.retries = 1;
        spec.validate = true;
        spec.telemetry = Telemetry::enabled();
        spec.supervision.degrade = true;
        spec.sys = Some(Arc::new(SysInjector::new(vec![SysFaultSpec {
            fault: SysFault::AllocBudget { bytes: 1_000 },
            at: 0,
        }])));
        let summary = run_campaign(&spec).expect("campaign runs");
        assert!(summary.all_ok(), "{}", summary.render());
        let record = &summary.records[0];
        assert_eq!(record.attempts, 2);
        assert_eq!(record.degraded, Some(1), "ladder rung recorded");
        assert!(
            record.validation.is_none(),
            "level 1 drops validation: {record:?}"
        );
        let aggregate = summary.telemetry.expect("aggregate");
        assert_eq!(aggregate.supervision().degrades, 1, "{aggregate:?}");
        assert_eq!(aggregate.supervision().sys_faults, 1, "{aggregate:?}");
        let text = summary.render();
        assert!(text.contains("[degraded: level 1]"), "{text}");
    }

    /// A Kill systemic fault triggers graceful shutdown: in-flight work
    /// finishes, the rest of the queue drains as Shed records, nothing is
    /// silently dropped, and resume finishes the grid.
    #[test]
    fn kill_fault_drains_queue_with_shed_records_and_resumes() {
        let dir = std::env::temp_dir().join("critic_campaign_kill_test");
        let _ = std::fs::create_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);

        let mut spec = CampaignSpec::new(
            tiny_apps(2),
            vec![
                Scheme::new("critic", DesignPoint::critic()),
                Scheme::new("opp16", DesignPoint::opp16()),
            ],
            8_000,
        );
        spec.workers = 1;
        spec.journal = Some(journal.clone());
        spec.telemetry = Telemetry::enabled();
        spec.sys = Some(Arc::new(SysInjector::new(vec![SysFaultSpec {
            fault: SysFault::Kill,
            at: 0,
        }])));
        let summary = run_campaign(&spec).expect("campaign runs");
        assert!(summary.interrupted, "{}", summary.render());
        assert_eq!(summary.records.len(), 4, "every cell accounted");
        let shed = summary.shed();
        assert_eq!(shed.len(), 3, "{}", summary.render());
        for r in &shed {
            assert_eq!(r.attempts, 0);
            assert!(matches!(&r.error, Some(RunError::Shed(_))), "{r:?}");
        }
        let aggregate = summary.telemetry.expect("aggregate");
        assert_eq!(aggregate.supervision().sheds, 3, "{aggregate:?}");
        assert_eq!(aggregate.supervision().sys_faults, 1, "{aggregate:?}");
        let text = summary.render();
        assert!(text.contains("SHED"), "{text}");
        assert!(text.contains("graceful shutdown"), "{text}");

        // Resume (no injector): shed cells rerun, the finished one replays.
        let mut resumed_spec = spec.clone();
        resumed_spec.sys = None;
        resumed_spec.resume = true;
        let second = run_campaign(&resumed_spec).expect("resumed run");
        assert!(!second.interrupted);
        assert_eq!(second.records.len(), 4);
        assert_eq!(second.resumed, 1, "{}", second.render());
        assert!(second.all_ok(), "{}", second.render());
        let _ = std::fs::remove_file(&journal);
    }

    /// K consecutive terminal failures of one app trip its breaker; the
    /// next submission runs as the half-open probe (which fails here and
    /// silently re-opens), the one after that sheds with exactly one Trip
    /// event, and a healthy sibling app is untouched.
    #[test]
    fn breaker_trips_probes_and_sheds_remaining_cells_of_the_app() {
        let mut spec = CampaignSpec::new(
            tiny_apps(2),
            vec![
                Scheme::new("critic", DesignPoint::critic()),
                Scheme::new("opp16", DesignPoint::opp16()),
                Scheme::new("hoist", DesignPoint::hoist()),
                Scheme::new("ideal", DesignPoint::critic_ideal()),
            ],
            8_000,
        );
        spec.workers = 1;
        spec.telemetry = Telemetry::enabled();
        spec.supervision.breaker_threshold = 2;
        let victim = spec.apps[0].name.clone();
        for scheme in ["critic", "opp16", "hoist", "ideal"] {
            spec.faults.push(PlannedFault {
                app: victim.clone(),
                scheme: scheme.into(),
                fault: Fault::DanglingTerminator,
                seed: 7,
            });
        }
        let summary = run_campaign(&spec).expect("campaign runs");
        assert_eq!(summary.records.len(), 8, "every cell accounted");
        // Two failures trip the breaker; the third victim cell is the
        // half-open probe (runs, fails, re-opens — no second Trip).
        let failed: Vec<_> = summary
            .records
            .iter()
            .filter(|r| r.status == CellStatus::Failed)
            .collect();
        assert_eq!(failed.len(), 3, "{}", summary.render());
        let shed = summary.shed();
        assert_eq!(shed.len(), 1, "{}", summary.render());
        assert_eq!(shed[0].app, victim);
        assert!(
            matches!(&shed[0].error, Some(RunError::Shed(msg)) if msg.contains("breaker")),
            "{:?}",
            shed[0].error
        );
        // The healthy app's four cells all ran.
        let healthy_ok = summary
            .records
            .iter()
            .filter(|r| r.app != victim && r.status == CellStatus::Ok)
            .count();
        assert_eq!(healthy_ok, 4, "{}", summary.render());
        let aggregate = summary.telemetry.expect("aggregate");
        assert_eq!(aggregate.supervision().trips, 1, "{aggregate:?}");
        assert_eq!(aggregate.supervision().sheds, 1, "{aggregate:?}");
        assert_eq!(aggregate.service().probes, 1, "{aggregate:?}");
        assert_eq!(aggregate.service().resets, 0, "{aggregate:?}");
    }

    /// Journal-append systemic faults: a dropped line reruns its cell on
    /// resume, a torn line merges with (and invalidates) the next line,
    /// and both resumes still complete the grid — the journal-resumable
    /// invariant the chaos harness asserts.
    #[test]
    fn journal_faults_keep_the_journal_resumable() {
        let dir = std::env::temp_dir().join("critic_campaign_journal_fault_test");
        let _ = std::fs::create_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);

        let mut spec = CampaignSpec::new(
            tiny_apps(2),
            vec![
                Scheme::new("critic", DesignPoint::critic()),
                Scheme::new("opp16", DesignPoint::opp16()),
            ],
            8_000,
        );
        spec.workers = 1;
        spec.journal = Some(journal.clone());
        spec.sys = Some(Arc::new(SysInjector::new(vec![
            SysFaultSpec {
                fault: SysFault::JournalWrite,
                at: 0,
            },
            SysFaultSpec {
                fault: SysFault::JournalTorn,
                at: 1,
            },
        ])));
        let summary = run_campaign(&spec).expect("campaign runs");
        assert!(summary.all_ok(), "{}", summary.render());
        assert_eq!(summary.records.len(), 4);

        // The dropped line's cell and both halves of the torn merge are
        // missing from the journal; resume reruns exactly those.
        let mut resumed_spec = spec.clone();
        resumed_spec.sys = None;
        resumed_spec.resume = true;
        let second = run_campaign(&resumed_spec).expect("resumed run");
        assert!(second.all_ok(), "{}", second.render());
        assert_eq!(second.records.len(), 4, "grid completes after resume");
        assert!(second.resumed < 4, "faulted lines forced reruns");
        let _ = std::fs::remove_file(&journal);
    }
}
