//! The fault-tolerant campaign runner: an app × design-point grid with
//! per-cell panic isolation, deadlines, bounded retry, and a JSONL journal
//! for checkpoint/resume.
//!
//! A *campaign* evaluates every scheme of interest over every app of one
//! or more suites — the full-evaluation shape behind the paper's Figs. 10,
//! 11 and 13. One pathological cell (a generator edge case, a corrupted
//! profile, a runaway simulation) must not take the other 79 cells down
//! with it, so each cell runs behind [`std::panic::catch_unwind`] on its
//! own attempt thread, bounded by a per-attempt deadline and a retry
//! budget. Every finished cell is appended to a JSONL journal and the
//! journal is replayed on `--resume`, so a killed campaign continues where
//! it stopped instead of starting over.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use critic_obs::{EventKind, SpanKind, Telemetry, TelemetrySnapshot};
use critic_workloads::{
    inject_program, inject_trace, AppSpec, ExecutionPath, Fault, FaultTarget, Trace,
};
use serde::{Deserialize, Serialize};

use crate::design::DesignPoint;
use crate::error::RunError;
use crate::runner::{ValidationStats, Workbench};
use crate::store::ArtifactStore;

/// One named software/hardware configuration of the campaign grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scheme {
    /// Short stable name (journal key; e.g. `critic`, `opp16`).
    pub name: String,
    /// The design point it runs.
    pub point: DesignPoint,
}

impl Scheme {
    /// Convenience constructor.
    pub fn new(name: &str, point: DesignPoint) -> Scheme {
        Scheme {
            name: name.to_string(),
            point,
        }
    }
}

/// A fault to inject into one specific cell (for harness validation and
/// robustness drills).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedFault {
    /// App name the fault applies to (case-insensitive match).
    pub app: String,
    /// Scheme name the fault applies to.
    pub scheme: String,
    /// What to corrupt.
    pub fault: Fault,
    /// Seed steering the injection site.
    pub seed: u64,
}

/// The full description of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Apps to evaluate (rows of the grid).
    pub apps: Vec<AppSpec>,
    /// Schemes to evaluate (columns of the grid).
    pub schemes: Vec<Scheme>,
    /// Dynamic instructions per recorded execution.
    pub trace_len: usize,
    /// Per-attempt wall-clock budget; `None` disables the deadline.
    pub deadline: Option<Duration>,
    /// Extra attempts after the first failure (0 = fail fast).
    pub retries: u32,
    /// Worker threads; 0 picks the machine's parallelism.
    pub workers: usize,
    /// Faults to inject into specific cells.
    pub faults: Vec<PlannedFault>,
    /// JSONL journal path; `None` disables journaling (and resume).
    pub journal: Option<PathBuf>,
    /// Skip cells already journaled as [`CellStatus::Ok`]; failed,
    /// timed-out, and panicked cells are retried (their newest record
    /// supersedes the journaled one in the summary).
    pub resume: bool,
    /// Run every scheme cell through the translation-validation oracle
    /// ([`Workbench::try_run_validated`]): miscompiled chains are demoted
    /// and counted in the cell's [`ValidationStats`]; divergences that
    /// survive demotion fail the cell with [`RunError::Validation`].
    pub validate: bool,
    /// Campaign-wide telemetry sink. [`CampaignSpec::new`] seeds it from
    /// the `CRITIC_TELEMETRY` environment variable; when enabled, every
    /// cell records its stage spans into a private recorder (journaled on
    /// its [`CellRecord`]) and the campaign aggregate lands on the
    /// [`CampaignSummary`] and as a trailing journal line. When disabled
    /// (the default) the instrumented paths reduce to one branch per span.
    pub telemetry: Telemetry,
}

impl CampaignSpec {
    /// A campaign over `apps` × `schemes` with journaling and resume off,
    /// no deadline, no retries, and automatic worker count.
    pub fn new(apps: Vec<AppSpec>, schemes: Vec<Scheme>, trace_len: usize) -> CampaignSpec {
        CampaignSpec {
            apps,
            schemes,
            trace_len,
            deadline: None,
            retries: 0,
            workers: 0,
            faults: Vec::new(),
            journal: None,
            resume: false,
            validate: false,
            telemetry: Telemetry::from_env(),
        }
    }
}

/// Terminal status of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellStatus {
    /// The cell produced a result.
    Ok,
    /// Every attempt returned a typed error.
    Failed,
    /// Every attempt blew the deadline.
    TimedOut,
    /// The final attempt panicked (trapped at the isolation boundary).
    Panicked,
}

/// The metrics a successful cell contributes (the campaign-level subset of
/// [`RunOutcome`]; the full outcome stays in memory, not in the journal).
///
/// [`RunOutcome`]: crate::runner::RunOutcome
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellMetrics {
    /// Speedup over the same app's baseline run.
    pub speedup: f64,
    /// CPU energy saving vs baseline (fraction).
    pub cpu_energy_saving: f64,
    /// Fraction of dynamic instructions fetched 16-bit.
    pub thumb_dyn_frac: f64,
    /// Dynamic instructions executed.
    pub dyn_insns: usize,
}

/// One journaled cell: identity, terminal status, and either metrics or
/// the error that killed it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// App name.
    pub app: String,
    /// Scheme name.
    pub scheme: String,
    /// Terminal status.
    pub status: CellStatus,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Wall-clock of the final attempt, in milliseconds.
    pub millis: u64,
    /// Fault injected into this cell, if any.
    pub fault: Option<Fault>,
    /// Metrics, when `status == Ok`.
    pub metrics: Option<CellMetrics>,
    /// The final attempt's error, when `status != Ok`.
    pub error: Option<RunError>,
    /// Per-cell translation-validation stats, when the campaign ran with
    /// [`CampaignSpec::validate`]. Absent in journals written before
    /// validation existed (and when validation is off), so old journals
    /// still resume.
    pub validation: Option<ValidationStats>,
    /// Per-cell telemetry (stage spans and fault/retry/demotion events),
    /// when the campaign ran with telemetry enabled. Absent otherwise and
    /// in journals written before telemetry existed, so old journals still
    /// resume.
    pub spans: Option<TelemetrySnapshot>,
}

impl CellRecord {
    fn key(&self) -> (String, String) {
        (self.app.clone(), self.scheme.clone())
    }
}

/// Aggregate of a finished (or resumed-and-finished) campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Every cell of the grid, in (app, scheme) order, including cells
    /// replayed from the journal on resume.
    pub records: Vec<CellRecord>,
    /// Cells replayed from the journal rather than run this invocation.
    pub resumed: usize,
    /// Campaign-wide telemetry aggregate (the sum of every fresh cell's
    /// spans and events), when the campaign ran with telemetry enabled.
    pub telemetry: Option<TelemetrySnapshot>,
}

impl CampaignSummary {
    /// Cells that did not finish with [`CellStatus::Ok`].
    pub fn failed(&self) -> Vec<&CellRecord> {
        self.records
            .iter()
            .filter(|r| r.status != CellStatus::Ok)
            .collect()
    }

    /// Whether every cell succeeded.
    pub fn all_ok(&self) -> bool {
        self.records.iter().all(|r| r.status == CellStatus::Ok)
    }

    /// Cells whose final error was a translation-validation failure — a
    /// divergence the demotion loop could not attribute or resolve. The
    /// CLI maps a non-empty result to its dedicated exit code.
    pub fn validation_failures(&self) -> Vec<&CellRecord> {
        self.records
            .iter()
            .filter(|r| matches!(r.error, Some(RunError::Validation(_))))
            .collect()
    }

    /// Human-readable report: one line per cell plus a failure roll-up.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let tag = match r.status {
                CellStatus::Ok => "ok",
                CellStatus::Failed => "FAILED",
                CellStatus::TimedOut => "TIMEOUT",
                CellStatus::Panicked => "PANICKED",
            };
            let validation = match &r.validation {
                Some(v) if v.chains_demoted > 0 => {
                    format!(
                        "  [validated: {}/{} chains demoted]",
                        v.chains_demoted, v.chains_checked
                    )
                }
                Some(v) => format!("  [validated: {} chains]", v.chains_checked),
                None => String::new(),
            };
            match (&r.metrics, &r.error) {
                (Some(m), _) => out.push_str(&format!(
                    "  {:12} {:14} {:8} speedup {:+.2}%  thumb {:4.1}%  ({} ms{}){}\n",
                    r.app,
                    r.scheme,
                    tag,
                    (m.speedup - 1.0) * 100.0,
                    m.thumb_dyn_frac * 100.0,
                    r.millis,
                    if r.attempts > 1 {
                        format!(", {} attempts", r.attempts)
                    } else {
                        String::new()
                    },
                    validation,
                )),
                (None, Some(e)) => {
                    out.push_str(&format!("  {:12} {:14} {:8} {}\n", r.app, r.scheme, tag, e))
                }
                (None, None) => {
                    out.push_str(&format!("  {:12} {:14} {:8}\n", r.app, r.scheme, tag))
                }
            }
        }
        let failed = self.failed();
        if failed.is_empty() {
            out.push_str(&format!(
                "campaign complete: all {} cells ok",
                self.records.len()
            ));
        } else {
            out.push_str(&format!(
                "campaign complete: {}/{} cells FAILED:",
                failed.len(),
                self.records.len()
            ));
            for r in failed {
                out.push_str(&format!("\n  {}:{}", r.app, r.scheme));
            }
        }
        if self.resumed > 0 {
            out.push_str(&format!("\n({} cells resumed from journal)", self.resumed));
        }
        if let Some(telemetry) = &self.telemetry {
            out.push_str("\ntelemetry:\n");
            out.push_str(&telemetry.render());
        }
        out
    }
}

/// The trailing journal line a telemetry-enabled campaign appends after
/// its cell records: the campaign-wide aggregate under a key no
/// [`CellRecord`] has, so resume skips it and `critic stats` finds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignTelemetryRecord {
    /// The aggregate snapshot.
    pub campaign_telemetry: TelemetrySnapshot,
}

/// One unit of work: an app × scheme pair plus its planned fault.
#[derive(Debug, Clone)]
struct Cell {
    app: AppSpec,
    scheme: Scheme,
    fault: Option<(Fault, u64)>,
}

/// Runs the campaign to completion. Individual cell failures never abort
/// the grid; they are journaled and reported in the summary. The only
/// campaign-level error is an unusable journal.
pub fn run_campaign(spec: &CampaignSpec) -> Result<CampaignSummary, RunError> {
    run_campaign_with_store(spec, &Arc::new(ArtifactStore::new()))
}

/// [`run_campaign`] over a caller-owned [`ArtifactStore`].
///
/// Cells share generated worlds, cone fanouts, profiles, baseline
/// simulations, and baseline oracle executions through the store, each
/// computed exactly once per key; fault-injected cells bypass it entirely
/// (they must neither consume pristine artifacts nor contribute corrupted
/// ones). Passing the same store to a second run makes it a *warm* run:
/// results are bit-identical, only faster — the bench harness measures
/// exactly this cold/warm pair.
pub fn run_campaign_with_store(
    spec: &CampaignSpec,
    store: &Arc<ArtifactStore>,
) -> Result<CampaignSummary, RunError> {
    // A planned fault that matches no grid cell is a spec typo: the
    // campaign would run clean while the caller believes it injected.
    for fault in &spec.faults {
        let matches_cell = spec
            .apps
            .iter()
            .any(|a| fault.app.eq_ignore_ascii_case(&a.name))
            && spec
                .schemes
                .iter()
                .any(|s| fault.scheme.eq_ignore_ascii_case(&s.name));
        if !matches_cell {
            return Err(RunError::Inject(format!(
                "planned fault targets no cell in the grid: `{}:{}`",
                fault.app, fault.scheme
            )));
        }
    }

    let grid: BTreeSet<(String, String)> = spec
        .apps
        .iter()
        .flat_map(|a| {
            spec.schemes
                .iter()
                .map(move |s| (a.name.clone(), s.name.clone()))
        })
        .collect();

    // Replay the journal. Only cells journaled Ok count as finished work:
    // failed/timed-out/panicked cells rerun (so resuming after fixing a
    // transient cause — e.g. a too-tight deadline — retries them rather
    // than re-reporting the stale failure). Records are deduped by cell
    // key with the newest line winning, and records for cells outside the
    // current grid are dropped, so repeated or re-scoped runs against the
    // same journal cannot inflate the summary past the grid size.
    let mut replayed: BTreeMap<(String, String), CellRecord> = BTreeMap::new();
    if spec.resume {
        if let Some(path) = &spec.journal {
            if path.exists() {
                let file = File::open(path)
                    .map_err(|e| RunError::Journal(format!("{}: {e}", path.display())))?;
                for line in BufReader::new(file).lines() {
                    let line =
                        line.map_err(|e| RunError::Journal(format!("{}: {e}", path.display())))?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    // A torn final line (the process died mid-write) is
                    // expected after a kill; ignore it and rerun that cell.
                    if let Ok(record) = serde_json::from_str::<CellRecord>(&line) {
                        if grid.contains(&record.key()) {
                            replayed.insert(record.key(), record);
                        }
                    }
                }
            }
        }
    }
    let resumed_records: Vec<CellRecord> = replayed
        .into_values()
        .filter(|r| r.status == CellStatus::Ok)
        .collect();
    let done: BTreeSet<(String, String)> = resumed_records.iter().map(CellRecord::key).collect();

    let journal: Option<Mutex<File>> = match &spec.journal {
        Some(path) => Some(Mutex::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| RunError::Journal(format!("{}: {e}", path.display())))?,
        )),
        None => None,
    };

    // Scheme-major order: the first |apps| cells each touch a *different*
    // app, so the initial wave of workers seeds the store with every app's
    // world and baseline in parallel instead of piling up behind one
    // app's cold artifacts (the summary is still reported in app-major
    // grid order below).
    let mut cells: VecDeque<Cell> = VecDeque::new();
    for scheme in &spec.schemes {
        for app in &spec.apps {
            if done.contains(&(app.name.clone(), scheme.name.clone())) {
                continue;
            }
            let fault = spec
                .faults
                .iter()
                .find(|f| {
                    f.app.eq_ignore_ascii_case(&app.name)
                        && f.scheme.eq_ignore_ascii_case(&scheme.name)
                })
                .map(|f| (f.fault, f.seed));
            cells.push_back(Cell {
                app: app.clone(),
                scheme: scheme.clone(),
                fault,
            });
        }
    }

    let workers = if spec.workers > 0 {
        spec.workers
    } else {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
    .min(cells.len().max(1));

    let queue = Mutex::new(cells);
    let fresh: Mutex<Vec<CellRecord>> = Mutex::new(Vec::new());
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(cell) = queue.lock().ok().and_then(|mut q| q.pop_front()) {
                    let record = run_cell(&cell, spec, store);
                    if let Some(journal) = &journal {
                        if let Ok(mut file) = journal.lock() {
                            // Journal full lines only; flush + fsync so a
                            // kill -9 (or power loss) loses at most the
                            // cell in flight, never an already-reported
                            // one. Resume tolerates the torn tail such a
                            // kill can still leave.
                            if let Ok(line) = serde_json::to_string(&record) {
                                let _ = writeln!(file, "{line}");
                                let _ = file.flush();
                                let _ = file.sync_all();
                            }
                        }
                    }
                    if let Ok(mut records) = fresh.lock() {
                        records.push(record);
                    }
                }
            });
        }
    });

    let resumed = resumed_records.len();
    let mut records = resumed_records;
    records.extend(fresh.into_inner().unwrap_or_default());
    // Grid order, independent of worker interleaving.
    let order: Vec<(String, String)> = spec
        .apps
        .iter()
        .flat_map(|a| {
            spec.schemes
                .iter()
                .map(move |s| (a.name.clone(), s.name.clone()))
        })
        .collect();
    records.sort_by_key(|r| {
        order
            .iter()
            .position(|k| *k == r.key())
            .unwrap_or(usize::MAX)
    });
    let telemetry = spec.telemetry.snapshot();
    if let (Some(journal), Some(snapshot)) = (&journal, &telemetry) {
        // The aggregate rides in the journal after the cell records. Its
        // key matches no CellRecord field, so resume skips the line the
        // same way it skips a torn tail.
        if let Ok(mut file) = journal.lock() {
            let record = CampaignTelemetryRecord {
                campaign_telemetry: *snapshot,
            };
            if let Ok(line) = serde_json::to_string(&record) {
                let _ = writeln!(file, "{line}");
                let _ = file.flush();
                let _ = file.sync_all();
            }
        }
    }
    Ok(CampaignSummary {
        records,
        resumed,
        telemetry,
    })
}

/// Runs one cell with its retry budget; always returns a terminal record.
///
/// When campaign telemetry is enabled the cell gets a *private* recorder:
/// its spans/events are journaled on the record, then absorbed into the
/// campaign-wide aggregate, so concurrent cells never interleave into each
/// other's snapshots.
fn run_cell(cell: &Cell, spec: &CampaignSpec, store: &Arc<ArtifactStore>) -> CellRecord {
    let telemetry = if spec.telemetry.is_enabled() {
        Telemetry::enabled()
    } else {
        Telemetry::off()
    };
    if cell.fault.is_some() {
        telemetry.event(EventKind::Fault);
    }
    let attempts_allowed = spec.retries + 1;
    let mut attempt = 0;
    loop {
        attempt += 1;
        let started = Instant::now();
        let result = run_attempt(
            cell,
            spec.trace_len,
            spec.validate,
            spec.deadline,
            store,
            &telemetry,
        );
        let millis = started.elapsed().as_millis() as u64;
        let fault = cell.fault.map(|(f, _)| f);
        let finish = |telemetry: &Telemetry| {
            let spans = telemetry.snapshot();
            if let Some(snapshot) = &spans {
                spec.telemetry.absorb(snapshot);
            }
            spans
        };
        match result {
            Ok((metrics, validation)) => {
                return CellRecord {
                    app: cell.app.name.clone(),
                    scheme: cell.scheme.name.clone(),
                    status: CellStatus::Ok,
                    attempts: attempt,
                    millis,
                    fault,
                    metrics: Some(metrics),
                    error: None,
                    validation,
                    spans: finish(&telemetry),
                };
            }
            Err(error) if attempt >= attempts_allowed => {
                let status = match error {
                    RunError::Panic(_) => CellStatus::Panicked,
                    RunError::DeadlineExceeded { .. } => CellStatus::TimedOut,
                    _ => CellStatus::Failed,
                };
                return CellRecord {
                    app: cell.app.name.clone(),
                    scheme: cell.scheme.name.clone(),
                    status,
                    attempts: attempt,
                    millis,
                    fault,
                    metrics: None,
                    error: Some(error),
                    validation: None,
                    spans: finish(&telemetry),
                };
            }
            Err(_) => {
                telemetry.event(EventKind::Retry);
                continue;
            }
        }
    }
}

/// One attempt, under the deadline if one is set. The body runs on its own
/// thread so a blown deadline abandons the attempt instead of blocking the
/// worker. On timeout the attempt's cancellation flag is raised; the
/// abandoned thread exits at the next checkpoint between pipeline stages
/// (generate / validate / trace / assemble / each simulated run) instead of
/// computing the whole cell in the background. The stage already in flight
/// runs to completion — cancellation is cooperative, not preemptive — so an
/// abandoned attempt can outlive its deadline by at most one stage.
fn run_attempt(
    cell: &Cell,
    trace_len: usize,
    validate: bool,
    deadline: Option<Duration>,
    store: &Arc<ArtifactStore>,
    telemetry: &Telemetry,
) -> Result<(CellMetrics, Option<ValidationStats>), RunError> {
    match deadline {
        Some(deadline) => {
            let (tx, rx) = mpsc::channel();
            let cancel = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&cancel);
            let cell = cell.clone();
            let store = Arc::clone(store);
            let telemetry = telemetry.clone();
            thread::spawn(move || {
                let _ = tx.send(run_isolated(
                    &cell, trace_len, validate, &flag, &store, &telemetry,
                ));
            });
            match rx.recv_timeout(deadline) {
                Ok(result) => result,
                Err(_) => {
                    cancel.store(true, Ordering::Relaxed);
                    Err(RunError::DeadlineExceeded {
                        millis: deadline.as_millis() as u64,
                    })
                }
            }
        }
        None => run_isolated(
            cell,
            trace_len,
            validate,
            &AtomicBool::new(false),
            store,
            telemetry,
        ),
    }
}

/// The panic isolation boundary: a panic anywhere below becomes
/// [`RunError::Panic`].
fn run_isolated(
    cell: &Cell,
    trace_len: usize,
    validate: bool,
    cancel: &AtomicBool,
    store: &Arc<ArtifactStore>,
    telemetry: &Telemetry,
) -> Result<(CellMetrics, Option<ValidationStats>), RunError> {
    catch_unwind(AssertUnwindSafe(|| {
        run_cell_body(cell, trace_len, validate, cancel, store, telemetry)
    }))
    .unwrap_or_else(|payload| Err(RunError::Panic(panic_message(payload))))
}

/// Returns early with [`RunError::Cancelled`] once the attempt has been
/// abandoned by its worker; the result is never observed, so the variant
/// only short-circuits the remaining stages.
fn checkpoint(cancel: &AtomicBool) -> Result<(), RunError> {
    if cancel.load(Ordering::Relaxed) {
        Err(RunError::Cancelled)
    } else {
        Ok(())
    }
}

/// The cell proper: generate (or fetch the shared world), inject the
/// planned fault (if any), validate, profile/compile/simulate baseline and
/// scheme, reduce to metrics.
fn run_cell_body(
    cell: &Cell,
    trace_len: usize,
    validate: bool,
    cancel: &AtomicBool,
    store: &Arc<ArtifactStore>,
    telemetry: &Telemetry,
) -> Result<(CellMetrics, Option<ValidationStats>), RunError> {
    let app = &cell.app;
    let mut bench = if cell.fault.is_none() {
        // Clean cell: share the generated world (and downstream artifacts)
        // with every sibling cell of the app through the store.
        let world = telemetry.time(SpanKind::WorldBuild, || store.world(app, trace_len))?;
        checkpoint(cancel)?;
        Workbench::from_world(app, world, Arc::clone(store))
    } else {
        // Fault-injected cell: build everything privately. A corrupted
        // program/trace must never be published to the store, and even the
        // cell's *pristine* stages stay private so a fault drill measures
        // the uncached pipeline it is drilling.
        telemetry.time(SpanKind::WorldBuild, || {
            let mut program = app.generate_program();
            if let Some((fault, seed)) = cell.fault {
                if fault.target() == FaultTarget::Program {
                    inject_program(&mut program, fault, seed)
                        .map_err(|e| RunError::Inject(e.to_string()))?;
                }
            }
            // Validate before walking the CFG: path generation and trace
            // expansion index blocks by id and would panic on e.g. a
            // dangling terminator.
            program.validate()?;
            checkpoint(cancel)?;
            let path = ExecutionPath::generate(&program, app.path_seed(), trace_len);
            let mut trace = Trace::expand(&program, &path);
            if let Some((fault, seed)) = cell.fault {
                if fault.target() == FaultTarget::Trace {
                    inject_trace(&mut trace, fault, seed)
                        .map_err(|e| RunError::Inject(e.to_string()))?;
                }
            }
            checkpoint(cancel)?;
            Workbench::try_assemble(app, program, path, trace)
        })?
    };
    bench.set_telemetry(telemetry.clone());
    if let Some((fault, seed)) = cell.fault {
        // Miscompile faults corrupt the *rewritten* variant, so they are
        // armed on the workbench: the baseline design point is never
        // injected (the oracle needs an honest reference), only the
        // scheme's variant is.
        if fault.target() == FaultTarget::Variant {
            bench.set_variant_fault(fault, seed);
        }
    }
    checkpoint(cancel)?;
    let base = bench.try_run(&DesignPoint::baseline())?;
    checkpoint(cancel)?;
    let (outcome, validation) = if validate {
        let (outcome, stats) = bench.try_run_validated(&cell.scheme.point, app.path_seed())?;
        (outcome, Some(stats))
    } else {
        (bench.try_run(&cell.scheme.point)?, None)
    };
    Ok((
        CellMetrics {
            speedup: outcome.sim.speedup_over(&base.sim),
            cpu_energy_saving: outcome.energy.cpu_saving(&base.energy),
            thumb_dyn_frac: outcome.thumb_dyn_frac,
            dyn_insns: outcome.dyn_insns,
        },
        validation,
    ))
}

/// Runs `f` behind the campaign's panic isolation boundary — the building
/// block the `figures` binary uses so one failing figure cannot abort the
/// whole regeneration.
pub fn isolate<T>(label: &str, f: impl FnOnce() -> T) -> Result<T, RunError> {
    catch_unwind(AssertUnwindSafe(f))
        .map_err(|payload| RunError::Panic(format!("{label}: {}", panic_message(payload))))
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The scheme set of the paper's Fig. 13 conversion-scheme comparison —
/// the default `critic campaign` grid.
pub fn default_schemes() -> Vec<Scheme> {
    vec![
        Scheme::new("hoist", DesignPoint::hoist()),
        Scheme::new("critic", DesignPoint::critic()),
        Scheme::new("ideal", DesignPoint::critic_ideal()),
        Scheme::new("branch-switch", DesignPoint::critic_branch_switch()),
        Scheme::new("opp16", DesignPoint::opp16()),
        Scheme::new("compress", DesignPoint::compress()),
        Scheme::new("opp16+critic", DesignPoint::opp16_plus_critic()),
    ]
}

#[cfg(test)]
mod tests {
    use critic_workloads::Suite;

    use super::*;

    fn tiny_apps(n: usize) -> Vec<AppSpec> {
        Suite::Mobile
            .apps()
            .into_iter()
            .take(n)
            .map(|mut app| {
                app.params.num_functions = 24;
                app
            })
            .collect()
    }

    #[test]
    fn healthy_campaign_is_all_ok() {
        let spec = CampaignSpec::new(
            tiny_apps(2),
            vec![
                Scheme::new("critic", DesignPoint::critic()),
                Scheme::new("opp16", DesignPoint::opp16()),
            ],
            8_000,
        );
        let summary = run_campaign(&spec).expect("campaign runs");
        assert_eq!(summary.records.len(), 4);
        assert!(summary.all_ok(), "{}", summary.render());
        for r in &summary.records {
            let m = r.metrics.as_ref().expect("ok cell has metrics");
            assert!(m.dyn_insns > 0);
        }
    }

    #[test]
    fn injected_fault_fails_its_cell_and_only_its_cell() {
        let mut spec = CampaignSpec::new(
            tiny_apps(2),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        let victim = spec.apps[0].name.clone();
        spec.faults.push(PlannedFault {
            app: victim.clone(),
            scheme: "critic".into(),
            fault: Fault::DanglingTerminator,
            seed: 7,
        });
        let summary = run_campaign(&spec).expect("campaign survives the fault");
        assert_eq!(summary.records.len(), 2);
        let failed = summary.failed();
        assert_eq!(failed.len(), 1, "{}", summary.render());
        assert_eq!(failed[0].app, victim);
        assert_eq!(failed[0].status, CellStatus::Failed);
        assert!(matches!(failed[0].error, Some(RunError::Program(_))));
        assert!(!summary.all_ok());
    }

    #[test]
    fn isolate_traps_panics() {
        let ok = isolate("fine", || 7);
        assert_eq!(ok.expect("no panic"), 7);
        let err = isolate("boom", || -> u32 { panic!("injected panic") })
            .expect_err("panic must be trapped");
        match err {
            RunError::Panic(msg) => {
                assert!(
                    msg.contains("boom") && msg.contains("injected panic"),
                    "{msg}"
                );
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn deadline_times_the_cell_out() {
        let mut spec = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            200_000,
        );
        spec.deadline = Some(Duration::from_millis(1));
        let summary = run_campaign(&spec).expect("campaign runs");
        assert_eq!(summary.records.len(), 1);
        assert_eq!(summary.records[0].status, CellStatus::TimedOut);
        assert!(matches!(
            summary.records[0].error,
            Some(RunError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn retries_are_bounded_and_counted() {
        let mut spec = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.retries = 2;
        spec.faults.push(PlannedFault {
            app: spec.apps[0].name.clone(),
            scheme: "critic".into(),
            fault: Fault::DuplicateUid,
            seed: 3,
        });
        let summary = run_campaign(&spec).expect("campaign runs");
        assert_eq!(summary.records[0].attempts, 3, "retries + 1 attempts");
        assert_eq!(summary.records[0].status, CellStatus::Failed);
    }

    #[test]
    fn journal_checkpoints_and_resumes() {
        let dir = std::env::temp_dir().join("critic_campaign_test");
        let _ = std::fs::create_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);

        // First leg: one app only.
        let mut spec = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.journal = Some(journal.clone());
        let first = run_campaign(&spec).expect("first leg");
        assert!(first.all_ok());

        // Simulate a kill mid-write: append a torn line.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(&journal)
                .expect("journal opens");
            write!(f, "{{\"app\":\"torn").expect("append");
        }

        // Second leg: two apps, resuming — the journaled cell is skipped,
        // the torn line ignored, the new cell runs.
        let mut spec2 = CampaignSpec::new(
            tiny_apps(2),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec2.journal = Some(journal.clone());
        spec2.resume = true;
        let second = run_campaign(&spec2).expect("second leg");
        assert_eq!(second.records.len(), 2);
        assert_eq!(second.resumed, 1, "{}", second.render());
        assert!(second.all_ok());
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn resume_retries_failed_cells_and_dedupes_duplicates() {
        let dir = std::env::temp_dir().join("critic_campaign_resume_retry_test");
        let _ = std::fs::create_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);

        // First leg: the fault makes the only cell fail, and is journaled
        // twice (as if the campaign ran twice without --resume).
        let mut spec = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.journal = Some(journal.clone());
        spec.faults.push(PlannedFault {
            app: spec.apps[0].name.clone(),
            scheme: "critic".into(),
            fault: Fault::DanglingTerminator,
            seed: 7,
        });
        let first = run_campaign(&spec).expect("first leg");
        assert_eq!(first.failed().len(), 1);
        let _ = run_campaign(&spec).expect("duplicate leg");

        // Second leg: same grid, fault removed (the "transient cause" is
        // fixed), resuming. The failed cell must rerun — and succeed — not
        // be replayed; the duplicate journal lines must not inflate the
        // summary past the grid size.
        let mut spec2 = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec2.journal = Some(journal.clone());
        spec2.resume = true;
        let second = run_campaign(&spec2).expect("second leg");
        assert_eq!(second.records.len(), 1, "{}", second.render());
        assert_eq!(second.resumed, 0, "failed cells are retried, not replayed");
        assert!(second.all_ok(), "{}", second.render());

        // Third leg: everything is journaled Ok now, so resume replays it.
        let third = run_campaign(&spec2).expect("third leg");
        assert_eq!(third.records.len(), 1);
        assert_eq!(third.resumed, 1, "{}", third.render());
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn validated_campaign_demotes_miscompiled_cell_and_journals_stats() {
        let mut spec = CampaignSpec::new(
            tiny_apps(2),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.validate = true;
        let victim = spec.apps[0].name.clone();
        spec.faults.push(PlannedFault {
            app: victim.clone(),
            scheme: "critic".into(),
            fault: Fault::ClobberedDestination,
            seed: 33,
        });
        let summary = run_campaign(&spec).expect("campaign runs");
        assert!(
            summary.all_ok(),
            "demotion keeps the faulted cell alive: {}",
            summary.render()
        );
        assert!(summary.validation_failures().is_empty());
        for r in &summary.records {
            let stats = r.validation.expect("validated cells journal stats");
            assert!(stats.chains_checked > 0, "{}: no chains checked", r.app);
            assert_eq!(stats.failed, 0);
            if r.app == victim {
                assert!(
                    stats.chains_demoted >= 1,
                    "miscompile must demote: {}",
                    summary.render()
                );
            } else {
                assert_eq!(stats.chains_demoted, 0, "clean cell must not demote");
            }
        }
        let text = summary.render();
        assert!(text.contains("chains demoted"), "{text}");
    }

    #[test]
    fn unvalidated_campaign_swallows_the_same_miscompile() {
        let mut spec = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.faults.push(PlannedFault {
            app: spec.apps[0].name.clone(),
            scheme: "critic".into(),
            fault: Fault::ClobberedDestination,
            seed: 33,
        });
        let summary = run_campaign(&spec).expect("campaign runs");
        assert!(summary.all_ok(), "{}", summary.render());
        assert!(
            summary.records[0].validation.is_none(),
            "no oracle, no stats"
        );
    }

    #[test]
    fn journal_lines_without_validation_field_still_resume() {
        // A journal written before translation validation existed has no
        // `validation` key; resume must replay it as `validation: None`
        // rather than rejecting the whole line (which would silently rerun
        // finished work).
        let dir = std::env::temp_dir().join("critic_campaign_compat_test");
        let _ = std::fs::create_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let apps = tiny_apps(1);
        let line = format!(
            "{{\"app\":{:?},\"scheme\":\"critic\",\"status\":\"Ok\",\"attempts\":1,\
             \"millis\":5,\"fault\":null,\"metrics\":{{\"speedup\":1.1,\
             \"cpu_energy_saving\":0.2,\"thumb_dyn_frac\":0.5,\"dyn_insns\":8000}},\
             \"error\":null}}",
            apps[0].name
        );
        std::fs::write(&journal, format!("{line}\n")).expect("journal writes");

        let mut spec = CampaignSpec::new(
            apps,
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.journal = Some(journal.clone());
        spec.resume = true;
        let summary = run_campaign(&spec).expect("campaign runs");
        assert_eq!(
            summary.resumed,
            1,
            "pre-validation record replays: {}",
            summary.render()
        );
        assert_eq!(summary.records[0].validation, None);
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn summary_render_names_failed_cells() {
        let summary = CampaignSummary {
            records: vec![CellRecord {
                app: "acrobat".into(),
                scheme: "critic".into(),
                status: CellStatus::Panicked,
                attempts: 1,
                millis: 12,
                fault: Some(Fault::ScrambleBlock),
                metrics: None,
                error: Some(RunError::Panic("index out of bounds".into())),
                validation: None,
                spans: None,
            }],
            resumed: 0,
            telemetry: None,
        };
        let text = summary.render();
        assert!(text.contains("PANICKED"), "{text}");
        assert!(text.contains("acrobat:critic"), "{text}");
        assert!(text.contains("1/1 cells FAILED"), "{text}");
    }

    /// The warm-store guarantee: re-running a campaign against an already
    /// populated store must change *nothing* about the results — speedups,
    /// energy savings, validation stats, and journal-visible fields are
    /// bit-identical; only `millis`/`attempts` (wall-clock artifacts) may
    /// differ. Includes a silently-miscompiled cell so the comparison also
    /// covers demotion stats, and checks the store actually served the
    /// warm run from cache.
    #[test]
    fn warm_store_campaign_is_bit_identical_to_cold() {
        let mut spec = CampaignSpec::new(
            tiny_apps(2),
            vec![
                Scheme::new("critic", DesignPoint::critic()),
                Scheme::new("opp16", DesignPoint::opp16()),
            ],
            8_000,
        );
        spec.validate = true;
        // A miscompile fault in one cell: it must neither poison the store
        // nor change the warm/cold equivalence of any cell.
        spec.faults.push(PlannedFault {
            app: spec.apps[1].name.clone(),
            scheme: "opp16".into(),
            fault: Fault::ClobberedDestination,
            seed: 11,
        });

        let store = Arc::new(ArtifactStore::new());
        let cold = run_campaign_with_store(&spec, &store).expect("cold run");
        let cold_stats = store.stats();
        let warm = run_campaign_with_store(&spec, &store).expect("warm run");
        let warm_stats = store.stats();

        assert_eq!(cold.records.len(), 4);
        assert_eq!(cold.records.len(), warm.records.len());
        for (c, w) in cold.records.iter().zip(&warm.records) {
            assert_eq!(c.app, w.app);
            assert_eq!(c.scheme, w.scheme);
            assert_eq!(c.status, w.status, "{}:{}", c.app, c.scheme);
            assert_eq!(c.fault, w.fault);
            // PartialEq on CellMetrics compares the f64s exactly: the warm
            // run must reproduce every bit of speedup/energy/thumb-frac.
            assert_eq!(c.metrics, w.metrics, "{}:{}", c.app, c.scheme);
            assert_eq!(c.error, w.error, "{}:{}", c.app, c.scheme);
            assert_eq!(c.validation, w.validation, "{}:{}", c.app, c.scheme);
        }

        // The cold run built each app's world exactly once; the warm run
        // built nothing new and was served from cache.
        assert_eq!(cold_stats.worlds_built, 2, "one world per app");
        assert_eq!(warm_stats.worlds_built, cold_stats.worlds_built);
        assert_eq!(warm_stats.profiles_built, cold_stats.profiles_built);
        assert_eq!(warm_stats.baselines_built, cold_stats.baselines_built);
        assert_eq!(
            warm_stats.baseline_execs_built,
            cold_stats.baseline_execs_built
        );
        assert!(
            warm_stats.hits > cold_stats.hits,
            "warm run must hit the store ({} -> {})",
            cold_stats.hits,
            warm_stats.hits
        );
    }

    /// The warm-pass telemetry guarantee: a second campaign over a
    /// populated store builds nothing and reports a 100% hit rate on the
    /// memoizable artifact classes.
    #[test]
    fn warm_pass_reports_full_hit_rate() {
        let mut spec = CampaignSpec::new(
            tiny_apps(2),
            vec![
                Scheme::new("critic", DesignPoint::critic()),
                Scheme::new("opp16", DesignPoint::opp16()),
            ],
            8_000,
        );
        spec.validate = true;
        let store = Arc::new(ArtifactStore::new());
        let _ = run_campaign_with_store(&spec, &store).expect("cold run");
        let cold_stats = store.stats();
        let _ = run_campaign_with_store(&spec, &store).expect("warm run");
        let warm_stats = store.stats();

        assert_eq!(
            warm_stats.built(),
            cold_stats.built(),
            "the warm pass must build nothing: {warm_stats:?}"
        );
        let warm_requests = warm_stats.requests() - cold_stats.requests();
        let warm_hits = warm_stats.hits - cold_stats.hits;
        assert!(warm_requests > 0, "the warm pass must use the store");
        assert_eq!(
            warm_hits, warm_requests,
            "every warm request is served from cache"
        );
        assert!(warm_stats.hit_rate() > cold_stats.hit_rate());
        assert_eq!(
            warm_stats.build_nanos, cold_stats.build_nanos,
            "no build latency accrues on the warm pass"
        );
    }

    /// Telemetry-enabled campaigns journal per-cell spans, aggregate them
    /// on the summary, append the aggregate as a trailing journal line —
    /// and that line must not confuse resume.
    #[test]
    fn telemetry_campaign_journals_spans_and_aggregate() {
        let dir = std::env::temp_dir().join("critic_campaign_telemetry_test");
        let _ = std::fs::create_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);

        let mut spec = CampaignSpec::new(
            tiny_apps(2),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.validate = true;
        spec.journal = Some(journal.clone());
        spec.telemetry = Telemetry::enabled();
        spec.faults.push(PlannedFault {
            app: spec.apps[0].name.clone(),
            scheme: "critic".into(),
            fault: Fault::ClobberedDestination,
            seed: 33,
        });
        let summary = run_campaign(&spec).expect("campaign runs");
        assert!(summary.all_ok(), "{}", summary.render());

        // Every fresh cell carries a snapshot with real work in it.
        for r in &summary.records {
            let spans = r.spans.expect("telemetry-enabled cells record spans");
            assert!(spans.world_build.count >= 1, "{}: {spans:?}", r.app);
            assert!(spans.sim.count >= 1, "{}: {spans:?}", r.app);
        }
        // The aggregate sums the cells: one Fault event for the injected
        // cell, at least one demotion from its miscompile.
        let aggregate = summary.telemetry.expect("campaign aggregate");
        assert_eq!(aggregate.faults, 1, "{aggregate:?}");
        assert!(aggregate.demotions >= 1, "{aggregate:?}");
        assert!(aggregate.sim.total_nanos > 0);
        let text = summary.render();
        assert!(text.contains("telemetry:"), "{text}");

        // The trailing aggregate line exists and round-trips.
        let content = std::fs::read_to_string(&journal).expect("journal readable");
        let last = content.lines().last().expect("journal non-empty");
        let parsed: CampaignTelemetryRecord =
            serde_json::from_str(last).expect("trailing line is the aggregate");
        assert_eq!(parsed.campaign_telemetry.faults, aggregate.faults);

        // Resume replays the cells and ignores the aggregate line.
        let mut resumed_spec = spec.clone();
        resumed_spec.resume = true;
        resumed_spec.faults.clear();
        let second = run_campaign(&resumed_spec).expect("resumed run");
        assert_eq!(second.records.len(), 2);
        assert_eq!(second.resumed, 2, "{}", second.render());
        let _ = std::fs::remove_file(&journal);
    }

    /// Telemetry must observe, never perturb: the same campaign with
    /// telemetry on and off produces bit-identical metrics.
    #[test]
    fn telemetry_does_not_perturb_results() {
        let mut off_spec = CampaignSpec::new(
            tiny_apps(1),
            vec![
                Scheme::new("critic", DesignPoint::critic()),
                Scheme::new("opp16", DesignPoint::opp16()),
            ],
            8_000,
        );
        off_spec.validate = true;
        off_spec.telemetry = Telemetry::off();
        let mut on_spec = off_spec.clone();
        on_spec.telemetry = Telemetry::enabled();

        let off = run_campaign(&off_spec).expect("telemetry-off run");
        let on = run_campaign(&on_spec).expect("telemetry-on run");
        assert!(off.telemetry.is_none());
        assert!(on.telemetry.is_some());
        for (a, b) in off.records.iter().zip(&on.records) {
            assert_eq!(a.metrics, b.metrics, "{}:{}", a.app, a.scheme);
            assert_eq!(a.validation, b.validation, "{}:{}", a.app, a.scheme);
            assert_eq!(a.status, b.status);
        }
    }

    /// Fault-injected cells bypass the store entirely: they must not consume
    /// shared artifacts (a drill measures the uncached pipeline) and must
    /// not contribute any (a corrupted program/trace would poison every
    /// sibling cell).
    #[test]
    fn fault_cells_never_touch_the_store() {
        let mut spec = CampaignSpec::new(
            tiny_apps(1),
            vec![Scheme::new("critic", DesignPoint::critic())],
            8_000,
        );
        spec.validate = true;
        spec.faults.push(PlannedFault {
            app: spec.apps[0].name.clone(),
            scheme: "critic".into(),
            fault: Fault::ClobberedDestination,
            seed: 11,
        });
        let store = Arc::new(ArtifactStore::new());
        let summary = run_campaign_with_store(&spec, &store).expect("campaign runs");
        assert!(summary.all_ok(), "{}", summary.render());

        let stats = store.stats();
        assert_eq!(stats.worlds_built, 0);
        assert_eq!(stats.cones_built, 0);
        assert_eq!(stats.profiles_built, 0);
        assert_eq!(stats.baselines_built, 0);
        assert_eq!(stats.baseline_execs_built, 0);
        assert_eq!(stats.hits, 0);
    }
}
