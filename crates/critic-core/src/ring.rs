//! The consistent-hash ring behind `critic router`: places every
//! (app, scheme) cell on one of N shards, stays stable when shards come
//! and go, and gives the router a deterministic successor order for
//! failover and peer rebuild.
//!
//! Requirements, in order:
//!
//! 1. **Deterministic across processes.** The router and every shard must
//!    agree on placement without talking to each other, so both point and
//!    key hashes derive from [`crate::keys::stable_key`] — the versioned
//!    canonical encoding the persistent store is already addressed by —
//!    finished through a fixed 64-bit mixer. No process-local state, no
//!    randomness.
//! 2. **Balanced.** Each shard owns `vnodes` points on the circle
//!    (default [`DEFAULT_VNODES`]), which bounds the load imbalance at
//!    roughly `1/sqrt(vnodes)` of the mean — property-tested.
//! 3. **Minimal disruption.** Adding a shard moves only the keys the new
//!    shard now owns (~`1/(N+1)` of the space); removing one moves only
//!    the keys it owned. Both are exact properties of the structure, not
//!    approximations, and are property-tested as such.

use crate::keys::stable_key;

/// Virtual nodes per shard when the caller does not choose: enough that
/// the worst shard stays within ~25% of the mean at N <= 16.
pub const DEFAULT_VNODES: u32 = 128;

/// The placement key of one (app, scheme) cell: the stable artifact key
/// of the lowercased app name and the scheme name. Case-folded the same
/// way the service resolves app names, so `Acrobat` and `acrobat` land on
/// the same shard.
pub fn placement_key(app: &str, scheme: &str) -> u64 {
    stable_key(&("placement", app.to_ascii_lowercase(), scheme))
}

/// SplitMix64 finalizer: spreads the FNV-derived stable key over the
/// whole circle. Fixed constants — part of the wire contract, never to
/// change without a key-format version bump.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// One shard's point on the circle for replica `replica`.
fn point_hash(shard: u32, replica: u32) -> u64 {
    mix(stable_key(&("ring-point", shard, replica)))
}

/// A consistent-hash ring over shard indices with virtual nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted (point hash, shard) pairs — the circle.
    points: Vec<(u64, u32)>,
    /// The distinct shards on the ring, in insertion order.
    shards: Vec<u32>,
    /// Virtual nodes per shard.
    vnodes: u32,
}

impl HashRing {
    /// Builds a ring over `shards` with `vnodes` points each (0 is
    /// clamped to 1). Duplicate shard ids are ignored after the first.
    pub fn new(shards: impl IntoIterator<Item = u32>, vnodes: u32) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut ring = HashRing {
            points: Vec::new(),
            shards: Vec::new(),
            vnodes,
        };
        for shard in shards {
            ring.add_shard(shard);
        }
        ring
    }

    /// The distinct shards currently on the ring.
    pub fn shards(&self) -> &[u32] {
        &self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Adds `shard`'s points to the circle. A shard already present is a
    /// no-op, so the ring never double-weights anyone.
    pub fn add_shard(&mut self, shard: u32) {
        if self.shards.contains(&shard) {
            return;
        }
        self.shards.push(shard);
        for replica in 0..self.vnodes {
            self.points.push((point_hash(shard, replica), shard));
        }
        // Sort by hash; ties (astronomically unlikely but possible) break
        // by shard id so two processes building the same ring agree.
        self.points.sort_unstable();
    }

    /// Removes `shard`'s points from the circle.
    pub fn remove_shard(&mut self, shard: u32) {
        self.shards.retain(|s| *s != shard);
        self.points.retain(|(_, s)| *s != shard);
    }

    /// The index into `points` owning `key`: the first point clockwise
    /// from the key's position, wrapping at the top of the circle.
    fn owner_index(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = mix(key);
        let index = self.points.partition_point(|(point, _)| *point < hash);
        Some(if index == self.points.len() { 0 } else { index })
    }

    /// The shard owning `key`, or `None` on an empty ring.
    pub fn place(&self, key: u64) -> Option<u32> {
        self.owner_index(key).map(|i| self.points[i].1)
    }

    /// Every shard in failover order for `key`: the owner first, then
    /// each *distinct* shard met walking clockwise. The router forwards
    /// to the first live entry, so a dead owner's keyspace spills onto
    /// its ring successors rather than one designated backup.
    pub fn successors(&self, key: u64) -> Vec<u32> {
        let Some(start) = self.owner_index(key) else {
            return Vec::new();
        };
        let mut order = Vec::with_capacity(self.shards.len());
        for offset in 0..self.points.len() {
            let (_, shard) = self.points[(start + offset) % self.points.len()];
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == self.shards.len() {
                    break;
                }
            }
        }
        order
    }

    /// The shards a rebuilt `shard` should pull artifacts from: every
    /// other shard, nearest ring-successor of `shard`'s own points first.
    /// (Those successors absorbed `shard`'s keyspace while it was down,
    /// so they are the peers most likely to hold what it missed.)
    pub fn neighbors(&self, shard: u32) -> Vec<u32> {
        let mut order = Vec::new();
        for (index, (_, owner)) in self.points.iter().enumerate() {
            if *owner != shard {
                continue;
            }
            for offset in 1..self.points.len() {
                let (_, other) = self.points[(index + offset) % self.points.len()];
                if other != shard {
                    if !order.contains(&other) {
                        order.push(other);
                    }
                    break;
                }
            }
        }
        for other in &self.shards {
            if *other != shard && !order.contains(other) {
                order.push(*other);
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_golden() {
        // Two independently built rings agree, and the absolute values
        // are pinned: a change here is a wire-contract break (router and
        // shards from different builds would disagree on ownership).
        let a = HashRing::new(0..3, DEFAULT_VNODES);
        let b = HashRing::new([2, 0, 1], DEFAULT_VNODES);
        let key = placement_key("Acrobat", "critic");
        assert_eq!(a.place(key), b.place(key));
        let golden: Vec<Option<u32>> = [
            placement_key("Acrobat", "critic"),
            placement_key("Angrybirds", "opp16"),
            placement_key("Browser", "hoist"),
            placement_key("Facebook", "critic"),
        ]
        .iter()
        .map(|k| a.place(*k))
        .collect();
        assert_eq!(golden, vec![Some(2), Some(1), Some(2), Some(1)]);
    }

    #[test]
    fn case_folding_matches_the_service_resolver() {
        assert_eq!(
            placement_key("Acrobat", "critic"),
            placement_key("ACROBAT", "critic")
        );
        assert_ne!(
            placement_key("Acrobat", "critic"),
            placement_key("Acrobat", "opp16")
        );
    }

    #[test]
    fn successors_start_at_the_owner_and_cover_every_shard() {
        let ring = HashRing::new(0..4, 32);
        for key in 0..200u64 {
            let order = ring.successors(key);
            assert_eq!(order.len(), 4);
            assert_eq!(Some(order[0]), ring.place(key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn neighbors_exclude_self_and_cover_the_rest() {
        let ring = HashRing::new(0..3, 16);
        for shard in 0..3 {
            let peers = ring.neighbors(shard);
            assert!(!peers.contains(&shard));
            let mut sorted = peers.clone();
            sorted.sort_unstable();
            let expected: Vec<u32> = (0..3).filter(|s| *s != shard).collect();
            assert_eq!(sorted, expected);
        }
    }

    #[test]
    fn empty_ring_places_nothing() {
        let ring = HashRing::new(std::iter::empty(), 8);
        assert_eq!(ring.place(7), None);
        assert!(ring.successors(7).is_empty());
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_keys() {
        let full = HashRing::new(0..5, 64);
        let mut reduced = full.clone();
        reduced.remove_shard(3);
        for key in 0..2000u64 {
            let before = full.place(key).unwrap();
            let after = reduced.place(key).unwrap();
            if before != 3 {
                assert_eq!(before, after, "key {key} moved without cause");
            } else {
                assert_ne!(after, 3);
            }
        }
    }
}
