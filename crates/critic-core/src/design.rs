//! The evaluated design space, as composable design points.

use critic_mem::MemConfig;
use critic_pipeline::CpuConfig;
use serde::{Deserialize, Serialize};

/// The software (compiler) half of a design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Software {
    /// Unmodified binary.
    Baseline,
    /// CritIC chains hoisted but left 32-bit (Fig. 10's `Hoist`).
    Hoist,
    /// The full CritIC scheme: hoist + Thumb + CDP switch (Sec. IV-B).
    CritIc {
        /// Fraction of execution profiled (0.72 = paper headline).
        profile_fraction: f64,
        /// Chain length cap (paper: 5).
        max_len: Option<usize>,
        /// Keep only chains of *exactly* `max_len` (Fig. 12a's per-n
        /// study).
        exact_len: bool,
    },
    /// CritIC with the branch-pair switch — approach 1, stock hardware
    /// (Fig. 8).
    CritIcBranchSwitch,
    /// Hypothetical conversion of every CritIC regardless of length or
    /// Thumb encodability (Fig. 10's `CritIC.Ideal`).
    CritIcIdeal,
    /// Opportunistic conversion of every convertible run ≥ 3 (Sec. V).
    Opp16,
    /// Fine-Grained Thumb Conversion \[78\] (Sec. V's `Compress`).
    Compress,
    /// CritIC first, then OPP16 over the rest (Sec. V's best scheme).
    Opp16PlusCritIc,
}

impl Software {
    /// Display label matching the paper.
    pub fn label(&self) -> String {
        match self {
            Software::Baseline => "Base".into(),
            Software::Hoist => "Hoist".into(),
            Software::CritIc {
                profile_fraction,
                max_len,
                exact_len,
            } => {
                let mut s = String::from("CritIC");
                if *exact_len {
                    s.push_str(&format!("(n={})", max_len.unwrap_or(0)));
                } else if *max_len != Some(5) {
                    s.push_str(&format!("(len<={:?})", max_len));
                }
                if (*profile_fraction - 0.72).abs() > 1e-9 {
                    s.push_str(&format!("@{:.0}%", profile_fraction * 100.0));
                }
                s
            }
            Software::CritIcBranchSwitch => "CritIC.BranchSwitch".into(),
            Software::CritIcIdeal => "CritIC.Ideal".into(),
            Software::Opp16 => "OPP16".into(),
            Software::Compress => "Compress".into(),
            Software::Opp16PlusCritIc => "OPP16+CritIC".into(),
        }
    }

    /// The paper's headline CritIC configuration.
    pub fn critic_default() -> Software {
        Software::CritIc {
            profile_fraction: 0.72,
            max_len: Some(5),
            exact_len: false,
        }
    }
}

/// One evaluated configuration: a software scheme plus hardware toggles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Software scheme.
    pub software: Software,
    /// Enable the CLPT critical-load prefetcher (Fig. 1a "prefetching").
    pub clpt: bool,
    /// Enable critical-first issue (Fig. 1a "prioritizing" /
    /// Fig. 11 `BackendPrio`).
    pub prioritize: bool,
    /// Fig. 11 `2×FD`.
    pub double_fd: bool,
    /// Fig. 11 `4×i-cache`.
    pub quad_icache: bool,
    /// Fig. 11 `EFetch`.
    pub efetch: bool,
    /// Fig. 11 `PerfectBr`.
    pub perfect_branch: bool,
}

impl DesignPoint {
    fn plain(software: Software) -> DesignPoint {
        DesignPoint {
            software,
            clpt: false,
            prioritize: false,
            double_fd: false,
            quad_icache: false,
            efetch: false,
            perfect_branch: false,
        }
    }

    /// Table I baseline.
    pub fn baseline() -> DesignPoint {
        DesignPoint::plain(Software::Baseline)
    }

    /// Fig. 1a critical-load prefetching (HPCA'09 \[18\]).
    pub fn critical_load_prefetch() -> DesignPoint {
        DesignPoint {
            clpt: true,
            ..DesignPoint::baseline()
        }
    }

    /// Fig. 1a critical-instruction ALU prioritization (\[32\], \[33\]).
    pub fn critical_prioritization() -> DesignPoint {
        DesignPoint {
            prioritize: true,
            ..DesignPoint::baseline()
        }
    }

    /// Fig. 10 `Hoist`.
    pub fn hoist() -> DesignPoint {
        DesignPoint::plain(Software::Hoist)
    }

    /// The headline CritIC scheme.
    pub fn critic() -> DesignPoint {
        DesignPoint::plain(Software::critic_default())
    }

    /// Fig. 8's approach 1 on stock hardware.
    pub fn critic_branch_switch() -> DesignPoint {
        DesignPoint::plain(Software::CritIcBranchSwitch)
    }

    /// Fig. 10 `CritIC.Ideal`.
    pub fn critic_ideal() -> DesignPoint {
        DesignPoint::plain(Software::CritIcIdeal)
    }

    /// Fig. 11 `2×FD`.
    pub fn double_fd() -> DesignPoint {
        DesignPoint {
            double_fd: true,
            ..DesignPoint::baseline()
        }
    }

    /// Fig. 11 `4×i-cache`.
    pub fn quad_icache() -> DesignPoint {
        DesignPoint {
            quad_icache: true,
            ..DesignPoint::baseline()
        }
    }

    /// Fig. 11 `EFetch`.
    pub fn efetch() -> DesignPoint {
        DesignPoint {
            efetch: true,
            ..DesignPoint::baseline()
        }
    }

    /// Fig. 11 `PerfectBr`.
    pub fn perfect_branch() -> DesignPoint {
        DesignPoint {
            perfect_branch: true,
            ..DesignPoint::baseline()
        }
    }

    /// Fig. 11 `BackendPrio` (same mechanism as Fig. 1a prioritization).
    pub fn backend_prio() -> DesignPoint {
        DesignPoint::critical_prioritization()
    }

    /// Fig. 11 `AllHW`: every hardware mechanism at once.
    pub fn all_hw() -> DesignPoint {
        DesignPoint {
            quad_icache: true,
            efetch: true,
            perfect_branch: true,
            prioritize: true,
            ..DesignPoint::baseline()
        }
    }

    /// Fig. 13 `OPP16`.
    pub fn opp16() -> DesignPoint {
        DesignPoint::plain(Software::Opp16)
    }

    /// Fig. 13 `Compress`.
    pub fn compress() -> DesignPoint {
        DesignPoint::plain(Software::Compress)
    }

    /// Fig. 13 `OPP16+CritIC`.
    pub fn opp16_plus_critic() -> DesignPoint {
        DesignPoint::plain(Software::Opp16PlusCritIc)
    }

    /// Resolves a CLI/wire scheme name to its design point. `None` for an
    /// unknown name — the single naming authority shared by the `critic`
    /// CLI and the service submission path.
    pub fn named(name: &str) -> Option<DesignPoint> {
        Some(match name {
            "critic" => DesignPoint::critic(),
            "hoist" => DesignPoint::hoist(),
            "ideal" => DesignPoint::critic_ideal(),
            "branch-switch" => DesignPoint::critic_branch_switch(),
            "opp16" => DesignPoint::opp16(),
            "compress" => DesignPoint::compress(),
            "opp16+critic" => DesignPoint::opp16_plus_critic(),
            _ => return None,
        })
    }

    /// Adds the CritIC software on top of this (hardware) point — the
    /// "with CritIC" bars of Fig. 11.
    #[must_use]
    pub fn with_critic(mut self) -> DesignPoint {
        self.software = Software::critic_default();
        self
    }

    /// Fig. 12a: CritIC restricted to chains of exactly length `n`.
    pub fn critic_exact_len(n: usize) -> DesignPoint {
        DesignPoint::plain(Software::CritIc {
            profile_fraction: 0.72,
            max_len: Some(n),
            exact_len: true,
        })
    }

    /// Fig. 12b: CritIC with a given profiling coverage.
    pub fn critic_profile_fraction(fraction: f64) -> DesignPoint {
        DesignPoint::plain(Software::CritIc {
            profile_fraction: fraction,
            max_len: Some(5),
            exact_len: false,
        })
    }

    /// Human-readable name.
    pub fn label(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        match self.software {
            Software::Baseline => {}
            ref sw => parts.push(sw.label()),
        }
        if self.clpt {
            parts.push("Prefetch".into());
        }
        if self.prioritize {
            parts.push("BackendPrio".into());
        }
        if self.double_fd {
            parts.push("2xFD".into());
        }
        if self.quad_icache {
            parts.push("4xICache".into());
        }
        if self.efetch {
            parts.push("EFetch".into());
        }
        if self.perfect_branch {
            parts.push("PerfectBr".into());
        }
        if parts.is_empty() {
            "Base".into()
        } else {
            parts.join("+")
        }
    }

    /// The CPU configuration this point implies.
    pub fn cpu_config(&self) -> CpuConfig {
        let mut cfg = CpuConfig::google_tablet();
        if self.double_fd {
            cfg = cfg.with_double_fd();
        }
        if self.perfect_branch {
            cfg = cfg.with_perfect_branch();
        }
        if self.prioritize {
            cfg = cfg.with_critical_prioritization();
        }
        cfg
    }

    /// The memory configuration this point implies.
    pub fn mem_config(&self) -> MemConfig {
        let mut cfg = MemConfig::google_tablet();
        if self.clpt {
            cfg = cfg.with_clpt();
        }
        if self.quad_icache {
            cfg = cfg.with_4x_icache();
        }
        if self.double_fd {
            cfg = cfg.with_half_icache_latency();
        }
        if self.efetch {
            cfg = cfg.with_efetch();
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_meaningful() {
        assert_eq!(DesignPoint::baseline().label(), "Base");
        assert_eq!(DesignPoint::critic().label(), "CritIC");
        assert_eq!(
            DesignPoint::all_hw().label(),
            "BackendPrio+4xICache+EFetch+PerfectBr"
        );
        assert!(DesignPoint::all_hw()
            .with_critic()
            .label()
            .contains("CritIC"));
        assert_eq!(DesignPoint::critic_exact_len(7).label(), "CritIC(n=7)");
        assert_eq!(
            DesignPoint::critic_profile_fraction(0.33).label(),
            "CritIC@33%"
        );
    }

    #[test]
    fn hardware_toggles_reach_the_configs() {
        let p = DesignPoint::all_hw();
        let cpu = p.cpu_config();
        assert!(cpu.perfect_branch && cpu.prioritize_critical);
        let mem = p.mem_config();
        assert!(mem.efetch_enabled);
        assert_eq!(mem.icache.size_bytes, 128 * 1024);
        let d = DesignPoint::double_fd();
        assert_eq!(d.cpu_config().fetch_width, 8);
        assert_eq!(d.mem_config().icache.hit_latency, 1);
    }

    #[test]
    fn with_critic_preserves_hardware() {
        let p = DesignPoint::perfect_branch().with_critic();
        assert!(p.perfect_branch);
        assert_eq!(p.software, Software::critic_default());
    }

    #[test]
    fn design_points_serialize() {
        let p = DesignPoint::critic();
        let json = serde_json::to_string(&p).expect("serialize");
        let back: DesignPoint = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(p, back);
    }
}
