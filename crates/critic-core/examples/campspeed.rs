//! Probe: cold batched campaign vs the seed's scalar per-cell pipeline.
//!
//! Dry-runs the `critic bench` cold-path measurement: a silent batched
//! campaign over the sensitivity grid, a telemetry-enabled pass for the
//! span breakdown, and the scalar reference loop (fresh workbench, cloned
//! variant, fresh trace expansion, `run_reference` walk per cell).
use std::sync::Arc;
use std::time::Instant;

use critic_core::campaign::{default_schemes, run_campaign_with_store, CampaignSpec, Scheme};
use critic_core::design::{DesignPoint, Software};
use critic_core::runner::Workbench;
use critic_core::store::ArtifactStore;
use critic_energy::EnergyModel;
use critic_obs::Telemetry;
use critic_pipeline::Simulator;
use critic_workloads::suite::Suite;
use critic_workloads::Trace;

fn grid() -> Vec<Scheme> {
    let mut schemes = default_schemes();
    for n in [2, 3, 4] {
        schemes.push(Scheme::new(
            &format!("critic-len{n}"),
            DesignPoint::critic_exact_len(n),
        ));
    }
    for f in [0.25, 0.5] {
        schemes.push(Scheme::new(
            &format!("critic-pf{f}"),
            DesignPoint::critic_profile_fraction(f),
        ));
    }
    // Fig. 11's hardware sensitivity points (software stays baseline).
    schemes.push(Scheme::new("hw-2xfd", DesignPoint::double_fd()));
    schemes.push(Scheme::new("hw-4xic", DesignPoint::quad_icache()));
    schemes.push(Scheme::new("hw-efetch", DesignPoint::efetch()));
    schemes.push(Scheme::new("hw-perfbr", DesignPoint::perfect_branch()));
    schemes.push(Scheme::new("hw-prio", DesignPoint::backend_prio()));
    schemes.push(Scheme::new("hw-all", DesignPoint::all_hw()));
    schemes
}

fn main() {
    let apps = Suite::Mobile.apps().into_iter().take(4).collect::<Vec<_>>();
    let trace_len: usize = std::env::var("TRACE_LEN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000);
    let workers: usize = std::env::var("WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let reps: usize = std::env::var("REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let mut spec = CampaignSpec::new(apps.clone(), grid(), trace_len);
    spec.telemetry = Telemetry::off();
    spec.workers = workers;

    // Batched cold campaign, silent, best of reps.
    let mut best = f64::MAX;
    for _ in 0..reps {
        let store = Arc::new(ArtifactStore::new());
        let t = Instant::now();
        let summary = run_campaign_with_store(&spec, &store).expect("campaign");
        let wall = t.elapsed().as_secs_f64() * 1e3;
        assert!(summary.all_ok(), "{}", summary.render());
        println!(
            "batched cold {wall:.1} ms  ({} cells)",
            summary.records.len()
        );
        best = best.min(wall);
    }

    // One instrumented pass for the span breakdown.
    let mut instrumented = spec.clone();
    instrumented.telemetry = Telemetry::enabled();
    let store = Arc::new(ArtifactStore::new());
    let t = Instant::now();
    let summary = run_campaign_with_store(&instrumented, &store).expect("campaign");
    let wall = t.elapsed().as_secs_f64() * 1e3;
    let snap = summary.telemetry.expect("telemetry on");
    println!("instrumented {wall:.1} ms");
    for (name, s) in [
        ("world_build", snap.world_build),
        ("profile", snap.profile),
        ("passes", snap.passes),
        ("validate", snap.validate),
        ("sim", snap.sim),
    ] {
        println!(
            "  {name:12} count {:3}  total {:8.2} ms  mean {:6.2} ms",
            s.count,
            s.total_nanos as f64 / 1e6,
            s.mean_millis()
        );
    }

    // The seed's scalar per-cell pipeline: every cell builds its own world,
    // clones its variant, expands its trace fresh, and walks it with the
    // reference engine (baseline + scheme), best of reps.
    let energy = EnergyModel::default();
    let mut best_scalar = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let mut cells = 0;
        for app in &apps {
            for scheme in grid() {
                let mut bench = Workbench::try_new(app, trace_len).expect("workbench");
                let base_point = DesignPoint::baseline();
                let base_sim = Simulator::new(base_point.cpu_config(), base_point.mem_config())
                    .run_reference(bench.baseline_trace(), bench.baseline_fanout())
                    .0;
                let point = &scheme.point;
                let sim = if matches!(point.software, Software::Baseline) {
                    // Hardware-only points replay the recorded baseline
                    // trace under the altered configuration.
                    Simulator::new(point.cpu_config(), point.mem_config())
                        .run_reference(bench.baseline_trace(), bench.baseline_fanout())
                        .0
                } else {
                    let (program, _pass) = bench.try_variant(&point.software).expect("variant");
                    let trace = Trace::expand(&program, &bench.path);
                    let fanout = trace.compute_fanout();
                    Simulator::new(point.cpu_config(), point.mem_config())
                        .run_reference(&trace, &fanout)
                        .0
                };
                let speedup = sim.speedup_over(&base_sim);
                let saving = energy
                    .evaluate(&sim)
                    .cpu_saving(&energy.evaluate(&base_sim));
                assert!(speedup > 0.0 && saving.is_finite());
                cells += 1;
            }
        }
        let wall = t.elapsed().as_secs_f64() * 1e3;
        println!("scalar percell {wall:.1} ms  ({cells} cells)");
        best_scalar = best_scalar.min(wall);
    }
    println!(
        "best batched {best:.1} ms  best scalar {best_scalar:.1} ms  ratio {:.2}x",
        best_scalar / best
    );
}
