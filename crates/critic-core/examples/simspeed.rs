//! A/B microbench: raw simulator throughput on one baseline trace.
//!
//! Measures three paths over the same trace, in one process, so the
//! numbers are comparable under identical machine conditions:
//!
//! * `reference` — the preserved scalar loop (`run_reference`), the
//!   pre-data-oriented baseline;
//! * `decode+run` — the struct-of-arrays core including its per-run trace
//!   decode (`run_with_scratch`), the cold single-cell path;
//! * `decoded` — the core over a prepared decode (`run_decoded`), the
//!   batch path where the decode is shared across schemes.
use std::time::Instant;

use critic_core::design::DesignPoint;
use critic_core::runner::Workbench;
use critic_pipeline::{DecodedTrace, SimScratch, Simulator};
use critic_workloads::suite::Suite;

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        let dt = t.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn main() {
    let app = &Suite::Mobile.apps()[0];
    let bench = Workbench::new(app, 200_000);
    let point = DesignPoint::baseline();
    let sim = Simulator::new(point.cpu_config(), point.mem_config());
    let trace = bench.baseline_trace();
    let fanout = bench.baseline_fanout();
    let mut scratch = SimScratch::new();
    let mut decoded = DecodedTrace::new();
    decoded.decode_into(trace);

    // Warmup all paths.
    let cycles = sim.run_with_scratch(trace, fanout, &mut scratch).cycles;
    let _ = sim.run_decoded(&decoded, fanout, &mut scratch);
    let _ = sim.run_reference(trace, fanout);

    let reps = 20;
    let (t_ref, (r_ref, l_ref)) = best_of(reps, || sim.run_reference(trace, fanout));
    let (t_cold, r_cold) = best_of(reps, || sim.run_with_scratch(trace, fanout, &mut scratch));
    let (t_dec, (r_dec, _)) = best_of(reps, || sim.run_decoded(&decoded, fanout, &mut scratch));
    assert_eq!(r_ref.cycles, cycles);
    assert_eq!(r_cold.cycles, cycles);
    assert_eq!(r_dec.cycles, cycles);

    let insns = trace.len() as f64;
    println!("{cycles} cycles, {} insns", trace.len());
    if std::env::var_os("SIMSPEED_STATS").is_some() {
        println!(
            "model calls: l1i {} ({} miss), l1d {} ({} miss), l2 {}, dram {}, bpu {} ({} misp)",
            r_ref.mem.icache.accesses,
            r_ref.mem.icache.misses,
            r_ref.mem.dcache.accesses,
            r_ref.mem.dcache.misses,
            r_ref.mem.l2.accesses,
            r_ref.mem.dram.accesses,
            r_ref.bpu.lookups,
            r_ref.bpu.mispredicts,
        );
        println!("ledger: {l_ref:?}");
    }
    for (name, t) in [
        ("reference ", t_ref),
        ("decode+run", t_cold),
        ("decoded   ", t_dec),
    ] {
        println!(
            "{name} best {:>7.3} ms, {:>6.2} ns/cycle, {:>5.1} M insts/s, {:.2}x vs reference",
            t * 1e3,
            t * 1e9 / cycles as f64,
            insns / t / 1e6,
            t_ref / t,
        );
    }
}
