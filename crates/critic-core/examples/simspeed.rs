//! A/B microbench: raw simulator throughput on one baseline trace.
use std::time::Instant;

use critic_core::design::DesignPoint;
use critic_core::runner::Workbench;
use critic_pipeline::{SimScratch, Simulator};
use critic_workloads::suite::Suite;

fn main() {
    let app = &Suite::Mobile.apps()[0];
    let bench = Workbench::new(app, 200_000);
    let point = DesignPoint::baseline();
    let sim = Simulator::new(point.cpu_config(), point.mem_config());
    let mut scratch = SimScratch::new();
    let mut cycles = 0u64;
    for _ in 0..3 {
        cycles = sim
            .run_with_scratch(
                bench.baseline_trace(),
                bench.baseline_fanout(),
                &mut scratch,
            )
            .cycles;
    }
    let reps = 30;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let r = sim.run_with_scratch(
            bench.baseline_trace(),
            bench.baseline_fanout(),
            &mut scratch,
        );
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(r.cycles, cycles);
        if dt < best {
            best = dt;
        }
    }
    println!(
        "{cycles} cycles, best {:.3} ms, {:.2} ns/cycle",
        best * 1e3,
        best * 1e9 / cycles as f64
    );
}
