//! Probe: per-scheme sim cost under both engines, plus decode prefix
//! sharing, for one app.
use std::time::Instant;

use critic_core::design::DesignPoint;
use critic_core::runner::Workbench;
use critic_pipeline::{BatchSimulator, Simulator};
use critic_workloads::suite::Suite;
use critic_workloads::Trace;

fn ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed().as_secs_f64() * 1e3, r)
}

fn main() {
    let trace_len: usize = std::env::var("TRACE_LEN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000);
    for app in Suite::Mobile.apps().iter().take(4) {
        let bench = Workbench::new(app, trace_len);
        let base = bench.baseline_trace().clone();
        let base_fanout = bench.baseline_fanout().to_vec();
        println!("app {} base len {}", app.name, base.len());
        let mut batch = BatchSimulator::new();
        for point in [
            DesignPoint::baseline(),
            DesignPoint::critic(),
            DesignPoint::opp16(),
            DesignPoint::hoist(),
        ] {
            // Build the variant trace via a throwaway workbench run.
            let mut wb = Workbench::new(app, trace_len);
            let outcome = wb.run(&point);
            let sim = Simulator::new(point.cpu_config(), point.mem_config());
            let label = point.label();
            let baseline = label.contains("baseline");
            let (trace, fanout) = if baseline {
                (base.clone(), base_fanout.clone())
            } else {
                // Rebuild the variant program and trace privately.
                let (program, _) = wb.try_variant(&point.software).expect("variant");
                let t = Trace::expand(&program, &wb.path);
                let f = t.compute_fanout();
                (t, f)
            };
            let (t_ref, (r_ref, _)) = ms(|| sim.run_reference(&trace, &fanout));
            let (t_batch, (r_b, _)) = ms(|| {
                if baseline {
                    batch.run_base(&sim, &base, &fanout)
                } else {
                    batch.run_variant(&sim, &trace, &base)
                }
            });
            assert_eq!(r_ref, r_b);
            assert_eq!(r_ref.cycles, outcome.sim.cycles, "{label}");
            println!(
                "  {label:30} len {:6}  cycles {:7}  ref {t_ref:6.2} ms  batch {t_batch:6.2} ms  prefix {:.2}",
                trace.len(),
                r_ref.cycles,
                batch.stats().prefix_fraction(),
            );
        }
    }
}
