use critic_core::{design::DesignPoint, runner::Workbench};
use critic_workloads::suite::Suite;

#[test]
#[ignore]
fn probe() {
    for app in Suite::Mobile.apps().iter().take(3) {
        let mut bench = Workbench::new(app, 240_000);
        let base = bench.run(&DesignPoint::baseline());
        eprintln!(
            "== {} base: ipc={:.3} imiss={} istall={:.3} bstall={:.3} stallRD={:.3}",
            app.name,
            base.sim.ipc(),
            base.sim.mem.icache.misses,
            base.sim.fetch_stalls.icache as f64 / base.sim.cycles as f64,
            base.sim.fetch_stalls.branch as f64 / base.sim.cycles as f64,
            base.sim.stall_for_rd_frac()
        );
        {
            use critic_profiler::ProfilerConfig;
            let prof = bench.profile(&ProfilerConfig::default()).clone();
            eprintln!(
                "   profile: {} chains, coverage {:.3}, conv {:.3}",
                prof.chains.len(),
                prof.dynamic_coverage,
                prof.stats.convertible_frac
            );
        }
        for p in [
            DesignPoint::hoist(),
            DesignPoint::critic(),
            DesignPoint::critic_ideal(),
            DesignPoint::critic_branch_switch(),
            DesignPoint::critical_load_prefetch(),
            DesignPoint::critical_prioritization(),
            DesignPoint::opp16(),
            DesignPoint::compress(),
            DesignPoint::opp16_plus_critic(),
        ] {
            let r = bench.run(&p);
            eprintln!("   {:24} speedup={:.4} thumb={:.3} imiss={:>6} istall={:.3} bstall={:.3} rd={:.3} cdp={}",
                r.design, r.sim.speedup_over(&base.sim), r.thumb_dyn_frac,
                r.sim.mem.icache.misses,
                r.sim.fetch_stalls.icache as f64 / r.sim.cycles as f64,
                r.sim.fetch_stalls.branch as f64 / r.sim.cycles as f64,
                r.sim.stall_for_rd_frac(), r.sim.cdp_switches);
            if r.design == "CritIC" {
                eprintln!(
                    "      pass: applied={} skip_legal={} skip_missing={} converted={}",
                    r.pass.chains_applied,
                    r.pass.chains_skipped_legality,
                    r.pass.chains_skipped_missing,
                    r.pass.insns_converted
                );
            }
        }
    }
    // SPEC prefetch check
    for app in [&Suite::SpecInt.apps()[2], &Suite::SpecFloat.apps()[4]] {
        let mut bench = Workbench::new(app, 240_000);
        let base = bench.run(&DesignPoint::baseline());
        let pf = bench.run(&DesignPoint::critical_load_prefetch());
        let pr = bench.run(&DesignPoint::critical_prioritization());
        eprintln!(
            "== {} ipc={:.3} prefetch={:.4} (issued {} useful {}) prio={:.4}",
            app.name,
            base.sim.ipc(),
            pf.sim.speedup_over(&base.sim),
            pf.sim.mem.clpt_prefetches,
            pf.sim.mem.dcache.prefetch_hits,
            pr.sim.speedup_over(&base.sim)
        );
    }
}
