//! End-to-end campaign acceptance test: the full Mobile suite with fault
//! injection on one cell completes, journals every cell, reports the
//! failed cell without aborting, and resumes from the journal.

use std::fs;
use std::io::Write;

use critic_core::{
    run_campaign, CampaignSpec, CellStatus, DesignPoint, PlannedFault, RunError, Scheme,
};
use critic_workloads::{Fault, Suite};

fn shrink(mut apps: Vec<critic_workloads::AppSpec>) -> Vec<critic_workloads::AppSpec> {
    for app in &mut apps {
        app.params.num_functions = app.params.num_functions.min(16);
    }
    apps
}

#[test]
fn full_mobile_suite_campaign_with_fault_injection() {
    let dir = std::env::temp_dir().join("critic_campaign_e2e");
    let _ = fs::create_dir_all(&dir);
    let journal = dir.join("mobile.jsonl");
    let _ = fs::remove_file(&journal);

    let apps = shrink(Suite::Mobile.apps());
    let n_apps = apps.len();
    assert!(n_apps >= 10, "full Mobile suite expected, got {n_apps}");
    let schemes = vec![
        Scheme::new("critic", DesignPoint::critic()),
        Scheme::new("opp16", DesignPoint::opp16()),
    ];
    let victim = apps[3].name.clone();

    let mut spec = CampaignSpec::new(apps.clone(), schemes.clone(), 6_000);
    spec.journal = Some(journal.clone());
    spec.faults.push(PlannedFault {
        app: victim.clone(),
        scheme: "critic".into(),
        fault: Fault::IllegalImmediate,
        seed: 42,
    });

    let summary = run_campaign(&spec).expect("campaign itself must not abort");

    // Every cell of the grid is accounted for and journaled.
    assert_eq!(summary.records.len(), n_apps * schemes.len());
    let journaled = fs::read_to_string(&journal).expect("journal exists");
    let trailer = usize::from(spec.telemetry.is_enabled());
    assert_eq!(
        journaled.lines().count(),
        n_apps * schemes.len() + trailer,
        "one line per cell, plus the telemetry trailer when CRITIC_TELEMETRY is set"
    );

    // Exactly the fault-injected cell failed, with a typed error — the
    // corruption was caught by validation, not by a trapped panic.
    let failed = summary.failed();
    assert_eq!(failed.len(), 1, "{}", summary.render());
    assert_eq!(
        (failed[0].app.as_str(), failed[0].scheme.as_str()),
        (victim.as_str(), "critic")
    );
    assert_eq!(failed[0].status, CellStatus::Failed);
    assert!(
        matches!(failed[0].error, Some(RunError::Program(_))),
        "expected a validation error, got {:?}",
        failed[0].error
    );
    assert!(!summary.all_ok());
    assert!(summary.render().contains("FAILED"));

    // Kill/restart: drop the journal's last full cell line (as if the
    // process died before finishing that cell — the telemetry trailer,
    // when present, dies with it), append a torn line, resume.
    let mut lines: Vec<&str> = journaled
        .lines()
        .filter(|l| !l.contains("campaign_telemetry"))
        .collect();
    lines.pop();
    let mut truncated = lines.join("\n");
    truncated.push('\n');
    fs::write(&journal, &truncated).expect("truncate journal");
    {
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .expect("open journal");
        write!(f, "{{\"app\":\"torn-mid-wr").expect("append torn line");
    }

    let mut resumed_spec = CampaignSpec::new(apps, schemes, 6_000);
    resumed_spec.journal = Some(journal.clone());
    resumed_spec.resume = true;
    resumed_spec.faults = spec.faults.clone();
    let resumed = run_campaign(&resumed_spec).expect("resume succeeds");

    assert_eq!(resumed.records.len(), n_apps * 2);
    // Only Ok-journaled cells replay; the dropped cell and the journaled
    // failure both rerun (the fault is still planned, so it fails again).
    let ok_journaled = truncated
        .lines()
        .filter(|l| l.contains("\"status\":\"Ok\""))
        .count();
    assert_eq!(
        resumed.resumed, ok_journaled,
        "exactly the Ok-journaled cells replayed"
    );
    assert!(resumed.resumed >= n_apps * 2 - 2, "{}", resumed.render());
    assert_eq!(
        resumed.failed().len(),
        1,
        "fault-injected cell fails again on retry"
    );

    let _ = fs::remove_file(&journal);
}
