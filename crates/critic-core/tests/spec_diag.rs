use critic_workloads::suite::Suite;
use critic_workloads::{ExecutionPath, Trace};

#[test]
#[ignore]
fn spec_diag() {
    let app = &Suite::SpecFloat.apps()[4]; // lbm
    let program = app.generate_program();
    let path = ExecutionPath::generate(&program, app.path_seed(), 240_000);
    let trace = Trace::expand(&program, &path);
    let fanout = trace.compute_fanout();
    let crit_loads = trace
        .iter()
        .enumerate()
        .filter(|(i, e)| e.op.is_load() && fanout[*i] >= 8)
        .count();
    let loads = trace.iter().filter(|e| e.op.is_load()).count();
    eprintln!(
        "loads={} critical loads={} hints={}",
        loads,
        crit_loads,
        program.load_hints.len()
    );
    // distinct PCs of critical loads
    let pcs: std::collections::HashSet<u64> = trace
        .iter()
        .enumerate()
        .filter(|(i, e)| e.op.is_load() && fanout[*i] >= 8)
        .map(|(_, e)| e.pc)
        .collect();
    eprintln!("distinct critical-load pcs: {}", pcs.len());
    // avg fanout of hinted loads
    let mut hint_fo = vec![];
    for (i, e) in trace.iter().enumerate() {
        if e.op.is_load() && program.load_hints.contains(&e.uid.0) {
            hint_fo.push(fanout[i]);
        }
    }
    let mean = hint_fo.iter().map(|&f| f as f64).sum::<f64>() / hint_fo.len().max(1) as f64;
    eprintln!("hinted loads dyn={} mean fanout={:.1}", hint_fo.len(), mean);
}
