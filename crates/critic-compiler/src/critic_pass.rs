//! The CritIC instrumentation pass (paper Sec. III-C, IV-A/B).
//!
//! For each profiled chain, in coverage rank order:
//!
//! 1. **Hoist** the members into one contiguous run at the first member's
//!    position (shrinking the dataflow gap — the F.StallForR+D half of the
//!    optimization). Hoisting is guarded by a register-level legality check;
//!    chains whose span reuses a member's destination are skipped, exactly
//!    as a conservative compiler must.
//! 2. **Convert** every member to the 16-bit Thumb format (the paper's
//!    all-or-nothing rule; `CritIC.Ideal` force-converts hypothetically).
//! 3. Emit the **format switch**: the extended CDP half-word covering up to
//!    9 following instructions (approach 2), or the stock branch pair
//!    (approach 1) — a 32-bit branch to the next instruction before the
//!    chain and a 16-bit one after it.

use std::collections::HashSet;

use critic_isa::{Insn, Opcode, Width};
use critic_profiler::Profile;
use critic_workloads::{BlockId, InsnUid, Program, TaggedInsn};
use serde::{Deserialize, Serialize};

use crate::error::PassError;
use crate::report::PassReport;
use crate::uid::UidAllocator;

/// How the decoder is told about a format switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchMode {
    /// The extended CDP mnemonic (Sec. IV-B): one 16-bit half-word whose
    /// 3-bit argument covers up to 9 following 16-bit instructions.
    Cdp,
    /// The stock ARM mechanism (Sec. IV-A): an unconditional 32-bit branch
    /// to the next instruction before the chain and a 16-bit one after it.
    /// Runs on today's hardware, but the two redirects are hard to amortize
    /// over 5-instruction chains — the Fig. 8 result.
    BranchPair,
}

/// Options of the CritIC pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticPassOptions {
    /// Hoist chain members contiguous (the `Hoist` design point keeps this
    /// and disables conversion).
    pub hoist: bool,
    /// Re-encode chains in the 16-bit format.
    pub convert: bool,
    /// The decoder-switch mechanism.
    pub switch_mode: SwitchMode,
    /// Convert even chains that fail the Thumb predicate — the hypothetical
    /// `CritIC.Ideal` upper bound (Sec. IV-D). Such instructions could not
    /// really be encoded; the simulator only consumes their fetch width.
    pub force_convert: bool,
}

impl Default for CriticPassOptions {
    fn default() -> Self {
        CriticPassOptions {
            hoist: true,
            convert: true,
            switch_mode: SwitchMode::Cdp,
            force_convert: false,
        }
    }
}

impl CriticPassOptions {
    /// The `Hoist` design point: aggregation without conversion.
    pub fn hoist_only() -> CriticPassOptions {
        CriticPassOptions {
            convert: false,
            ..Default::default()
        }
    }

    /// The `CritIC.Ideal` design point (pair with
    /// `ProfilerConfig::ideal()`).
    pub fn ideal() -> CriticPassOptions {
        CriticPassOptions {
            force_convert: true,
            ..Default::default()
        }
    }

    /// Approach 1: the branch-pair switch that runs on stock hardware.
    pub fn branch_switch() -> CriticPassOptions {
        CriticPassOptions {
            switch_mode: SwitchMode::BranchPair,
            ..Default::default()
        }
    }
}

/// Applies the CritIC pass to a program, consuming a profile.
///
/// Chains are applied in profile rank order; members claimed by an earlier
/// chain are not re-used. Returns what was done.
///
/// # Panics
///
/// Panics if the program or profile is malformed; use
/// [`try_apply_critic_pass`] to get a [`PassError`] instead.
pub fn apply_critic_pass(
    program: &mut Program,
    profile: &Profile,
    opts: CriticPassOptions,
) -> PassReport {
    match try_apply_critic_pass(program, profile, opts) {
        Ok(report) => report,
        Err(e) => panic!("critic pass failed: {e}"),
    }
}

/// Fallible variant of [`apply_critic_pass`]: validates the program
/// structurally and every chain spec against it before rewriting anything,
/// so a corrupted program or a stale/foreign profile yields a typed
/// [`PassError`] instead of a panic or silent corruption.
///
/// On `Err` the program is untouched (all checks run before the first
/// rewrite).
pub fn try_apply_critic_pass(
    program: &mut Program,
    profile: &Profile,
    opts: CriticPassOptions,
) -> Result<PassReport, PassError> {
    program.validate()?;
    for (rank, spec) in profile.chains.iter().enumerate() {
        if spec.uids.is_empty() {
            return Err(PassError::EmptyChain { chain: rank });
        }
        if spec.block.index() >= program.blocks.len() {
            return Err(PassError::ChainBlockOutOfRange {
                chain: rank,
                block: spec.block,
                num_blocks: program.blocks.len(),
            });
        }
    }
    Ok(apply_validated(program, profile, opts))
}

/// The pass proper; every chain's block id is known to be in range and
/// every chain non-empty.
fn apply_validated(
    program: &mut Program,
    profile: &Profile,
    opts: CriticPassOptions,
) -> PassReport {
    let mut alloc = UidAllocator::for_program(program);
    let mut claimed: HashSet<(BlockId, InsnUid)> = HashSet::new();
    let mut report = PassReport::default();

    for spec in &profile.chains {
        if spec
            .uids
            .iter()
            .any(|&uid| claimed.contains(&(spec.block, uid)))
        {
            report.chains_skipped_missing += 1;
            continue;
        }
        let block = program.block_mut(spec.block);
        let positions: Option<Vec<usize>> = spec
            .uids
            .iter()
            .map(|&uid| block.position_of(uid))
            .collect();
        let Some(positions) = positions else {
            report.chains_skipped_missing += 1;
            continue;
        };
        if !positions.windows(2).all(|w| w[0] < w[1]) {
            // A previous rewrite scrambled the order; treat as stale.
            report.chains_skipped_missing += 1;
            continue;
        }

        // Snapshot for graceful degradation: if the post-rewrite soundness
        // re-check fails, the chain is demoted — the block is restored to
        // this image and the run continues with the chain in 32-bit form.
        let snapshot = block.insns.clone();

        let hoistable = !opts.hoist || hoist_is_legal(&block.insns, &positions);
        if !hoistable {
            // Register reuse across the chain's span makes reordering
            // unsound; fall back to converting the members *in place*
            // (conversion alone never changes semantics). The chain loses
            // the dataflow-gap benefit but keeps the fetch-bandwidth one.
            report.chains_skipped_legality += 1;
            let convert = opts.convert && (spec.thumb_convertible || opts.force_convert);
            if convert {
                let mut delta = PassReport::default();
                convert_in_place(block, &positions, opts, &mut alloc, &mut delta);
                if chain_rewrite_is_sound(block, &spec.uids, opts, false) {
                    report.absorb(delta);
                    for &uid in &spec.uids {
                        claimed.insert((spec.block, uid));
                    }
                } else {
                    block.insns = snapshot;
                    report.chains_demoted += 1;
                }
            }
            continue;
        }

        // ---- hoist ----
        let first = positions[0];
        let members: Vec<TaggedInsn> = positions.iter().map(|&p| block.insns[p]).collect();
        if opts.hoist {
            for &p in positions.iter().rev() {
                block.insns.remove(p);
            }
            for (k, member) in members.iter().enumerate() {
                block.insns.insert(first + k, *member);
            }
        }

        // ---- convert ----
        let convert = opts.convert && (spec.thumb_convertible || opts.force_convert);
        let len = members.len();
        let mut delta = PassReport::default();
        if convert {
            let range = if opts.hoist {
                first..first + len
            } else {
                // Without hoisting, conversion would need a switch per
                // member; the paper never evaluates that point, so convert
                // only when hoisting.
                first..first
            };
            for p in range {
                let insn = block.insns[p].insn;
                let thumbed = insn
                    .to_thumb()
                    .unwrap_or_else(|_| insn.with_width(Width::Thumb16));
                block.insns[p].insn = thumbed;
                delta.insns_converted += 1;
            }

            // ---- format switch ----
            match opts.switch_mode {
                SwitchMode::Cdp => {
                    // One CDP per <=9-instruction chunk, inserted front to
                    // back (later insertions account for earlier ones).
                    let mut inserted = 0usize;
                    let mut offset = 0usize;
                    while offset < len {
                        let chunk = (len - offset).min(critic_isa::MAX_CDP_CHAIN_LEN);
                        let cdp = TaggedInsn::new(Insn::cdp(chunk as u8), alloc.fresh());
                        block.insns.insert(first + offset + inserted, cdp);
                        inserted += 1;
                        delta.cdps_inserted += 1;
                        offset += chunk;
                    }
                }
                SwitchMode::BranchPair => {
                    // 32-bit branch to the next instruction before the
                    // chain; 16-bit branch after it (Fig. 6 discussion).
                    let pre = TaggedInsn::new(Insn::branch(Opcode::B, 0), alloc.fresh());
                    let post = TaggedInsn::new(
                        Insn::branch(Opcode::B, 0).with_width(Width::Thumb16),
                        alloc.fresh(),
                    );
                    block.insns.insert(first, pre);
                    block.insns.insert(first + 1 + len, post);
                    delta.switch_branches_inserted += 2;
                }
            }
        }

        // ---- re-check ----
        // Trust nothing: verify the rewrite's own postconditions before
        // keeping it. A bug here would otherwise corrupt every downstream
        // speedup and energy figure.
        if !chain_rewrite_is_sound(block, &spec.uids, opts, opts.hoist) {
            block.insns = snapshot;
            report.chains_demoted += 1;
            continue;
        }

        report.absorb(delta);
        report.chains_applied += 1;
        for &uid in &spec.uids {
            claimed.insert((spec.block, uid));
        }
    }
    report
}

/// Post-rewrite soundness re-check for one chain: every member uid must
/// still be present (contiguous and in order when `contiguous` is
/// demanded), and in CDP switch mode the block's decode-cover accounting
/// must be intact — every 16-bit instruction under a switch whose cover
/// reaches it, and no switch covering a 32-bit instruction.
///
/// The pass runs this after rewriting each chain and *demotes* the chain
/// (rolls the block back to its 32-bit image) if it fails; it is public so
/// tests and external validators can exercise the same predicate.
pub fn chain_rewrite_is_sound(
    block: &critic_workloads::BasicBlock,
    uids: &[InsnUid],
    opts: CriticPassOptions,
    contiguous: bool,
) -> bool {
    let positions: Option<Vec<usize>> = uids.iter().map(|&u| block.position_of(u)).collect();
    let Some(positions) = positions else {
        return false;
    };
    if !positions.windows(2).all(|w| w[0] < w[1]) {
        return false;
    }
    if contiguous && !positions.windows(2).all(|w| w[1] == w[0] + 1) {
        return false;
    }
    if opts.switch_mode == SwitchMode::Cdp {
        let mut cover = 0usize;
        for tagged in &block.insns {
            if let Some(covered) = tagged.insn.cdp_covered_len() {
                cover = covered;
                continue;
            }
            match tagged.insn.width() {
                Width::Thumb16 if cover == 0 => return false,
                Width::Arm32 if cover > 0 => return false,
                _ => cover = cover.saturating_sub(1),
            }
        }
        if cover > 0 {
            return false; // a switch covers past the end of the block
        }
    }
    true
}

/// Converts a non-hoistable chain's members where they stand: each
/// contiguous sub-run of at least two members becomes a CDP-prefixed
/// 16-bit region.
fn convert_in_place(
    block: &mut critic_workloads::BasicBlock,
    positions: &[usize],
    opts: CriticPassOptions,
    alloc: &mut UidAllocator,
    report: &mut PassReport,
) {
    // Group into contiguous runs.
    let mut runs: Vec<(usize, usize)> = Vec::new(); // [start, len]
    let mut run_start = positions[0];
    let mut prev = positions[0];
    for &p in &positions[1..] {
        if p != prev + 1 {
            runs.push((run_start, prev - run_start + 1));
            run_start = p;
        }
        prev = p;
    }
    runs.push((run_start, prev - run_start + 1));
    for &(start, len) in runs.iter().rev() {
        if len < 2 {
            continue;
        }
        for p in start..start + len {
            let insn = block.insns[p].insn;
            block.insns[p].insn = insn
                .to_thumb()
                .unwrap_or_else(|_| insn.with_width(Width::Thumb16));
            report.insns_converted += 1;
        }
        match opts.switch_mode {
            SwitchMode::Cdp => {
                let mut offset = 0usize;
                let mut inserted = 0usize;
                while offset < len {
                    let chunk = (len - offset).min(critic_isa::MAX_CDP_CHAIN_LEN);
                    let cdp = TaggedInsn::new(Insn::cdp(chunk as u8), alloc.fresh());
                    block.insns.insert(start + offset + inserted, cdp);
                    inserted += 1;
                    report.cdps_inserted += 1;
                    offset += chunk;
                }
            }
            SwitchMode::BranchPair => {
                let pre = TaggedInsn::new(Insn::branch(Opcode::B, 0), alloc.fresh());
                let post = TaggedInsn::new(
                    Insn::branch(Opcode::B, 0).with_width(Width::Thumb16),
                    alloc.fresh(),
                );
                block.insns.insert(start, pre);
                block.insns.insert(start + 1 + len, post);
                report.switch_branches_inserted += 2;
            }
        }
    }
}

/// Checks that moving `positions`' instructions to a contiguous run at
/// `positions[0]` preserves the block's register dataflow.
///
/// Let X be a non-member inside the chain's span, and M the set of members
/// originally *after* X (those move from behind X to in front of it). The
/// move is illegal iff:
///
/// * X reads a register some m ∈ M writes (X would suddenly read the
///   chain's value), or
/// * X writes a register some m ∈ M writes (the final value after the span
///   would flip), or
/// * X writes a register some m ∈ M reads (m would suddenly read X's
///   value — impossible for self-contained chains, checked anyway because
///   profiles can be stale).
pub fn hoist_is_legal(insns: &[TaggedInsn], positions: &[usize]) -> bool {
    let member_set: HashSet<usize> = positions.iter().copied().collect();
    // An empty chain moves nothing and is trivially legal.
    let Some(&last) = positions.last() else {
        return true;
    };
    let writes_flags = |i: &critic_isa::Insn| {
        matches!(
            i.op(),
            Opcode::Cmp | Opcode::Cmn | Opcode::Tst | Opcode::Vcmp
        )
    };
    for x in positions[0]..=last {
        if member_set.contains(&x) {
            continue;
        }
        let xi = &insns[x].insn;
        for &p in positions.iter().filter(|&&p| p > x) {
            let m = &insns[p].insn;
            if let Some(mdst) = m.dst() {
                if xi.srcs().iter().any(|s| s == mdst) {
                    return false;
                }
                if xi.dst() == Some(mdst) {
                    return false;
                }
            }
            if let Some(xdst) = xi.dst() {
                if m.srcs().iter().any(|s| s == xdst) {
                    return false;
                }
            }
            // The flags are a register too: a predicated member must not
            // move above a compare, nor a predicated interloper under one.
            if writes_flags(xi) && m.is_predicated() {
                return false;
            }
            if writes_flags(m) && xi.is_predicated() {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use critic_profiler::{Profiler, ProfilerConfig};
    use critic_workloads::suite::Suite;
    use critic_workloads::{ExecutionPath, Trace};

    use super::*;

    fn setup(len: usize) -> (Program, ExecutionPath, Trace, Profile) {
        let mut app = Suite::Mobile.apps()[0].clone();
        app.params.num_functions = 40;
        let program = app.generate_program();
        let path = ExecutionPath::generate(&program, 21, len);
        let trace = Trace::expand(&program, &path);
        let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
        (program, path, trace, profile)
    }

    /// Canonical dataflow signature: for every dynamic instance of an
    /// original instruction, the multiset of producing (uid, occurrence)
    /// pairs. Rewrites must preserve it exactly.
    fn dataflow_signature(
        trace: &Trace,
        original_uids: &HashSet<InsnUid>,
    ) -> std::collections::HashMap<(InsnUid, u32), Vec<(InsnUid, u32)>> {
        let mut occurrence: std::collections::HashMap<InsnUid, u32> = Default::default();
        let mut occ_of: Vec<(InsnUid, u32)> = Vec::with_capacity(trace.len());
        for e in trace.iter() {
            let occ = occurrence.entry(e.uid).or_insert(0);
            occ_of.push((e.uid, *occ));
            *occ += 1;
        }
        let mut signature = std::collections::HashMap::new();
        for (i, e) in trace.iter().enumerate() {
            if !original_uids.contains(&e.uid) {
                continue;
            }
            let mut deps: Vec<(InsnUid, u32)> = e.deps_iter().map(|d| occ_of[d as usize]).collect();
            deps.sort();
            signature.insert(occ_of[i], deps);
        }
        signature
    }

    #[test]
    fn pass_applies_chains_and_shrinks_the_binary() {
        let (program, _, _, profile) = setup(40_000);
        let mut optimized = program.clone();
        let report = apply_critic_pass(&mut optimized, &profile, CriticPassOptions::default());
        assert!(report.chains_applied > 0, "no chains applied");
        assert!(report.insns_converted >= 2 * report.chains_applied);
        assert!(report.cdps_inserted >= report.chains_applied);
        assert!(optimized.code_bytes() < program.code_bytes());
        assert!(optimized.thumb_fraction() > 0.0);
    }

    #[test]
    fn hoisting_preserves_register_dataflow() {
        let (program, path, trace, profile) = setup(30_000);
        let original_uids: HashSet<InsnUid> = program
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .map(|t| t.uid)
            .collect();
        let mut optimized = program.clone();
        let report = apply_critic_pass(&mut optimized, &profile, CriticPassOptions::default());
        assert!(report.chains_applied > 0);
        let rewritten = Trace::expand(&optimized, &path);
        let before = dataflow_signature(&trace, &original_uids);
        let after = dataflow_signature(&rewritten, &original_uids);
        assert_eq!(before.len(), after.len());
        for (key, deps) in &before {
            assert_eq!(
                after.get(key),
                Some(deps),
                "dataflow of {key:?} changed across the rewrite"
            );
        }
    }

    #[test]
    fn memory_streams_survive_the_rewrite() {
        let (program, path, trace, profile) = setup(20_000);
        let mut optimized = program.clone();
        apply_critic_pass(&mut optimized, &profile, CriticPassOptions::default());
        let rewritten = Trace::expand(&optimized, &path);
        let mems = |t: &Trace| -> Vec<(InsnUid, u64)> {
            let mut v: Vec<(InsnUid, u64)> = t
                .iter()
                .filter_map(|e| e.mem_addr.map(|a| (e.uid, a)))
                .collect();
            v.sort();
            v
        };
        assert_eq!(mems(&trace), mems(&rewritten));
    }

    #[test]
    fn hoist_only_moves_without_converting() {
        let (program, _, _, profile) = setup(30_000);
        let mut optimized = program.clone();
        let report = apply_critic_pass(&mut optimized, &profile, CriticPassOptions::hoist_only());
        assert!(report.chains_applied > 0);
        assert_eq!(report.insns_converted, 0);
        assert_eq!(report.cdps_inserted, 0);
        assert_eq!(
            optimized.code_bytes(),
            program.code_bytes(),
            "widths untouched"
        );
        assert_ne!(optimized, program, "but instructions moved");
    }

    #[test]
    fn branch_pair_mode_inserts_two_branches_per_chain() {
        let (program, _, _, profile) = setup(30_000);
        let mut optimized = program.clone();
        let report =
            apply_critic_pass(&mut optimized, &profile, CriticPassOptions::branch_switch());
        assert!(report.chains_applied > 0);
        // Hoisted chains get exactly one pre/post pair; in-place fallbacks
        // may need a pair per contiguous sub-run.
        assert!(report.switch_branches_inserted >= 2 * report.chains_applied);
        assert_eq!(report.switch_branches_inserted % 2, 0);
        assert_eq!(report.cdps_inserted, 0);
    }

    #[test]
    fn ideal_mode_converts_unconvertible_chains() {
        let (program, path, trace, _) = setup(30_000);
        let ideal_profile = Profiler::new(ProfilerConfig::ideal()).build_profile(&program, &trace);
        let _ = path;
        let _ = trace;
        let mut optimized = program.clone();
        let report = apply_critic_pass(&mut optimized, &ideal_profile, CriticPassOptions::ideal());
        assert!(report.chains_applied > 0);
        // Ideal converts chains the realistic scheme must leave alone.
        let unconvertible_members: u64 = ideal_profile
            .chains
            .iter()
            .filter(|c| !c.thumb_convertible)
            .map(|c| c.len() as u64)
            .sum();
        assert!(
            unconvertible_members > 0,
            "ideal profile should include unconvertible chains"
        );
        assert!(report.insns_converted > 0);
    }

    #[test]
    fn cdp_cover_never_exceeds_nine() {
        let (program, _, trace, _) = setup(30_000);
        let ideal_profile = Profiler::new(ProfilerConfig::ideal()).build_profile(&program, &trace);
        let mut optimized = program.clone();
        apply_critic_pass(&mut optimized, &ideal_profile, CriticPassOptions::ideal());
        for block in &optimized.blocks {
            for (i, t) in block.insns.iter().enumerate() {
                if let Some(covered) = t.insn.cdp_covered_len() {
                    assert!(covered <= critic_isa::MAX_CDP_CHAIN_LEN);
                    // The covered instructions must actually be 16-bit.
                    for k in 1..=covered {
                        assert_eq!(
                            block.insns[i + k].insn.width(),
                            Width::Thumb16,
                            "CDP at {i} covers a 32-bit instruction"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn legality_check_blocks_register_reuse() {
        use critic_isa::{Opcode, Reg};
        // Members at 0 and 2; instruction 1 reads r1, which member 2
        // writes — hoisting member 2 above it would corrupt instruction 1.
        let insns = vec![
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R0, &[Reg::R7, Reg::R7]),
                InsnUid(0),
            ),
            TaggedInsn::new(
                Insn::alu(Opcode::Orr, Reg::R4, &[Reg::R1, Reg::R5]),
                InsnUid(1),
            ),
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R1, &[Reg::R0, Reg::R7]),
                InsnUid(2),
            ),
        ];
        assert!(!hoist_is_legal(&insns, &[0, 2]));
        // Without the conflicting read it is fine.
        let insns_ok = vec![
            insns[0],
            TaggedInsn::new(
                Insn::alu(Opcode::Orr, Reg::R4, &[Reg::R6, Reg::R5]),
                InsnUid(1),
            ),
            insns[2],
        ];
        assert!(hoist_is_legal(&insns_ok, &[0, 2]));
    }

    #[test]
    fn clean_passes_never_demote() {
        let (program, _, trace, profile) = setup(30_000);
        for (opts, prof) in [
            (CriticPassOptions::default(), profile.clone()),
            (CriticPassOptions::hoist_only(), profile.clone()),
            (CriticPassOptions::branch_switch(), profile.clone()),
            (
                CriticPassOptions::ideal(),
                Profiler::new(ProfilerConfig::ideal()).build_profile(&program, &trace),
            ),
        ] {
            let mut optimized = program.clone();
            let report = apply_critic_pass(&mut optimized, &prof, opts);
            assert_eq!(report.chains_demoted, 0, "sound rewrites must not demote");
            assert!(report.chains_applied > 0);
        }
    }

    #[test]
    fn rewrite_soundness_check_accepts_real_rewrites_and_rejects_corruption() {
        use critic_isa::Reg;
        let opts = CriticPassOptions::default();
        // A correctly rewritten chain: CDP covering three 16-bit members.
        let members = [InsnUid(1), InsnUid(2), InsnUid(3)];
        let sound = |insns: Vec<TaggedInsn>| critic_workloads::BasicBlock {
            id: BlockId(0),
            func: critic_workloads::FuncId(0),
            insns,
            terminator: critic_workloads::Terminator::Exit,
        };
        let thumb = |op, d, s: &[Reg], uid| {
            TaggedInsn::new(Insn::alu(op, d, s).with_width(Width::Thumb16), InsnUid(uid))
        };
        let good = sound(vec![
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R0, &[Reg::R7, Reg::R7]),
                InsnUid(0),
            ),
            TaggedInsn::new(Insn::cdp(3), InsnUid(10)),
            thumb(Opcode::Add, Reg::R1, &[Reg::R0, Reg::R0], 1),
            thumb(Opcode::Orr, Reg::R2, &[Reg::R1, Reg::R0], 2),
            thumb(Opcode::Eor, Reg::R3, &[Reg::R2, Reg::R1], 3),
        ]);
        assert!(chain_rewrite_is_sound(&good, &members, opts, true));

        // A member vanished.
        let mut dropped = good.clone();
        dropped.insns.remove(3);
        assert!(!chain_rewrite_is_sound(&dropped, &members, opts, true));

        // The members are no longer contiguous.
        let mut scattered = good.clone();
        let moved = scattered.insns.remove(2);
        scattered.insns.push(moved);
        assert!(!chain_rewrite_is_sound(&scattered, &members, opts, true));

        // The CDP cover undershoots the chain, leaving a 16-bit orphan.
        let mut short = good.clone();
        short.insns[1].insn = Insn::cdp(2);
        assert!(!chain_rewrite_is_sound(&short, &members, opts, true));

        // The CDP cover overshoots the end of the block.
        let mut long = good.clone();
        long.insns[1].insn = Insn::cdp(5);
        assert!(!chain_rewrite_is_sound(&long, &members, opts, true));

        // A 32-bit instruction sits under the cover.
        let mut wide = good.clone();
        wide.insns[3].insn = wide.insns[3].insn.with_width(Width::Arm32);
        assert!(!chain_rewrite_is_sound(&wide, &members, opts, true));
    }

    #[test]
    fn empty_profile_is_a_no_op() {
        let (program, _, _, _) = setup(5_000);
        let mut optimized = program.clone();
        let report = apply_critic_pass(
            &mut optimized,
            &Profile::empty(),
            CriticPassOptions::default(),
        );
        assert_eq!(report, PassReport::default());
        assert_eq!(optimized, program);
    }
}
