//! The ART-style binary rewriting passes (paper Sec. III-B/C, IV-A/B, V).
//!
//! The paper adds one final pass to the Android Runtime compiler: it visits
//! every CritIC of the optimized DFG, **hoists** the chain's instructions
//! into a contiguous run, **re-encodes** them in the 16-bit Thumb format
//! (all or nothing), and emits a **format switch** for the decoder — either
//! the stock branch-pair mechanism (runs on today's hardware, Sec. IV-A) or
//! the extended CDP mnemonic whose 3-bit argument covers up to 9 following
//! 16-bit instructions (Sec. IV-B). This crate implements that pass plus
//! the two criticality-agnostic conversion baselines of Sec. V:
//!
//! * [`critic_pass`] — the CritIC instrumentation pass, with hoist-only
//!   (`Hoist`), conversion with either switch mechanism, and the
//!   `CritIC.Ideal` force-convert variant;
//! * [`opp16`] — **OPP16**: opportunistically converts every run of ≥ 3
//!   consecutive convertible instructions, never reordering;
//! * [`compress`] — the Fine-Grained Thumb Conversion heuristic of
//!   Krishnaswamy & Gupta (LCTES'02): whole-function conversion, accepting
//!   the instruction-count expansion that two-address Thumb forces on
//!   three-address code.
//!
//! Passes preserve every instruction's stable uid (inserted switches get
//! fresh uids), so the trace expander replays the same input over the
//! rewritten binary — the paper's "same parts for all the optimizations
//! evaluated".
//!
//! # Example
//!
//! ```
//! use critic_compiler::{apply_critic_pass, CriticPassOptions};
//! use critic_profiler::{Profiler, ProfilerConfig};
//! use critic_workloads::{ExecutionPath, Trace};
//! use critic_workloads::suite::Suite;
//!
//! let mut app = Suite::Mobile.apps()[0].clone();
//! app.params.num_functions = 24;
//! let program = app.generate_program();
//! let path = ExecutionPath::generate(&program, 7, 20_000);
//! let trace = Trace::expand(&program, &path);
//! let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
//!
//! let mut optimized = program.clone();
//! let report = apply_critic_pass(&mut optimized, &profile, CriticPassOptions::default());
//! assert!(report.chains_applied > 0);
//! assert!(optimized.code_bytes() < program.code_bytes(), "thumbing shrinks the binary");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod compress;
pub mod critic_pass;
pub mod error;
pub mod opp16;
pub mod report;
pub mod uid;
pub mod validate;

pub use compress::{apply_compress, try_apply_compress};
pub use critic_pass::{
    apply_critic_pass, chain_rewrite_is_sound, hoist_is_legal, try_apply_critic_pass,
    CriticPassOptions, SwitchMode,
};
pub use error::PassError;
pub use opp16::{apply_opp16, try_apply_opp16};
pub use report::PassReport;
pub use uid::UidAllocator;
pub use validate::{
    validate_transform, BaselineExecution, DivergenceKind, ValidationError, ValidationReport,
};
