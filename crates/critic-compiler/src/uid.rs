//! Fresh uid allocation for compiler-inserted instructions.

use critic_workloads::{InsnUid, Program};

/// Hands out uids above everything already in the program.
///
/// Inserted CDPs and switch branches need identities for the trace
/// expander; original instructions keep theirs, so memory-address streams
/// survive the rewrite.
#[derive(Debug, Clone)]
pub struct UidAllocator {
    next: u32,
}

impl UidAllocator {
    /// Starts after the program's largest existing uid.
    pub fn for_program(program: &Program) -> UidAllocator {
        let max = program
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .map(|t| t.uid.0)
            .max()
            .unwrap_or(0);
        UidAllocator { next: max + 1 }
    }

    /// A fresh uid.
    pub fn fresh(&mut self) -> InsnUid {
        let uid = InsnUid(self.next);
        self.next += 1;
        uid
    }
}

#[cfg(test)]
mod tests {
    use critic_workloads::{GenParams, ProgramGenerator};

    use super::*;

    #[test]
    fn fresh_uids_do_not_collide() {
        let mut p = GenParams::mobile(3);
        p.num_functions = 8;
        let program = ProgramGenerator::new(p).generate();
        let mut existing: std::collections::HashSet<InsnUid> = program
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .map(|t| t.uid)
            .collect();
        let mut alloc = UidAllocator::for_program(&program);
        for _ in 0..100 {
            assert!(existing.insert(alloc.fresh()), "fresh uid collided");
        }
    }

    #[test]
    fn empty_program_starts_at_one() {
        let program = Program {
            name: "empty".into(),
            suite: critic_workloads::suite::Suite::Mobile,
            functions: Vec::new(),
            blocks: Vec::new(),
            mem: Default::default(),
            load_hints: Default::default(),
        };
        let mut alloc = UidAllocator::for_program(&program);
        assert_eq!(alloc.fresh(), InsnUid(1));
    }
}
