//! Translation validation: the differential oracle.
//!
//! The CritIC pass rewrites hot programs aggressively — it hoists chain
//! members across other instructions and re-encodes them in the 16-bit
//! format. Nothing about that is *obviously* meaning-preserving, and a
//! legality-check bug would silently corrupt every downstream speedup and
//! energy figure. This module proves each transformation after the fact:
//! it executes the baseline and the transformed variant over identical,
//! deterministically seeded inputs on the [`critic_isa`
//! interpreter](critic_isa::MachineState) and compares
//!
//! * the **per-instruction register dataflow** — the sequence of `(register,
//!   value)` writes each original instruction (by stable uid) performs over
//!   the whole run;
//! * the **per-address store order** — the `(uid, value)` sequence landing
//!   at every data address;
//! * the **final architectural state** — registers and the sparse memory
//!   image;
//! * **decode coverage** — every 16-bit instruction in the variant must be
//!   covered by a preceding CDP format switch, or the decoder would
//!   misparse the byte stream (checked only for CDP-mode variants).
//!
//! A divergence is reported as a typed [`ValidationError`] naming the
//! offending chain (by profile rank), the instruction uid, and the first
//! diverging register or address — precise enough for the pass to *demote*
//! exactly the guilty chain and re-try, rather than aborting the run. When
//! several effects diverge, the one earliest in *execution order* is
//! reported: the corrupted write runs strictly before every consumer that
//! propagates it, so the report stays on the root cause (a chain member)
//! instead of an innocent downstream reader with a smaller uid.
//!
//! The comparison is layout-independent by construction: load results and
//! call link tokens are seeded from `(seed, uid, visit)` rather than read
//! from a memory image or a return address, so re-encoding (which moves
//! every subsequent PC) and legal hoists (which may reorder loads across
//! unrelated stores) cannot produce false positives. See the
//! [`critic_isa::interp`] module docs for the full argument.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use critic_isa::{seeded_input, MachineState, Reg, StepError, StepIo, Width};
use critic_profiler::ChainSpec;
use critic_workloads::{ExecutionPath, InsnUid, Program, Trace};

/// Salt distinguishing the link-token stream from the load-value stream.
const LINK_SALT: u64 = 0x6C69_6E6B_746F_6B65; // "linktoke"

/// What diverged between the baseline and the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// An instruction wrote registers in the baseline but never executed a
    /// write in the variant (e.g. a dropped chain member).
    MissingInsn,
    /// An instruction present in the baseline *program* wrote registers in
    /// the variant but never in the baseline run (e.g. a flipped
    /// predicate). Pass-inserted helpers (uids the baseline program does
    /// not contain, such as Compress's two-address `mov` expansion) are
    /// exempt: their effects are judged through the original instructions'
    /// streams, the store sequences, and the final state.
    ExtraInsn,
    /// The `index`-th register write of one instruction differs.
    RegisterWrite {
        /// Which dynamic write of this uid diverged (0-based).
        index: usize,
        /// The baseline's write, if it performed one at this index.
        baseline: Option<(Reg, u32)>,
        /// The variant's write, if it performed one at this index.
        variant: Option<(Reg, u32)>,
    },
    /// The `index`-th store to `addr` differs in writer or value.
    StoreSequence {
        /// The diverging data address.
        addr: u64,
        /// Which store to that address diverged (0-based).
        index: usize,
        /// The baseline's `(writer uid, value)` at this index.
        baseline: Option<(InsnUid, u32)>,
        /// The variant's `(writer uid, value)` at this index.
        variant: Option<(InsnUid, u32)>,
    },
    /// A register holds different values after the full run.
    FinalRegister {
        /// The diverging register.
        reg: Reg,
        /// Its final baseline value.
        baseline: u32,
        /// Its final variant value.
        variant: u32,
    },
    /// A memory byte differs after the full run.
    FinalMemory {
        /// The diverging byte address.
        addr: u64,
        /// The baseline byte, if written.
        baseline: Option<u8>,
        /// The variant byte, if written.
        variant: Option<u8>,
    },
    /// A 16-bit instruction in the variant is not covered by a CDP format
    /// switch (or a CDP covers a 32-bit instruction): the decoder would
    /// misparse the byte stream.
    DecodeGap,
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceKind::MissingInsn => f.write_str("writes in baseline only"),
            DivergenceKind::ExtraInsn => f.write_str("writes in variant only"),
            DivergenceKind::RegisterWrite {
                index,
                baseline,
                variant,
            } => write!(
                f,
                "register write #{index} diverges: baseline {baseline:?}, variant {variant:?}"
            ),
            DivergenceKind::StoreSequence {
                addr,
                index,
                baseline,
                variant,
            } => write!(
                f,
                "store #{index} to {addr:#x} diverges: baseline {baseline:?}, variant {variant:?}"
            ),
            DivergenceKind::FinalRegister {
                reg,
                baseline,
                variant,
            } => write!(
                f,
                "final {reg} diverges: baseline {baseline:#x}, variant {variant:#x}"
            ),
            DivergenceKind::FinalMemory {
                addr,
                baseline,
                variant,
            } => write!(
                f,
                "final memory at {addr:#x} diverges: baseline {baseline:?}, variant {variant:?}"
            ),
            DivergenceKind::DecodeGap => {
                f.write_str("16-bit instruction not covered by a format switch")
            }
        }
    }
}

/// A validation failure: the variant does not compute what the baseline
/// computes (or could not be decoded), attributed to a chain when possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Rank of the offending chain in the profile (`None` when the
    /// divergence could not be attributed to any chain).
    pub chain: Option<usize>,
    /// The first diverging instruction, by stable uid.
    pub uid: Option<InsnUid>,
    /// What diverged.
    pub kind: DivergenceKind,
    /// Interpreter-level failure text, set only when the oracle itself
    /// could not step an instruction (a harness bug, not a miscompile).
    pub internal: Option<String>,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.chain {
            Some(rank) => write!(f, "chain #{rank}")?,
            None => f.write_str("unattributed")?,
        }
        if let Some(uid) = self.uid {
            write!(f, " (insn {uid})")?;
        }
        write!(f, ": {}", self.kind)?;
        if let Some(internal) = &self.internal {
            write!(f, " [{internal}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for ValidationError {}

/// What a clean validation run covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Chains in the profile the variant was validated against.
    pub chains: usize,
    /// Dynamic instructions executed on the baseline.
    pub baseline_steps: u64,
    /// Dynamic instructions executed on the variant.
    pub variant_steps: u64,
}

/// One program's observable behaviour over a seeded run.
///
/// Each recorded effect carries the dynamic step at which it happened.
/// Steps never participate in *equality* (re-encoding inserts format
/// switches and hoisting reorders, so step indices legitimately differ) —
/// they only order divergences, so the report lands on the execution-
/// earliest one, which is the root cause.
struct Execution {
    state: MachineState,
    writes_by_uid: HashMap<InsnUid, Vec<(u64, Reg, u32)>>,
    stores_by_addr: BTreeMap<u64, Vec<(u64, InsnUid, u32)>>,
    steps: u64,
}

/// A baseline execution captured once and replayed against many variants.
///
/// The demotion loop of a validated run re-validates after every demoted
/// chain, and a campaign validates every scheme of an app against the same
/// baseline — re-interpreting the (identical) baseline each time is pure
/// waste. Capture it once with [`BaselineExecution::capture`], then call
/// [`BaselineExecution::validate_variant`] per variant.
pub struct BaselineExecution {
    exec: Execution,
    /// Uids present in the baseline *program* (executed or not). A variant
    /// write from a uid outside this set comes from a pass-inserted helper
    /// (e.g. Compress's two-address `mov` expansion); such a write is not a
    /// divergence in itself — any observable effect it has flows through an
    /// original instruction's write stream, a store sequence, or the final
    /// state, all of which are still compared.
    program_uids: std::collections::HashSet<InsnUid>,
    seed: u64,
}

impl std::fmt::Debug for BaselineExecution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BaselineExecution(seed={}, steps={})",
            self.seed, self.exec.steps
        )
    }
}

impl BaselineExecution {
    /// Interprets `baseline` over the path with inputs seeded from `seed`,
    /// recording every observable effect.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] with `internal` set if the oracle
    /// itself cannot step an instruction — a harness bug, not a miscompile.
    pub fn capture(
        baseline: &Program,
        path: &ExecutionPath,
        seed: u64,
    ) -> Result<BaselineExecution, ValidationError> {
        let exec = execute(baseline, path, seed).map_err(|(uid, e)| internal_error(uid, e))?;
        let program_uids = baseline
            .blocks
            .iter()
            .flat_map(|b| b.insns.iter().map(|t| t.uid))
            .collect();
        Ok(BaselineExecution {
            exec,
            program_uids,
            seed,
        })
    }

    /// Validates `variant` against this captured baseline; see
    /// [`validate_transform`] for the comparison and error-selection rules.
    ///
    /// # Errors
    ///
    /// Exactly as [`validate_transform`].
    pub fn validate_variant(
        &self,
        variant: &Program,
        path: &ExecutionPath,
        chains: &[ChainSpec],
    ) -> Result<ValidationReport, ValidationError> {
        validate_against(self, variant, path, chains)
    }
}

/// Validates that `variant` computes the same thing as `baseline` over the
/// recorded execution path, using inputs seeded from `seed`.
///
/// `chains` is the profile the variant was built from, used only to
/// *attribute* a divergence to the responsible chain; pass `&[]` when
/// validating a chain-free rewrite (OPP16, Compress).
///
/// # Errors
///
/// Returns one [`ValidationError`], chosen deterministically: the static
/// decode-coverage check runs first; then, among all register-dataflow and
/// store-sequence divergences, the one that happened *earliest in
/// execution order* is reported — a corrupted write executes strictly
/// before every consumer that propagates it, so this keeps the report (and
/// the chain attribution) on the faulty rewrite rather than on an innocent
/// downstream reader that merely has a smaller uid. Final registers and
/// final memory are checked last.
pub fn validate_transform(
    baseline: &Program,
    variant: &Program,
    path: &ExecutionPath,
    chains: &[ChainSpec],
    seed: u64,
) -> Result<ValidationReport, ValidationError> {
    let base = BaselineExecution::capture(baseline, path, seed)?;
    validate_against(&base, variant, path, chains)
}

/// The comparison proper, against an already-captured baseline.
fn validate_against(
    baseline: &BaselineExecution,
    variant: &Program,
    path: &ExecutionPath,
    chains: &[ChainSpec],
) -> Result<ValidationReport, ValidationError> {
    // Decode coverage is static and is the only detector for a CDP whose
    // cover count undershoots its chain, so it runs first.
    check_decode_coverage(variant, chains)?;

    let base = &baseline.exec;
    let seed = baseline.seed;
    let var = execute(variant, path, seed).map_err(|(uid, e)| internal_error(uid, e))?;

    // Collect the execution-earliest divergence across register dataflow
    // and store sequences. The root cause (the rewritten instruction that
    // first computed a wrong value) always executes before anything that
    // propagates it, so the minimum-step divergence is the attributable
    // one; scanning in uid or address order instead can land on a consumer
    // in a chain-less block and defeat attribution.
    let mut earliest: Option<(u64, Option<InsnUid>, DivergenceKind)> = None;

    let baseline_uids = &baseline.program_uids;

    // Per-uid register dataflow.
    let mut uids: Vec<InsnUid> = base
        .writes_by_uid
        .keys()
        .chain(var.writes_by_uid.keys())
        .copied()
        .collect();
    uids.sort();
    uids.dedup();
    for uid in uids {
        let b = base.writes_by_uid.get(&uid);
        let v = var.writes_by_uid.get(&uid);
        match (b, v) {
            (Some(b), None) => {
                if let Some(&(step, ..)) = b.first() {
                    consider(&mut earliest, step, Some(uid), DivergenceKind::MissingInsn);
                }
            }
            (None, Some(v)) => {
                if baseline_uids.contains(&uid) {
                    if let Some(&(step, ..)) = v.first() {
                        consider(&mut earliest, step, Some(uid), DivergenceKind::ExtraInsn);
                    }
                }
            }
            (Some(b), Some(v)) => {
                for index in 0..b.len().max(v.len()) {
                    let bw = b.get(index).copied();
                    let vw = v.get(index).copied();
                    let strip = |w: Option<(u64, Reg, u32)>| w.map(|(_, r, x)| (r, x));
                    if strip(bw) != strip(vw) {
                        let step = [bw, vw]
                            .into_iter()
                            .flatten()
                            .map(|(s, ..)| s)
                            .min()
                            .unwrap_or(u64::MAX);
                        consider(
                            &mut earliest,
                            step,
                            Some(uid),
                            DivergenceKind::RegisterWrite {
                                index,
                                baseline: strip(bw),
                                variant: strip(vw),
                            },
                        );
                        break; // later writes of this uid are downstream
                    }
                }
            }
            (None, None) => {}
        }
    }

    // Per-address store order and values.
    let mut addrs: Vec<u64> = base
        .stores_by_addr
        .keys()
        .chain(var.stores_by_addr.keys())
        .copied()
        .collect();
    addrs.sort_unstable();
    addrs.dedup();
    static EMPTY: Vec<(u64, InsnUid, u32)> = Vec::new();
    for addr in addrs {
        let b = base.stores_by_addr.get(&addr).unwrap_or(&EMPTY);
        let v = var.stores_by_addr.get(&addr).unwrap_or(&EMPTY);
        for index in 0..b.len().max(v.len()) {
            let bs = b.get(index).copied();
            let vs = v.get(index).copied();
            let strip = |s: Option<(u64, InsnUid, u32)>| s.map(|(_, uid, x)| (uid, x));
            if strip(bs) != strip(vs) {
                let step = [bs, vs]
                    .into_iter()
                    .flatten()
                    .map(|(s, ..)| s)
                    .min()
                    .unwrap_or(u64::MAX);
                let uid = strip(vs).or(strip(bs)).map(|(uid, _)| uid);
                consider(
                    &mut earliest,
                    step,
                    uid,
                    DivergenceKind::StoreSequence {
                        addr,
                        index,
                        baseline: strip(bs),
                        variant: strip(vs),
                    },
                );
                break; // later stores to this address are downstream
            }
        }
    }

    if let Some((_, uid, kind)) = earliest {
        return Err(attribute(variant, chains, uid, kind));
    }

    // Final architectural state.
    for i in 0..16 {
        if base.state.regs[i] != var.state.regs[i] {
            let Some(reg) = Reg::from_index(i as u8) else {
                continue;
            };
            return Err(attribute(
                variant,
                chains,
                None,
                DivergenceKind::FinalRegister {
                    reg,
                    baseline: base.state.regs[i],
                    variant: var.state.regs[i],
                },
            ));
        }
    }
    if base.state.mem != var.state.mem {
        let mut keys: Vec<u64> = base.state.mem.keys().chain(var.state.mem.keys()).collect();
        keys.sort_unstable();
        keys.dedup();
        for addr in keys {
            let b = base.state.mem.get(addr);
            let v = var.state.mem.get(addr);
            if b != v {
                return Err(attribute(
                    variant,
                    chains,
                    None,
                    DivergenceKind::FinalMemory {
                        addr,
                        baseline: b,
                        variant: v,
                    },
                ));
            }
        }
    }

    Ok(ValidationReport {
        chains: chains.len(),
        baseline_steps: base.steps,
        variant_steps: var.steps,
    })
}

/// Runs one program over the path, recording every observable effect.
fn execute(
    program: &Program,
    path: &ExecutionPath,
    seed: u64,
) -> Result<Execution, (InsnUid, StepError)> {
    let trace = Trace::expand(program, path);
    let mut state = MachineState::seeded(seed);
    let mut visits: HashMap<InsnUid, u64> = HashMap::new();
    let mut writes_by_uid: HashMap<InsnUid, Vec<(u64, Reg, u32)>> = HashMap::new();
    let mut stores_by_addr: BTreeMap<u64, Vec<(u64, InsnUid, u32)>> = BTreeMap::new();
    let mut steps = 0u64;
    for e in trace.iter() {
        let insn = &program.insn(e.at).insn;
        let visit = visits.entry(e.uid).or_insert(0);
        let op = insn.op();
        let io = StepIo {
            mem_addr: e.mem_addr,
            load_value: op
                .is_load()
                .then(|| seeded_input(seed, u64::from(e.uid.0), *visit)),
            link_value: op
                .is_call()
                .then(|| seeded_input(seed ^ LINK_SALT, u64::from(e.uid.0), *visit)),
        };
        *visit += 1;
        let effect = state.step(insn, &io).map_err(|err| (e.uid, err))?;
        let at_step = steps;
        steps += 1;
        if let Some((reg, value)) = effect.reg_write {
            writes_by_uid
                .entry(e.uid)
                .or_default()
                .push((at_step, reg, value));
        }
        if let Some(w) = effect.mem_write {
            stores_by_addr
                .entry(w.addr)
                .or_default()
                .push((at_step, e.uid, w.value));
        }
    }
    Ok(Execution {
        state,
        writes_by_uid,
        stores_by_addr,
        steps,
    })
}

/// Static decode-coverage check: in a CDP-mode variant every 16-bit
/// instruction must sit under a format switch whose cover reaches it, and
/// no switch may cover a 32-bit instruction.
///
/// Variants with no CDP at all (baseline, hoist-only, branch-pair mode) are
/// exempt: the branch-pair mechanism brackets regions with real branches
/// and needs no cover accounting.
fn check_decode_coverage(variant: &Program, chains: &[ChainSpec]) -> Result<(), ValidationError> {
    let has_cdp = variant
        .blocks
        .iter()
        .flat_map(|b| &b.insns)
        .any(|t| t.insn.cdp_covered_len().is_some());
    if !has_cdp {
        return Ok(());
    }
    for block in &variant.blocks {
        let mut cover = 0usize;
        for tagged in &block.insns {
            if let Some(covered) = tagged.insn.cdp_covered_len() {
                cover = covered;
                continue;
            }
            match tagged.insn.width() {
                Width::Thumb16 if cover == 0 => {
                    return Err(attribute(
                        variant,
                        chains,
                        Some(tagged.uid),
                        DivergenceKind::DecodeGap,
                    ));
                }
                Width::Arm32 if cover > 0 => {
                    return Err(attribute(
                        variant,
                        chains,
                        Some(tagged.uid),
                        DivergenceKind::DecodeGap,
                    ));
                }
                _ => cover = cover.saturating_sub(1),
            }
        }
    }
    Ok(())
}

/// Keeps `best` pointing at the divergence with the smallest step.
fn consider(
    best: &mut Option<(u64, Option<InsnUid>, DivergenceKind)>,
    step: u64,
    uid: Option<InsnUid>,
    kind: DivergenceKind,
) {
    if best.as_ref().is_none_or(|&(s, ..)| step < s) {
        *best = Some((step, uid, kind));
    }
}

fn internal_error(uid: InsnUid, err: StepError) -> ValidationError {
    ValidationError {
        chain: None,
        uid: Some(uid),
        kind: DivergenceKind::MissingInsn,
        internal: Some(err.to_string()),
    }
}

/// Names the chain responsible for a divergence at `uid`.
///
/// Direct attribution: the uid is a member of a chain. Fallback: the
/// nearest chain member (by position) in the same variant block — a
/// divergence observed at an innocent bystander is still almost always
/// caused by the chain that was rewritten around it.
fn attribute(
    variant: &Program,
    chains: &[ChainSpec],
    uid: Option<InsnUid>,
    kind: DivergenceKind,
) -> ValidationError {
    let chain = uid.and_then(|uid| attribute_uid(variant, chains, uid));
    ValidationError {
        chain,
        uid,
        kind,
        internal: None,
    }
}

fn attribute_uid(variant: &Program, chains: &[ChainSpec], uid: InsnUid) -> Option<usize> {
    if let Some(rank) = chains.iter().position(|c| c.uids.contains(&uid)) {
        return Some(rank);
    }
    // The uid is not a member; find its block and the nearest member.
    let (block, position) = variant
        .blocks
        .iter()
        .find_map(|b| b.position_of(uid).map(|p| (b.id, p)))?;
    let mut best: Option<(usize, usize)> = None; // (distance, rank)
    for (rank, chain) in chains.iter().enumerate() {
        if chain.block != block {
            continue;
        }
        let block_ref = variant.block(block);
        for &member in &chain.uids {
            let Some(p) = block_ref.position_of(member) else {
                continue;
            };
            let distance = p.abs_diff(position);
            if best.is_none_or(|(d, _)| distance < d) {
                best = Some((distance, rank));
            }
        }
    }
    best.map(|(_, rank)| rank)
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    use critic_profiler::{Profiler, ProfilerConfig};
    use critic_workloads::suite::Suite;
    use critic_workloads::{inject_variant, BlockId, Fault};

    use super::*;
    use crate::critic_pass::{apply_critic_pass, CriticPassOptions};

    fn setup(len: usize) -> (Program, ExecutionPath, Trace, critic_profiler::Profile) {
        setup_app(0, len)
    }

    fn setup_app(
        app_index: usize,
        len: usize,
    ) -> (Program, ExecutionPath, Trace, critic_profiler::Profile) {
        let mut app = Suite::Mobile.apps()[app_index].clone();
        app.params.num_functions = 40;
        let program = app.generate_program();
        let path = ExecutionPath::generate(&program, 21, len);
        let trace = Trace::expand(&program, &path);
        let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
        (program, path, trace, profile)
    }

    #[test]
    fn clean_critic_variant_validates() {
        let (program, path, _, profile) = setup(20_000);
        let mut variant = program.clone();
        let report = apply_critic_pass(&mut variant, &profile, CriticPassOptions::default());
        assert!(report.chains_applied > 0);
        let vr = validate_transform(&program, &variant, &path, &profile.chains, 7)
            .expect("legal transform must validate");
        assert_eq!(vr.chains, profile.chains.len());
        assert!(vr.baseline_steps > 0);
        // Hoisting neither adds nor removes executed original instructions;
        // CDP switches add fetches.
        assert!(vr.variant_steps >= vr.baseline_steps);
    }

    #[test]
    fn all_pass_modes_validate_clean() {
        let (program, path, trace, profile) = setup(15_000);
        let modes = [
            ("critic", CriticPassOptions::default(), profile.clone()),
            ("hoist", CriticPassOptions::hoist_only(), profile.clone()),
            (
                "branch-pair",
                CriticPassOptions::branch_switch(),
                profile.clone(),
            ),
            (
                "ideal",
                CriticPassOptions::ideal(),
                Profiler::new(ProfilerConfig::ideal()).build_profile(&program, &trace),
            ),
        ];
        for (name, opts, prof) in modes {
            let mut variant = program.clone();
            apply_critic_pass(&mut variant, &prof, opts);
            validate_transform(&program, &variant, &path, &prof.chains, 7)
                .unwrap_or_else(|e| panic!("{name} variant failed validation: {e}"));
        }
    }

    #[test]
    fn opp16_and_compress_validate_without_chains() {
        let (program, path, _, _) = setup(15_000);
        let mut opp = program.clone();
        crate::apply_opp16(&mut opp, 3);
        validate_transform(&program, &opp, &path, &[], 7).expect("opp16 must validate");
        let mut comp = program.clone();
        crate::apply_compress(&mut comp);
        validate_transform(&program, &comp, &path, &[], 7).expect("compress must validate");
    }

    #[test]
    fn validation_is_deterministic_in_the_seed() {
        let (program, path, _, profile) = setup(10_000);
        let mut variant = program.clone();
        apply_critic_pass(&mut variant, &profile, CriticPassOptions::default());
        let a = validate_transform(&program, &variant, &path, &profile.chains, 11).unwrap();
        let b = validate_transform(&program, &variant, &path, &profile.chains, 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn every_miscompile_fault_is_caught_and_attributed() {
        // Youtube: its converted chains include immediate-form members, so
        // every miscompile kind (including WrongThumbImmediate) has a site.
        let (program, path, _, profile) = setup_app(9, 20_000);
        let executed: HashSet<BlockId> = path.blocks.iter().copied().collect();
        for (i, fault) in Fault::MISCOMPILES.iter().copied().enumerate() {
            let mut variant = program.clone();
            let report = apply_critic_pass(&mut variant, &profile, CriticPassOptions::default());
            assert!(report.chains_applied > 0);
            // Sanity: the un-faulted variant validates.
            validate_transform(&program, &variant, &path, &profile.chains, 7)
                .expect("clean variant validates");
            inject_variant(&mut variant, fault, 100 + i as u64, &executed)
                .expect("miscompile site exists in a transformed Mobile app");
            let err = validate_transform(&program, &variant, &path, &profile.chains, 7)
                .expect_err(&format!("miscompile {fault} escaped the oracle"));
            assert!(
                err.chain.is_some(),
                "miscompile {fault} not attributed to a chain: {err}"
            );
            assert!(err.chain.unwrap() < profile.chains.len());
            assert!(
                err.internal.is_none(),
                "{fault} tripped an internal error: {err}"
            );
        }
    }

    #[test]
    fn error_display_names_chain_uid_and_divergence() {
        let err = ValidationError {
            chain: Some(3),
            uid: Some(InsnUid(42)),
            kind: DivergenceKind::RegisterWrite {
                index: 0,
                baseline: Some((Reg::R1, 7)),
                variant: Some((Reg::R2, 7)),
            },
            internal: None,
        };
        let text = err.to_string();
        assert!(text.contains("chain #3"), "{text}");
        assert!(text.contains("42"), "{text}");
        assert!(text.contains("register write #0"), "{text}");
    }

    #[test]
    fn identical_programs_always_validate() {
        let (program, path, _, profile) = setup(5_000);
        let report = validate_transform(&program, &program, &path, &profile.chains, 3).unwrap();
        assert_eq!(report.baseline_steps, report.variant_steps);
    }
}
