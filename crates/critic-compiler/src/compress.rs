//! The Compress baseline: Fine-Grained Thumb Conversion (Sec. V, \[78\]).
//!
//! Krishnaswamy & Gupta's LCTES'02 heuristic "first converts a whole
//! function to Thumb, then replaces frequently occurring 'slower thumb
//! instructions' back to 32-bit ARM instructions". Concretely here:
//!
//! * every as-is convertible instruction becomes 16-bit;
//! * three-address ALU-immediate instructions — which Thumb's two-address
//!   forms cannot express — are *expanded* into a 16-bit `mov` plus the
//!   two-address 16-bit op (the instruction-count bloat that makes naive
//!   Thumb ~1.6× larger dynamically);
//! * everything else (predication, high registers, wide immediates) reverts
//!   to 32-bit, as do isolated single-instruction Thumb islands whose
//!   switch overhead cannot amortize — the "slower thumb back to ARM" step.

use critic_isa::{Insn, ThumbIncompatibility};
use critic_workloads::{Program, TaggedInsn};

use crate::error::PassError;
use crate::opp16::convert_runs_in_block;
use crate::report::PassReport;
use crate::uid::UidAllocator;

/// Applies the Compress heuristic to every function.
///
/// # Panics
///
/// Panics if the program is malformed; use [`try_apply_compress`] to get a
/// [`PassError`] instead.
pub fn apply_compress(program: &mut Program) -> PassReport {
    match try_apply_compress(program) {
        Ok(report) => report,
        Err(e) => panic!("compress pass failed: {e}"),
    }
}

/// Fallible variant of [`apply_compress`]: rejects structurally invalid
/// programs with a typed [`PassError`] before rewriting anything.
pub fn try_apply_compress(program: &mut Program) -> Result<PassReport, PassError> {
    program.validate()?;
    let mut alloc = UidAllocator::for_program(program);
    let mut report = PassReport::default();
    for block in &mut program.blocks {
        // Phase 1: two-address expansion, so more instructions *can*
        // convert. (`mov rd, rs; op rd, rd, #imm` replaces
        // `op rd, rs, #imm`.)
        let mut expanded: Vec<TaggedInsn> = Vec::with_capacity(block.insns.len());
        for tagged in &block.insns {
            let insn = tagged.insn;
            match insn.thumb_convertible() {
                Err(ThumbIncompatibility::NotTwoAddress) => {
                    let (Some(dst), Some(src), Some(imm)) =
                        (insn.dst(), insn.srcs().get(0), insn.imm())
                    else {
                        expanded.push(*tagged);
                        continue;
                    };
                    let mov = Insn::alu(critic_isa::Opcode::Mov, dst, &[src]);
                    let op = Insn::alu_imm(insn.op(), dst, dst, imm);
                    if mov.thumb_convertible().is_ok() && op.thumb_convertible().is_ok() {
                        expanded.push(TaggedInsn::new(mov, alloc.fresh()));
                        expanded.push(TaggedInsn::new(op, tagged.uid));
                        report.insns_expanded += 1;
                    } else {
                        expanded.push(*tagged);
                    }
                }
                _ => expanded.push(*tagged),
            }
        }
        block.insns = expanded;
        // Phase 2: convert every run of >= 2 (isolated islands stay ARM —
        // their switch overhead never amortizes).
        report.absorb(convert_runs_in_block(block, 2, &mut alloc)?);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use critic_isa::Width;
    use critic_workloads::suite::Suite;
    use critic_workloads::{ExecutionPath, Trace};

    use super::*;

    fn program() -> Program {
        let mut app = Suite::Mobile.apps()[0].clone();
        app.params.num_functions = 30;
        app.generate_program()
    }

    #[test]
    fn compress_converts_and_expands() {
        let original = program();
        let mut optimized = original.clone();
        let report = apply_compress(&mut optimized);
        assert!(report.insns_converted > 0);
        assert!(
            report.insns_expanded > 0,
            "two-address expansion should trigger"
        );
        assert!(
            optimized.static_insn_count() > original.static_insn_count(),
            "expansion grows the instruction count"
        );
    }

    #[test]
    fn compress_converts_the_most_instructions() {
        // Fig. 13b: Compress converts ~50% more of the dynamic stream than
        // CritIC and more than OPP16.
        let original = program();
        let path = ExecutionPath::generate(&original, 5, 30_000);

        let mut compressed = original.clone();
        apply_compress(&mut compressed);
        let compress_thumb = Trace::expand(&compressed, &path).thumb_fraction();

        let mut opp = original.clone();
        crate::apply_opp16(&mut opp, crate::opp16::OPP16_MIN_RUN);
        let opp_thumb = Trace::expand(&opp, &path).thumb_fraction();

        assert!(
            compress_thumb > opp_thumb,
            "compress ({compress_thumb:.3}) should exceed OPP16 ({opp_thumb:.3})"
        );
    }

    #[test]
    fn expansion_preserves_semantics() {
        // `op rd, rs, #imm` == `mov rd, rs; op rd, rd, #imm`: the dynamic
        // stream must execute the extra mov right before the op and feed
        // the op with the mov's value.
        let original = program();
        let path = ExecutionPath::generate(&original, 5, 10_000);
        let mut optimized = original.clone();
        apply_compress(&mut optimized);
        let trace = Trace::expand(&optimized, &path);
        // Every original instruction still appears with its uid.
        let original_uids: std::collections::HashSet<_> = original
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .map(|t| t.uid)
            .collect();
        let seen: std::collections::HashSet<_> = trace.iter().map(|e| e.uid).collect();
        for block in &original.blocks {
            for t in &block.insns {
                let _ = t;
            }
        }
        // (Blocks never visited by the path are legitimately absent.)
        assert!(
            seen.iter()
                .filter(|uid| original_uids.contains(uid))
                .count()
                > 0
        );
        // Expanded movs execute: dynamic stream grows.
        let baseline = Trace::expand(&original, &path);
        assert!(
            trace.len() > baseline.len(),
            "expansion adds executed instructions"
        );
    }

    #[test]
    fn no_isolated_thumb_islands() {
        let mut optimized = program();
        apply_compress(&mut optimized);
        for block in &optimized.blocks {
            for (i, t) in block.insns.iter().enumerate() {
                if t.insn.width() == Width::Thumb16 && !t.insn.op().is_format_switch() {
                    let prev_thumb = i > 0 && block.insns[i - 1].insn.width() == Width::Thumb16;
                    let next_thumb = block
                        .insns
                        .get(i + 1)
                        .map(|n| n.insn.width() == Width::Thumb16)
                        .unwrap_or(false);
                    assert!(
                        prev_thumb || next_thumb,
                        "isolated thumb instruction at {}[{}]",
                        block.id,
                        i
                    );
                }
            }
        }
    }
}
