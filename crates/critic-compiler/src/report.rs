//! Pass outcome accounting.

use serde::{Deserialize, Serialize};

/// What a rewriting pass did to the binary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassReport {
    /// CritIC chains successfully applied (hoisted and/or converted).
    pub chains_applied: u64,
    /// Chains skipped because hoisting them would change semantics
    /// (register reuse between the chain's span and its members).
    pub chains_skipped_legality: u64,
    /// Chains skipped because a member uid was consumed by a higher-ranked
    /// chain or no longer present.
    pub chains_skipped_missing: u64,
    /// Chains whose rewrite failed the post-rewrite soundness re-check (or
    /// downstream validation) and were rolled back to their original 32-bit
    /// form.
    pub chains_demoted: u64,
    /// Instructions re-encoded to the 16-bit format.
    pub insns_converted: u64,
    /// Instructions added by two-address expansion (Compress).
    pub insns_expanded: u64,
    /// CDP format switches inserted.
    pub cdps_inserted: u64,
    /// Branch-pair switch instructions inserted (approach 1).
    pub switch_branches_inserted: u64,
}

impl PassReport {
    /// Merges another report into this one.
    pub fn absorb(&mut self, other: PassReport) {
        self.chains_applied += other.chains_applied;
        self.chains_skipped_legality += other.chains_skipped_legality;
        self.chains_skipped_missing += other.chains_skipped_missing;
        self.chains_demoted += other.chains_demoted;
        self.insns_converted += other.insns_converted;
        self.insns_expanded += other.insns_expanded;
        self.cdps_inserted += other.cdps_inserted;
        self.switch_branches_inserted += other.switch_branches_inserted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = PassReport {
            chains_applied: 1,
            insns_converted: 5,
            ..Default::default()
        };
        let b = PassReport {
            chains_applied: 2,
            cdps_inserted: 3,
            ..Default::default()
        };
        a.absorb(b);
        assert_eq!(a.chains_applied, 3);
        assert_eq!(a.insns_converted, 5);
        assert_eq!(a.cdps_inserted, 3);
    }
}
