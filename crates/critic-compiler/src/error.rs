//! Structured errors for the rewriting passes.
//!
//! The passes consume two kinds of untrusted input: a [`Program`] that may
//! come from a generator bug or a corrupted serialization, and a profile
//! whose [`ChainSpec`]s may be stale or malformed. The `try_*` entry points
//! reject both with a typed [`PassError`] instead of panicking; the legacy
//! panicking wrappers remain for callers that have already validated.
//!
//! [`Program`]: critic_workloads::Program
//! [`ChainSpec`]: critic_profiler::ChainSpec

use std::fmt;

use critic_workloads::{BlockId, InsnUid, ProgramError};
use serde::{Deserialize, Serialize};

/// Why a rewriting pass refused to run (or aborted mid-flight).
///
/// On `Err` the program may have been partially rewritten — treat it as
/// poisoned and rebuild from the pristine original.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PassError {
    /// The input program failed structural validation before the pass ran.
    InvalidProgram(ProgramError),
    /// A profiled chain names a block outside the program's arena — the
    /// profile belongs to a different (or differently generated) program.
    ChainBlockOutOfRange {
        /// Rank of the offending chain in the profile.
        chain: usize,
        /// The block id the chain claims to live in.
        block: BlockId,
        /// How many blocks the program actually has.
        num_blocks: usize,
    },
    /// A profiled chain has no members.
    EmptyChain {
        /// Rank of the offending chain in the profile.
        chain: usize,
    },
    /// An instruction the convertibility scan accepted failed `to_thumb`;
    /// indicates an ISA-model bug or a program mutated mid-pass.
    Unconvertible {
        /// Stable uid of the instruction that would not convert.
        uid: InsnUid,
    },
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::InvalidProgram(e) => write!(f, "input program is invalid: {e}"),
            PassError::ChainBlockOutOfRange {
                chain,
                block,
                num_blocks,
            } => write!(
                f,
                "profile chain #{chain} names {block:?} but the program has \
                 {num_blocks} blocks (stale or foreign profile?)"
            ),
            PassError::EmptyChain { chain } => {
                write!(f, "profile chain #{chain} has no members")
            }
            PassError::Unconvertible { uid } => write!(
                f,
                "instruction {uid:?} passed the convertibility scan but failed \
                 Thumb conversion"
            ),
        }
    }
}

impl std::error::Error for PassError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PassError::InvalidProgram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for PassError {
    fn from(e: ProgramError) -> Self {
        PassError::InvalidProgram(e)
    }
}
