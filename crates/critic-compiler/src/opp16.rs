//! OPP16: criticality-agnostic opportunistic Thumb conversion (Sec. V).
//!
//! "Opportunistically convert any amenable sequence of consecutive dynamic
//! instructions (sequence has to be of at least length 3) to the 16-bit
//! Thumb format, regardless of whether they are critical or not. … OPP16
//! will NOT move the instructions around."

use critic_isa::Insn;
use critic_workloads::{BasicBlock, Program, TaggedInsn};

use crate::error::PassError;
use crate::report::PassReport;
use crate::uid::UidAllocator;

/// Default minimum run length the paper prescribes.
pub const OPP16_MIN_RUN: usize = 3;

/// Applies OPP16 to every block: converts maximal runs of at least
/// `min_run` consecutive convertible 32-bit instructions, inserting one CDP
/// per ≤9-instruction chunk, without any reordering.
///
/// Running it after the CritIC pass composes into the paper's
/// `OPP16+CritIC` scheme: already-converted regions are skipped.
///
/// # Panics
///
/// Panics if the program is malformed; use [`try_apply_opp16`] to get a
/// [`PassError`] instead.
pub fn apply_opp16(program: &mut Program, min_run: usize) -> PassReport {
    match try_apply_opp16(program, min_run) {
        Ok(report) => report,
        Err(e) => panic!("opp16 pass failed: {e}"),
    }
}

/// Fallible variant of [`apply_opp16`]: rejects structurally invalid
/// programs with a typed [`PassError`] before rewriting anything.
pub fn try_apply_opp16(program: &mut Program, min_run: usize) -> Result<PassReport, PassError> {
    program.validate()?;
    let mut alloc = UidAllocator::for_program(program);
    let mut report = PassReport::default();
    for block in &mut program.blocks {
        report.absorb(convert_runs_in_block(block, min_run, &mut alloc)?);
    }
    Ok(report)
}

/// Finds and converts the convertible runs of one block. Shared with the
/// Compress heuristic.
pub(crate) fn convert_runs_in_block(
    block: &mut BasicBlock,
    min_run: usize,
    alloc: &mut UidAllocator,
) -> Result<PassReport, PassError> {
    let mut report = PassReport::default();
    // Collect maximal convertible all-ARM runs first; rewrite back to front
    // so insertion indices stay valid.
    let mut runs: Vec<(usize, usize)> = Vec::new(); // [start, end)
    let mut start: Option<usize> = None;
    for i in 0..=block.insns.len() {
        let eligible = block
            .insns
            .get(i)
            .map(|t| {
                t.insn.width() == critic_isa::Width::Arm32
                    && !t.insn.op().is_format_switch()
                    && t.insn.thumb_convertible().is_ok()
            })
            .unwrap_or(false);
        match (start, eligible) {
            (None, true) => start = Some(i),
            (Some(s), false) => {
                if i - s >= min_run {
                    runs.push((s, i));
                }
                start = None;
            }
            _ => {}
        }
    }
    for &(s, e) in runs.iter().rev() {
        // Convert the run. The scan above established convertibility, so a
        // failure here means the ISA model disagrees with its own
        // predicate — surface it rather than trusting either side.
        for t in &mut block.insns[s..e] {
            t.insn = t
                .insn
                .to_thumb()
                .map_err(|_| PassError::Unconvertible { uid: t.uid })?;
            report.insns_converted += 1;
        }
        // Insert one CDP per chunk of up to 9, back to front.
        let len = e - s;
        let mut chunk_starts: Vec<(usize, usize)> = Vec::new();
        let mut offset = 0usize;
        while offset < len {
            let chunk = (len - offset).min(critic_isa::MAX_CDP_CHAIN_LEN);
            chunk_starts.push((s + offset, chunk));
            offset += chunk;
        }
        for &(at, chunk) in chunk_starts.iter().rev() {
            block
                .insns
                .insert(at, TaggedInsn::new(Insn::cdp(chunk as u8), alloc.fresh()));
            report.cdps_inserted += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use critic_isa::Width;
    use critic_workloads::suite::Suite;
    use critic_workloads::{ExecutionPath, Trace};

    use super::*;

    fn program() -> Program {
        let mut app = Suite::Mobile.apps()[0].clone();
        app.params.num_functions = 30;
        app.generate_program()
    }

    #[test]
    fn opp16_converts_runs_without_reordering() {
        let original = program();
        let mut optimized = original.clone();
        let report = apply_opp16(&mut optimized, OPP16_MIN_RUN);
        assert!(report.insns_converted > 0);
        assert!(report.cdps_inserted > 0);
        assert_eq!(report.chains_applied, 0);
        // Original instructions keep their relative order.
        for (a, b) in original.blocks.iter().zip(&optimized.blocks) {
            let orig: Vec<_> = a.insns.iter().map(|t| t.uid).collect();
            let now: Vec<_> = b
                .insns
                .iter()
                .map(|t| t.uid)
                .filter(|uid| orig.contains(uid))
                .collect();
            assert_eq!(orig, now, "OPP16 must not move instructions in {}", a.id);
        }
    }

    #[test]
    fn opp16_respects_the_minimum_run() {
        let mut optimized = program();
        apply_opp16(&mut optimized, OPP16_MIN_RUN);
        // Every converted region (after its CDP) has at least min_run
        // members or belongs to a longer chunked run.
        for block in &optimized.blocks {
            let mut i = 0;
            while i < block.insns.len() {
                if block.insns[i].insn.width() == Width::Thumb16
                    && !block.insns[i].insn.op().is_format_switch()
                {
                    let mut j = i;
                    while j < block.insns.len() && block.insns[j].insn.width() == Width::Thumb16 {
                        j += 1;
                    }
                    // The run includes its CDPs; subtract them.
                    let cdps = block.insns[i..j]
                        .iter()
                        .filter(|t| t.insn.op().is_format_switch())
                        .count();
                    assert!(
                        j - i - cdps >= OPP16_MIN_RUN,
                        "run of {} converted insns in {}",
                        j - i - cdps,
                        block.id
                    );
                    i = j;
                } else {
                    i += 1;
                }
            }
        }
    }

    #[test]
    fn opp16_converts_more_than_critic_coverage() {
        // Fig. 13b: CritIC converts ~37% fewer instructions than OPP16.
        use critic_profiler::{Profiler, ProfilerConfig};
        let original = program();
        let path = ExecutionPath::generate(&original, 5, 30_000);
        let trace = Trace::expand(&original, &path);
        let profile = Profiler::new(ProfilerConfig::default()).build_profile(&original, &trace);

        let mut with_critic = original.clone();
        crate::apply_critic_pass(&mut with_critic, &profile, Default::default());
        let critic_thumb = Trace::expand(&with_critic, &path).thumb_fraction();

        let mut with_opp = original.clone();
        apply_opp16(&mut with_opp, OPP16_MIN_RUN);
        let opp_thumb = Trace::expand(&with_opp, &path).thumb_fraction();

        assert!(
            opp_thumb > critic_thumb,
            "OPP16 ({opp_thumb:.3}) should convert more than CritIC ({critic_thumb:.3})"
        );
    }

    #[test]
    fn opp16_composes_after_critic() {
        use critic_profiler::{Profiler, ProfilerConfig};
        let original = program();
        let path = ExecutionPath::generate(&original, 5, 30_000);
        let trace = Trace::expand(&original, &path);
        let profile = Profiler::new(ProfilerConfig::default()).build_profile(&original, &trace);

        let mut combined = original.clone();
        let critic_report = crate::apply_critic_pass(&mut combined, &profile, Default::default());
        let opp_report = apply_opp16(&mut combined, OPP16_MIN_RUN);
        assert!(critic_report.insns_converted > 0 && opp_report.insns_converted > 0);
        let combined_thumb = Trace::expand(&combined, &path).thumb_fraction();

        // The combination converts more than CritIC alone (Fig. 13a's
        // OPP16+CritIC point); it may convert slightly *less* than OPP16
        // alone because the hoisted chains and their CDPs fragment the
        // remaining runs — the paper's point is that it performs best, not
        // that it converts most.
        let mut critic_only = original.clone();
        crate::apply_critic_pass(&mut critic_only, &profile, Default::default());
        let critic_thumb = Trace::expand(&critic_only, &path).thumb_fraction();
        assert!(
            combined_thumb > critic_thumb,
            "the combination converts more than CritIC alone"
        );
    }

    #[test]
    fn dataflow_is_untouched() {
        let original = program();
        let path = ExecutionPath::generate(&original, 5, 10_000);
        let before = Trace::expand(&original, &path);
        let mut optimized = original.clone();
        apply_opp16(&mut optimized, OPP16_MIN_RUN);
        let after = Trace::expand(&optimized, &path);
        // Same original instructions in the same order with the same memory
        // addresses; only widths and CDPs differ.
        let essence = |t: &Trace| -> Vec<(critic_workloads::InsnUid, Option<u64>)> {
            t.iter()
                .filter(|e| !e.is_cdp())
                .map(|e| (e.uid, e.mem_addr))
                .collect()
        };
        assert_eq!(essence(&before), essence(&after));
    }
}
