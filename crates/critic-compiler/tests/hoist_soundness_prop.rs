//! Property test: `hoist_is_legal` is *sound* for the chain shape the
//! CritIC pass hoists (register-writing ALU chains, the paper's CritICs).
//!
//! For random straight-line blocks and random candidate chains, whenever
//! the legality predicate approves a hoist, performing the pass's exact
//! reordering (members pulled into a contiguous run at the first member's
//! position, everything else keeping relative order) must preserve the
//! architectural result: same final registers, flags, and memory under the
//! `critic-isa` interpreter. In particular the pass can never move an
//! instruction across a redefinition of one of its source registers — the
//! interpreter would observe the stale/overwritten value and the final
//! state would diverge.
//!
//! The predicate is deliberately conservative, so no claim is made for
//! rejected chains; the property is one-sided.

use critic_compiler::hoist_is_legal;
use critic_isa::{seeded_input, Cond, Insn, MachineState, Opcode, Reg, StepIo};
use critic_workloads::{InsnUid, TaggedInsn};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// Low registers the generator draws operands from.
const REGS: [Reg; 6] = [Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5];

fn reg(rng: &mut TestRng) -> Reg {
    REGS[rng.next_u64() as usize % REGS.len()]
}

/// One random straight-line instruction. The mix intentionally includes
/// the hazards the legality predicate must respect: plain ALU ops,
/// immediates, compares (flag writers), predicated ALU ops (flag
/// readers), loads, and stores.
fn random_insn(rng: &mut TestRng) -> Insn {
    const ALU: [Opcode; 5] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Orr,
        Opcode::And,
        Opcode::Eor,
    ];
    match rng.next_u64() % 100 {
        0..=44 => {
            let op = ALU[rng.next_u64() as usize % ALU.len()];
            Insn::alu(op, reg(rng), &[reg(rng), reg(rng)])
        }
        45..=54 => Insn::alu_imm(
            Opcode::Add,
            reg(rng),
            reg(rng),
            (rng.next_u64() % 32) as i32,
        ),
        55..=64 => Insn::mov_imm(reg(rng), (rng.next_u64() % 128) as i32),
        65..=74 => Insn::compare(Opcode::Cmp, reg(rng), reg(rng)),
        75..=84 => {
            let op = ALU[rng.next_u64() as usize % ALU.len()];
            let cond = if rng.next_u64().is_multiple_of(2) {
                Cond::Eq
            } else {
                Cond::Ne
            };
            Insn::alu(op, reg(rng), &[reg(rng), reg(rng)]).with_cond(cond)
        }
        85..=92 => Insn::load(
            Opcode::Ldr,
            reg(rng),
            reg(rng),
            (rng.next_u64() % 16) as i32 * 4,
        ),
        _ => Insn::store(
            Opcode::Str,
            reg(rng),
            reg(rng),
            (rng.next_u64() % 16) as i32 * 4,
        ),
    }
}

/// Whether an instruction has the shape of a CritIC chain member: writes a
/// register, touches no memory, writes no flags. (The profiler's chains
/// are ALU dataflow chains; loads, stores, and compares never join one.)
fn chain_member_shape(insn: &Insn) -> bool {
    insn.dst().is_some() && !insn.op().is_mem() && !insn.op().is_branch()
}

/// Executes a straight-line sequence on the interpreter. Each element
/// carries the uid it had in the *original* order so a hoisted load keeps
/// its seeded input value — the value models "what the address held",
/// which moving the instruction must not change.
fn execute(seq: &[(Insn, u64)], seed: u64) -> MachineState {
    let mut state = MachineState::seeded(seed);
    for &(insn, uid) in seq {
        let op = insn.op();
        let mem_addr = op.is_mem().then(|| {
            // Address = base + offset, derived from live register state so
            // both orders compute it the same way for unmoved dataflow.
            let base_slot = if op.is_store() { 1 } else { 0 };
            let base = insn
                .srcs()
                .get(base_slot)
                .map_or(0, |r| state.regs[r.index() as usize]);
            u64::from(base.wrapping_add(insn.imm().unwrap_or(0) as u32)) & 0xFFFF
        });
        let io = StepIo {
            mem_addr,
            load_value: op.is_load().then(|| seeded_input(seed, uid, 0)),
            link_value: None,
        };
        state
            .step(&insn, &io)
            .expect("straight-line step cannot fail");
    }
    state
}

/// The pass's hoist, verbatim: remove the members back to front, reinsert
/// them contiguously at the first member's position.
fn hoist(seq: &[(Insn, u64)], positions: &[usize]) -> Vec<(Insn, u64)> {
    let mut out: Vec<(Insn, u64)> = seq.to_vec();
    let members: Vec<(Insn, u64)> = positions.iter().map(|&p| seq[p]).collect();
    for &p in positions.iter().rev() {
        out.remove(p);
    }
    let first = positions[0];
    for (k, member) in members.iter().enumerate() {
        out.insert(first + k, *member);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// A legal hoist never changes the architectural result.
    #[test]
    fn legal_hoists_preserve_the_interpreted_state(seed: u64) {
        let mut rng = TestRng::new(seed);
        let len = 6 + (rng.next_u64() % 10) as usize;
        let seq: Vec<(Insn, u64)> =
            (0..len).map(|i| (random_insn(&mut rng), i as u64)).collect();

        // Candidate chain: 2-4 member-shaped instructions, in order.
        let candidates: Vec<usize> = seq
            .iter()
            .enumerate()
            .filter(|(_, (insn, _))| chain_member_shape(insn))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(candidates.len() >= 2);
        let want = 2 + (rng.next_u64() % 3) as usize;
        let mut positions: Vec<usize> = Vec::new();
        let mut pool = candidates;
        while positions.len() < want && !pool.is_empty() {
            positions.push(pool.remove(rng.next_u64() as usize % pool.len()));
        }
        positions.sort_unstable();

        let tagged: Vec<TaggedInsn> = seq
            .iter()
            .map(|&(insn, uid)| TaggedInsn::new(insn, InsnUid(uid as u32)))
            .collect();
        prop_assume!(hoist_is_legal(&tagged, &positions));

        let hoisted = hoist(&seq, &positions);
        let input_seed = seed ^ 0x9E37_79B9_7F4A_7C15;
        let before = execute(&seq, input_seed);
        let after = execute(&hoisted, input_seed);
        prop_assert_eq!(before.regs, after.regs, "final registers diverge");
        prop_assert_eq!(before.flags, after.flags, "final flags diverge");
        prop_assert_eq!(before.mem, after.mem, "final memory diverges");
    }

    /// The specific defect the predicate exists to prevent: an interloper
    /// that redefines a chain member's source register is always rejected.
    /// (`positions` hoisting `mov r0, #1; add r2, r0, r0` over `mov r0,
    /// #2` would make the add read the wrong generation of r0.)
    #[test]
    fn redefinition_of_a_member_source_is_always_illegal(imm in 0i32..64) {
        let seq = [
            Insn::mov_imm(Reg::R0, 1),
            Insn::mov_imm(Reg::R0, imm),
            Insn::alu(Opcode::Add, Reg::R2, &[Reg::R0, Reg::R0]),
        ];
        let tagged: Vec<TaggedInsn> =
            seq.iter().enumerate().map(|(i, &insn)| TaggedInsn::new(insn, InsnUid(i as u32))).collect();
        prop_assert!(!hoist_is_legal(&tagged, &[0, 2]));
    }
}
