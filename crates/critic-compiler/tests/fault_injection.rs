//! Fault-injection tests for the rewriting passes.
//!
//! The contract under test: feeding a corrupted program or a stale/foreign
//! profile into `try_apply_critic_pass` / `try_apply_opp16` /
//! `try_apply_compress` returns a typed [`PassError`] — the pass never
//! panics and never silently rewrites garbage.

use critic_compiler::{
    try_apply_compress, try_apply_critic_pass, try_apply_opp16, CriticPassOptions, PassError,
};
use critic_profiler::{ChainSpec, Profile, Profiler, ProfilerConfig};
use critic_workloads::suite::Suite;
use critic_workloads::{
    inject_program, BlockId, ExecutionPath, Fault, FaultTarget, InsnUid, Program, Trace,
};

fn setup() -> (Program, Profile) {
    let mut app = Suite::Mobile.apps()[0].clone();
    app.params.num_functions = 24;
    let program = app.generate_program();
    let path = ExecutionPath::generate(&program, 11, 20_000);
    let trace = Trace::expand(&program, &path);
    let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
    (program, profile)
}

/// Every program-targeting fault in the catalog is either rejected by the
/// pass's up-front validation or (for faults only a trace can expose, like
/// a truncated-but-well-formed block) tolerated without a panic.
#[test]
fn critic_pass_survives_every_program_fault() {
    let (pristine, profile) = setup();
    for (i, fault) in Fault::ALL.iter().copied().enumerate() {
        if fault.target() != FaultTarget::Program {
            continue;
        }
        let mut program = pristine.clone();
        inject_program(&mut program, fault, 1000 + i as u64).expect("fault has a site");
        let statically_invalid = program.validate().is_err();
        let result = try_apply_critic_pass(&mut program, &profile, CriticPassOptions::default());
        if statically_invalid {
            assert!(
                matches!(result, Err(PassError::InvalidProgram(_))),
                "fault {fault} produced an invalid program but the pass ran: {result:?}"
            );
        } else {
            // Structurally sound corruption (e.g. a truncated block) must
            // not panic; stale chains are skipped, not applied blindly.
            assert!(
                result.is_ok(),
                "fault {fault} should be tolerated: {result:?}"
            );
        }
    }
}

#[test]
fn opp16_and_compress_reject_invalid_programs() {
    let (pristine, _) = setup();
    for (i, fault) in Fault::ALL.iter().copied().enumerate() {
        if fault.target() != FaultTarget::Program {
            continue;
        }
        let mut for_opp16 = pristine.clone();
        inject_program(&mut for_opp16, fault, 2000 + i as u64).expect("fault has a site");
        let statically_invalid = for_opp16.validate().is_err();
        let mut for_compress = for_opp16.clone();

        let opp = try_apply_opp16(&mut for_opp16, critic_compiler::opp16::OPP16_MIN_RUN);
        let cmp = try_apply_compress(&mut for_compress);
        if statically_invalid {
            assert!(
                matches!(opp, Err(PassError::InvalidProgram(_))),
                "opp16 vs {fault}: {opp:?}"
            );
            assert!(
                matches!(cmp, Err(PassError::InvalidProgram(_))),
                "compress vs {fault}: {cmp:?}"
            );
        } else {
            assert!(opp.is_ok(), "opp16 vs {fault}: {opp:?}");
            assert!(cmp.is_ok(), "compress vs {fault}: {cmp:?}");
        }
    }
}

/// A profile whose chain names a block beyond the program's arena is the
/// classic stale-profile hazard; the old code indexed straight into the
/// block arena and panicked.
#[test]
fn foreign_profile_block_is_a_typed_error() {
    let (mut program, mut profile) = setup();
    let bogus = BlockId(program.blocks.len() as u32 + 17);
    profile.chains.insert(
        0,
        ChainSpec {
            block: bogus,
            uids: vec![InsnUid(0), InsnUid(1)],
            dynamic_count: 1,
            avg_fanout: 9.0,
            thumb_convertible: true,
        },
    );
    let err = try_apply_critic_pass(&mut program, &profile, CriticPassOptions::default())
        .expect_err("out-of-range block must be rejected");
    match err {
        PassError::ChainBlockOutOfRange {
            chain,
            block,
            num_blocks,
        } => {
            assert_eq!(chain, 0);
            assert_eq!(block, bogus);
            assert_eq!(num_blocks, program.blocks.len());
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn empty_chain_is_a_typed_error() {
    let (mut program, mut profile) = setup();
    profile.chains.push(ChainSpec {
        block: BlockId(0),
        uids: Vec::new(),
        dynamic_count: 1,
        avg_fanout: 9.0,
        thumb_convertible: true,
    });
    let err = try_apply_critic_pass(&mut program, &profile, CriticPassOptions::default())
        .expect_err("empty chain must be rejected");
    assert!(
        matches!(err, PassError::EmptyChain { .. }),
        "wrong error: {err}"
    );
}

/// Chains whose uids simply do not exist (as opposed to a bad block id) are
/// the benign kind of staleness: the pass skips them and reports it.
#[test]
fn missing_uids_are_skipped_not_fatal() {
    let (mut program, mut profile) = setup();
    profile.chains.insert(
        0,
        ChainSpec {
            block: BlockId(0),
            uids: vec![InsnUid(0xDEAD_BEEF), InsnUid(0xDEAD_BEF0)],
            dynamic_count: 1,
            avg_fanout: 9.0,
            thumb_convertible: true,
        },
    );
    let report = try_apply_critic_pass(&mut program, &profile, CriticPassOptions::default())
        .expect("missing uids are benign");
    assert!(report.chains_skipped_missing > 0);
}

/// `Err` from validation leaves the program untouched — callers may safely
/// fall back to the unoptimized binary.
#[test]
fn rejected_pass_leaves_program_untouched() {
    let (pristine, mut profile) = setup();
    profile.chains.push(ChainSpec {
        block: BlockId(u32::MAX),
        uids: vec![InsnUid(0)],
        dynamic_count: 1,
        avg_fanout: 9.0,
        thumb_convertible: true,
    });
    let mut program = pristine.clone();
    assert!(try_apply_critic_pass(&mut program, &profile, CriticPassOptions::default()).is_err());
    assert_eq!(program, pristine);
}

#[test]
fn errors_render_useful_messages() {
    let msg = PassError::ChainBlockOutOfRange {
        chain: 3,
        block: BlockId(99),
        num_blocks: 40,
    }
    .to_string();
    assert!(msg.contains("chain #3"), "{msg}");
    assert!(msg.contains("40 blocks"), "{msg}");
    let msg = PassError::EmptyChain { chain: 7 }.to_string();
    assert!(msg.contains("chain #7"), "{msg}");
}
