use critic_profiler::{Profiler, ProfilerConfig};
use critic_workloads::suite::Suite;
use critic_workloads::{ExecutionPath, Trace};

#[test]
#[ignore]
fn diag_legal() {
    let app = Suite::Mobile.apps()[0].clone();
    let program = app.generate_program();
    let path = ExecutionPath::generate(&program, app.path_seed(), 240_000);
    let trace = Trace::expand(&program, &path);
    let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
    let mut shown = 0;
    for spec in &profile.chains {
        let block = program.block(spec.block);
        let positions: Option<Vec<usize>> =
            spec.uids.iter().map(|&u| block.position_of(u)).collect();
        let Some(pos) = positions else { continue };
        // replicate legality check and find the conflict
        let member_set: std::collections::HashSet<usize> = pos.iter().copied().collect();
        let last = *pos.last().unwrap();
        'outer: for x in pos[0]..=last {
            if member_set.contains(&x) {
                continue;
            }
            let xi = &block.insns[x].insn;
            for &p in pos.iter().filter(|&&p| p > x) {
                let m = &block.insns[p].insn;
                let mut reason = "";
                if let Some(md) = m.dst() {
                    if xi.srcs().iter().any(|s| s == md) {
                        reason = "X reads m.dst";
                    }
                    if xi.dst() == Some(md) {
                        reason = "X.dst == m.dst";
                    }
                }
                if let Some(xd) = xi.dst() {
                    if m.srcs().iter().any(|s| s == xd) {
                        reason = "m reads X.dst";
                    }
                }
                let wf = |i: &critic_isa::Insn| {
                    matches!(
                        i.op(),
                        critic_isa::Opcode::Cmp
                            | critic_isa::Opcode::Cmn
                            | critic_isa::Opcode::Tst
                            | critic_isa::Opcode::Vcmp
                    )
                };
                if wf(xi) && m.is_predicated() {
                    reason = "flags: cmp X, pred m";
                }
                if wf(m) && xi.is_predicated() {
                    reason = "flags: pred X, cmp m";
                }
                if !reason.is_empty() && shown < 10 {
                    shown += 1;
                    eprintln!(
                        "block {} chain {:?}: conflict [{}] X@{}={} vs m@{}={}",
                        spec.block, pos, reason, x, xi, p, m
                    );
                    break 'outer;
                }
            }
        }
    }
}
