//! Dynamic traces: the instruction stream a (program, path) pair produces.
//!
//! The expander resolves register (and flag) dependences with a last-writer
//! scan, attaches memory addresses keyed on each instruction's stable
//! [`InsnUid`] (so data behaviour is identical across compiled variants),
//! and records branch outcomes. The result is the flat format every timing
//! and profiling component consumes.

use critic_isa::{FuKind, Insn, Opcode};
use serde::{Deserialize, Serialize};

use crate::ids::{InsnRef, InsnUid};
use crate::path::ExecutionPath;
use crate::program::{Layout, Program};

/// Sentinel dependence slot value: no producer.
pub const NO_DEP: u32 = u32::MAX;

/// Base virtual address of the data segment.
pub const DATA_BASE: u64 = 0x1000_0000;

/// Outcome of a dynamic branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchOutcome {
    /// Whether the branch redirected (unconditional branches always do).
    pub taken: bool,
    /// Byte address control transferred to (the next instruction's address
    /// for a not-taken branch).
    pub target_pc: u64,
}

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynInsn {
    /// Stable identity of the static instruction.
    pub uid: InsnUid,
    /// Static position.
    pub at: InsnRef,
    /// Byte address fetched from.
    pub pc: u64,
    /// Opcode.
    pub op: Opcode,
    /// Fetch bytes (2 for Thumb, 4 for ARM).
    pub bytes: u8,
    /// Whether the instruction carries a non-AL condition.
    pub predicated: bool,
    /// Producers of this instruction's register/flag inputs, as indices into
    /// the trace ([`NO_DEP`] marks empty slots).
    pub deps: [u32; 3],
    /// Data address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Branch outcome for control-flow instructions.
    pub branch: Option<BranchOutcome>,
}

impl DynInsn {
    /// Iterates over the real (non-sentinel) dependence indices.
    pub fn deps_iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.deps.iter().copied().filter(|&d| d != NO_DEP)
    }

    /// Whether this is the CDP decoder format switch.
    pub fn is_cdp(&self) -> bool {
        self.op.is_format_switch()
    }

    /// Whether this instruction reads memory.
    pub fn is_load(&self) -> bool {
        self.op.is_load()
    }

    /// The functional unit the instruction executes on.
    pub fn fu_kind(&self) -> FuKind {
        self.op.fu_kind()
    }
}

/// A dynamic instruction stream plus bookkeeping.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Workload name (copied from the program).
    pub name: String,
    /// The dynamic instructions in fetch order.
    pub entries: Vec<DynInsn>,
}

impl Trace {
    /// Expands a block path over a program variant into the dynamic stream.
    ///
    /// The same `path` expands differently over differently-compiled
    /// variants of the same binary: instruction PCs shift with the layout,
    /// inserted CDPs/switch branches appear, and hoisting changes dependence
    /// *distances* — while memory addresses and branch outcomes stay fixed,
    /// because they key on [`InsnUid`]s and the path respectively.
    pub fn expand(program: &Program, path: &ExecutionPath) -> Trace {
        let mut trace = Trace {
            name: String::new(),
            entries: Vec::new(),
        };
        Trace::expand_into(program, path, &mut trace);
        trace
    }

    /// Allocation-reusing form of [`Trace::expand`]: re-expands into `out`,
    /// recycling its entry buffer. Campaign workbenches re-expand one
    /// variant trace per (app, scheme) cell; reusing the multi-megabyte
    /// entry vector keeps that off the allocator's hot path.
    pub fn expand_into(program: &Program, path: &ExecutionPath, out: &mut Trace) {
        out.name.clear();
        out.name.push_str(&program.name);
        let entries = &mut out.entries;
        entries.clear();
        entries.reserve(path.dyn_insns(program));
        // The materialized expansion and the streaming expansion
        // ([`crate::stream::TraceStream`]) share one cursor, so they are
        // identical entry-for-entry by construction.
        let mut cursor = ExpandCursor::new(program, path);
        while let Some(entry) = cursor.next() {
            entries.push(entry);
        }
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the dynamic instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, DynInsn> {
        self.entries.iter()
    }

    /// Computes each dynamic instruction's fanout: the number of later
    /// dynamic instructions that consume its result directly.
    ///
    /// This is the criticality raw material of the paper (Sec. II-A):
    /// instructions whose fanout exceeds a threshold get marked critical.
    pub fn compute_fanout(&self) -> Vec<u32> {
        let mut fanout = Vec::new();
        self.compute_fanout_into(&mut fanout);
        fanout
    }

    /// Allocation-reusing form of [`Trace::compute_fanout`], paired with
    /// [`Trace::expand_into`] on the per-cell campaign path.
    pub fn compute_fanout_into(&self, fanout: &mut Vec<u32>) {
        let n = self.entries.len();
        fanout.clear();
        fanout.resize(n, 0u32);
        // Flag-setting compares produce no forwardable value; their
        // predication "readers" are control, not dataflow, so they do not
        // make a compare critical (Sec. II-A reasons about value fan-out).
        // Dependences point strictly backwards, so the compare flags can be
        // forward-filled in the same pass: by the time an entry consults
        // `is_compare[dep]` its producer has already been classified. That
        // keeps each dep lookup inside a dense bit table instead of
        // random-accessing the much larger `DynInsn` records.
        let mut is_compare = vec![false; n];
        for (i, entry) in self.entries.iter().enumerate() {
            for dep in entry.deps_iter() {
                if !is_compare[dep as usize] {
                    fanout[dep as usize] += 1;
                }
            }
            is_compare[i] = sets_flags(entry.op);
        }
    }

    /// Computes each dynamic instruction's *cone* fanout: the number of
    /// later instructions within a `window`-instruction horizon (the ROB)
    /// that transitively require its output before they can begin — the
    /// paper's Sec. II-A phrasing of the ROB-observed criticality metric.
    ///
    /// Direct fanout ([`Trace::compute_fanout`]) is the right measure for
    /// the per-instruction critical/non-critical classification (Fig. 2's
    /// example reasons about direct dependents); the cone is the right
    /// measure for the *chain-level* criticality aggregate, whose coverage
    /// arithmetic is otherwise impossible (total direct reads are ~1.3 per
    /// instruction, so 30% of the stream cannot average 8 direct readers).
    ///
    /// # Panics
    ///
    /// Panics if `window` exceeds 128.
    pub fn compute_cone_fanout(&self, window: usize) -> Vec<u32> {
        assert!(
            (1..=128).contains(&window),
            "cone window must be 1..=128 (u128 masks)"
        );
        let n = self.entries.len();
        let mut cones = vec![0u32; n];
        // masks[i]: bit k set ⇔ instruction i + 1 + k transitively depends
        // on i. Built backwards: by the time we visit i, every consumer has
        // contributed its own (shifted) cone.
        let mut masks = vec![0u128; n];
        let keep: u128 = if window == 128 {
            u128::MAX
        } else {
            (1u128 << window) - 1
        };
        for c in (0..n).rev() {
            let cmask = masks[c] & keep;
            cones[c] = cmask.count_ones();
            for d in self.entries[c].deps_iter() {
                let dist = (c as u32 - d) as usize;
                if dist <= window {
                    // At dist == 128 the consumer's own cone shifts fully
                    // out of the horizon; only the direct-dependent bit
                    // remains.
                    let shifted = if dist < 128 { cmask << dist } else { 0 };
                    masks[d as usize] |= shifted | (1u128 << (dist - 1));
                }
            }
        }
        cones
    }

    /// Total bytes fetched for the whole stream.
    pub fn fetch_bytes(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.bytes)).sum()
    }

    /// Fraction of dynamic instructions in the 16-bit format.
    pub fn thumb_fraction(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let thumbed = self.entries.iter().filter(|e| e.bytes == 2).count();
        thumbed as f64 / self.entries.len() as f64
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a DynInsn;
    type IntoIter = std::slice::Iter<'a, DynInsn>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// Whether `op` is a flag-setting compare (produces no forwardable value;
/// its predication readers are control, not dataflow).
#[inline]
pub(crate) fn sets_flags(op: Opcode) -> bool {
    matches!(op, Opcode::Cmp | Opcode::Cmn | Opcode::Tst | Opcode::Vcmp)
}

/// Resolves one instruction's dependence slots against the current
/// last-writer tables: register sources first, then the flags producer for
/// predicated instructions and conditional branches. Shared verbatim by the
/// materialized expansion, the streaming expansion, and the streaming
/// fanout prepass, so all three resolve identical edges (including the
/// dedupe and the 3-slot truncation quirks).
#[inline]
pub(crate) fn resolve_deps(insn: &Insn, last_writer: &[u32; 16], flags_writer: u32) -> [u32; 3] {
    let mut deps = [NO_DEP; 3];
    let mut nd = 0usize;
    for src in insn.srcs().iter() {
        let producer = last_writer[src.index() as usize];
        if producer != NO_DEP && !deps[..nd].contains(&producer) && nd < 3 {
            deps[nd] = producer;
            nd += 1;
        }
    }
    if insn.is_predicated()
        && flags_writer != NO_DEP
        && nd < 3
        && !deps[..nd].contains(&flags_writer)
    {
        deps[nd] = flags_writer;
    }
    deps
}

/// The single-instruction expansion state machine both trace producers
/// drive: [`Trace::expand_into`] materializes every yielded entry,
/// [`crate::stream::TraceStream`] holds only a bounded ring of them.
///
/// The cursor owns all expansion state — last-writer tables, per-uid memory
/// visit counters, and the block/instruction position — so one `next` call
/// yields exactly the entry the materialized loop would have pushed next.
pub(crate) struct ExpandCursor<'a> {
    program: &'a Program,
    path: &'a ExecutionPath,
    layout: Layout,
    // Last dynamic writer of each architected register, plus the flags.
    last_writer: [u32; 16],
    flags_writer: u32,
    // Per-uid visit counters drive the memory address streams. Uids are
    // dense program-wide indices, so a lazily-grown flat vector replaces
    // hashing on this hottest expansion path.
    visits: Vec<u64>,
    step: usize,
    index: usize,
    next_block_pc: Option<u64>,
    emitted: u32,
}

impl<'a> ExpandCursor<'a> {
    pub(crate) fn new(program: &'a Program, path: &'a ExecutionPath) -> ExpandCursor<'a> {
        let layout = program.layout();
        let next_block_pc = path.blocks.get(1).map(|&next| layout.block_addr(next));
        ExpandCursor {
            program,
            path,
            layout,
            last_writer: [NO_DEP; 16],
            flags_writer: NO_DEP,
            visits: Vec::new(),
            step: 0,
            index: 0,
            next_block_pc,
            emitted: 0,
        }
    }

    /// Bytes resident in the cursor's own state (the visit counters are
    /// O(static program), not O(trace)).
    pub(crate) fn resident_bytes(&self) -> usize {
        self.visits.capacity() * std::mem::size_of::<u64>()
    }

    /// Yields the next dynamic instruction, or `None` once the path is
    /// exhausted.
    #[allow(clippy::should_implement_trait)]
    pub(crate) fn next(&mut self) -> Option<DynInsn> {
        loop {
            let &bid = self.path.blocks.get(self.step)?;
            let block = self.program.block(bid);
            if self.index >= block.insns.len() {
                self.step += 1;
                self.index = 0;
                self.next_block_pc = self
                    .path
                    .blocks
                    .get(self.step + 1)
                    .map(|&next| self.layout.block_addr(next));
                continue;
            }
            let last_index = block.insns.len() - 1;
            let index = self.index;
            let tagged = &block.insns[index];
            let insn = &tagged.insn;
            let op = insn.op();
            let idx = self.emitted;
            let pc = self.layout.insn_addr(InsnRef::new(bid, index as u32));

            let deps = resolve_deps(insn, &self.last_writer, self.flags_writer);

            // Memory address stream, keyed on the stable uid.
            let mem_addr = if op.is_mem() {
                let slot = tagged.uid.0 as usize;
                if self.visits.len() <= slot {
                    self.visits.resize(slot + 1, 0);
                }
                let hinted = self.program.load_hints.contains(&tagged.uid.0);
                let addr = mem_address(&self.program.mem, tagged.uid, self.visits[slot], hinted);
                self.visits[slot] += 1;
                Some(addr)
            } else {
                None
            };

            // Branch outcome.
            let branch = if op.is_branch() {
                let fallthrough_pc = pc + insn.fetch_bytes();
                if index == last_index {
                    match self.next_block_pc {
                        Some(target_pc) => Some(BranchOutcome {
                            taken: target_pc != fallthrough_pc,
                            target_pc,
                        }),
                        None => Some(BranchOutcome {
                            taken: false,
                            target_pc: fallthrough_pc,
                        }),
                    }
                } else {
                    // Mid-block branch: a compiler-inserted format-switch
                    // branch whose target is the next instruction
                    // (paper Sec. IV-A).
                    Some(BranchOutcome {
                        taken: true,
                        target_pc: fallthrough_pc,
                    })
                }
            } else {
                None
            };

            let entry = DynInsn {
                uid: tagged.uid,
                at: InsnRef::new(bid, index as u32),
                pc,
                op,
                bytes: insn.fetch_bytes() as u8,
                predicated: insn.is_predicated(),
                deps,
                mem_addr,
                branch,
            };

            // Update writer tables.
            if let Some(dst) = insn.dst() {
                self.last_writer[dst.index() as usize] = idx;
            }
            if sets_flags(op) {
                self.flags_writer = idx;
            }
            self.emitted += 1;
            self.index += 1;
            return Some(entry);
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The address an instruction's `visit`-th execution touches.
///
/// Each static memory instruction gets a *class* (hot / streaming / random)
/// hashed from its uid, then a per-class address stream — the standard
/// synthetic-trace technique for producing controlled cache behaviour.
fn mem_address(
    profile: &crate::params::MemProfile,
    uid: InsnUid,
    visit: u64,
    critical_hint: bool,
) -> u64 {
    let h = splitmix(u64::from(uid.0) ^ profile.seed);
    let mut class = (h >> 32) as f64 / f64::from(u32::MAX);
    if critical_hint {
        // Critical (chain) loads have a suite-determined class: SPEC's
        // high-fanout loads stream (prefetchable, miss-prone); mobile's
        // stay in the hot set (short latency, Fig. 3c).
        class = if profile.critical_load_stride {
            0.0 // stride branch below
        } else {
            profile.stride_frac + 1e-9 // hot branch below
        };
    }
    let ws = profile.working_set_bytes.max(64);
    let addr = if class < profile.stride_frac {
        // Streaming: a fixed per-uid base walking the working set with a
        // word-ish stride (several accesses per cache line, like a real
        // array sweep).
        (h % ws).wrapping_add(visit * 8) % ws
    } else if class < profile.stride_frac + profile.hot_frac {
        // Hot: the same location every visit.
        h % profile.hot_bytes.max(64)
    } else {
        // Cold/random: a new pseudo-random location each visit.
        splitmix(h ^ visit) % ws
    };
    DATA_BASE + (addr & !3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::ProgramGenerator;
    use crate::params::GenParams;
    use crate::suite::Suite;

    fn trace_for(seed: u64, len: usize) -> (Program, ExecutionPath, Trace) {
        let mut p = GenParams::mobile(seed);
        p.num_functions = 20;
        let program = ProgramGenerator::new(p).generate();
        let path = ExecutionPath::generate(&program, seed ^ 1, len);
        let trace = Trace::expand(&program, &path);
        (program, path, trace)
    }

    #[test]
    fn expansion_covers_the_path() {
        let (program, path, trace) = trace_for(1, 5_000);
        assert_eq!(trace.len(), path.dyn_insns(&program));
        assert!(trace.len() >= 5_000);
    }

    #[test]
    fn deps_point_backwards() {
        let (_, _, trace) = trace_for(2, 5_000);
        for (i, e) in trace.iter().enumerate() {
            for d in e.deps_iter() {
                assert!((d as usize) < i, "dep {d} of insn {i} points forward");
            }
        }
    }

    #[test]
    fn deps_match_register_semantics() {
        let (program, _, trace) = trace_for(3, 3_000);
        // Re-derive the last-writer relation and spot-check.
        let mut last_writer: [Option<usize>; 16] = [None; 16];
        for (i, e) in trace.iter().enumerate() {
            let insn = &program.insn(e.at).insn;
            for src in insn.srcs().iter() {
                if let Some(w) = last_writer[src.index() as usize] {
                    assert!(
                        e.deps_iter().any(|d| d as usize == w),
                        "insn {i} misses dep on writer {w} of {src}"
                    );
                }
            }
            if let Some(dst) = insn.dst() {
                last_writer[dst.index() as usize] = Some(i);
            }
        }
    }

    #[test]
    fn fanout_counts_consumers() {
        let (_, _, trace) = trace_for(4, 8_000);
        let fanout = trace.compute_fanout();
        // Every dependence edge counts toward its producer's fanout except
        // edges into flag-setting compares (control, not value, fan-out).
        let value_deps: u32 = trace
            .iter()
            .map(|e| {
                e.deps_iter()
                    .filter(|&d| {
                        !matches!(
                            trace.entries[d as usize].op,
                            Opcode::Cmp | Opcode::Cmn | Opcode::Tst | Opcode::Vcmp
                        )
                    })
                    .count() as u32
            })
            .sum();
        let total_fanout: u32 = fanout.iter().sum();
        assert_eq!(value_deps, total_fanout);
        // The planted chains must produce genuinely high-fanout instructions.
        let max = fanout.iter().copied().max().unwrap_or(0);
        assert!(max >= 8, "expected planted fanout >= 8, max={max}");
    }

    #[test]
    fn memory_addresses_are_stable_across_variants() {
        let (mut program, path, trace) = trace_for(5, 4_000);
        // "Recompile": flip every convertible instruction to Thumb.
        for block in &mut program.blocks {
            for t in &mut block.insns {
                if let Ok(thumbed) = t.insn.to_thumb() {
                    t.insn = thumbed;
                }
            }
        }
        let recompiled = Trace::expand(&program, &path);
        assert_eq!(trace.len(), recompiled.len());
        for (a, b) in trace.iter().zip(recompiled.iter()) {
            assert_eq!(a.uid, b.uid);
            assert_eq!(a.mem_addr, b.mem_addr, "data behaviour must not change");
        }
        // But the fetch stream must have shrunk.
        assert!(recompiled.fetch_bytes() < trace.fetch_bytes());
        assert!(recompiled.thumb_fraction() > 0.4);
    }

    #[test]
    fn branch_outcomes_align_with_path() {
        let (program, path, trace) = trace_for(6, 4_000);
        let layout = program.layout();
        let mut cursor = 0usize;
        for (step, &bid) in path.blocks.iter().enumerate() {
            let block = program.block(bid);
            let block_entries = &trace.entries[cursor..cursor + block.len()];
            if let Some(next) = path.blocks.get(step + 1) {
                if let Some(last) = block_entries.last() {
                    if let Some(outcome) = last.branch {
                        assert_eq!(outcome.target_pc, layout.block_addr(*next));
                    }
                }
            }
            cursor += block.len();
        }
    }

    #[test]
    fn hot_loads_repeat_their_address() {
        let mut p = GenParams::mobile(9);
        p.num_functions = 8;
        p.mem.hot_frac = 1.0;
        p.mem.stride_frac = 0.0;
        let program = ProgramGenerator::new(p).generate();
        let path = ExecutionPath::generate(&program, 2, 6_000);
        let trace = Trace::expand(&program, &path);
        let mut seen: std::collections::HashMap<InsnUid, u64> = std::collections::HashMap::new();
        for e in trace.iter().filter(|e| e.mem_addr.is_some()) {
            let addr = e.mem_addr.unwrap();
            if let Some(&prev) = seen.get(&e.uid) {
                assert_eq!(prev, addr, "hot accesses must be stable per uid");
            }
            seen.insert(e.uid, addr);
        }
    }

    #[test]
    fn suite_is_recorded_on_programs() {
        for suite in Suite::ALL {
            let mut app = suite.apps()[0].clone();
            app.params.num_functions = app.params.num_functions.min(16);
            let program = app.generate_program();
            assert_eq!(program.suite, suite);
            assert_eq!(program.name, app.name);
        }
    }

    #[test]
    fn pcs_are_monotone_within_blocks() {
        let (program, _, trace) = trace_for(8, 2_000);
        let layout = program.layout();
        for e in trace.iter() {
            assert_eq!(e.pc, layout.insn_addr(e.at));
        }
    }
}

#[cfg(test)]
mod cone_tests {
    use super::*;
    use crate::generate::ProgramGenerator;
    use crate::params::GenParams;

    #[test]
    fn cone_dominates_direct_fanout() {
        let mut p = GenParams::mobile(13);
        p.num_functions = 16;
        let program = ProgramGenerator::new(p).generate();
        let path = ExecutionPath::generate(&program, 13, 5_000);
        let trace = Trace::expand(&program, &path);
        let direct = trace.compute_fanout();
        let cone = trace.compute_cone_fanout(128);
        assert_eq!(cone.len(), trace.len());
        for (i, &cone_i) in cone.iter().enumerate() {
            // Within-window direct consumers are a subset of the cone; the
            // cone can only miss direct consumers beyond the window.
            let within: u32 = trace
                .entries
                .iter()
                .skip(i + 1)
                .take(128)
                .filter(|e| e.deps.contains(&(i as u32)))
                .count() as u32;
            assert!(
                cone_i >= within,
                "cone {cone_i} < windowed direct {within} at {i}"
            );
            assert!(cone_i <= 128);
            let _ = direct;
        }
    }

    #[test]
    fn cone_counts_transitive_dependents() {
        // Hand-build a 3-deep dependence chain: each member's cone includes
        // everything downstream.
        use crate::ids::{BlockId, FuncId, InsnUid};
        use crate::program::{BasicBlock, Function, TaggedInsn, Terminator};
        use critic_isa::{Insn, Opcode, Reg};
        let insns = vec![
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R0, &[Reg::R7, Reg::R7]),
                InsnUid(0),
            ),
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R1, &[Reg::R0, Reg::R7]),
                InsnUid(1),
            ),
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R2, &[Reg::R1, Reg::R7]),
                InsnUid(2),
            ),
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R3, &[Reg::R2, Reg::R7]),
                InsnUid(3),
            ),
        ];
        let program = Program {
            name: "chain".into(),
            suite: crate::suite::Suite::Mobile,
            functions: vec![Function {
                id: FuncId(0),
                name: "f".into(),
                blocks: vec![BlockId(0)],
            }],
            blocks: vec![BasicBlock {
                id: BlockId(0),
                func: FuncId(0),
                insns,
                terminator: Terminator::Exit,
            }],
            mem: crate::params::MemProfile::default(),
            load_hints: Default::default(),
        };
        let path = ExecutionPath {
            blocks: vec![BlockId(0)],
            seed: 0,
        };
        let trace = Trace::expand(&program, &path);
        let direct = trace.compute_fanout();
        let cone = trace.compute_cone_fanout(128);
        assert_eq!(
            direct,
            vec![1, 1, 1, 0],
            "each member has one direct reader"
        );
        assert_eq!(cone, vec![3, 2, 1, 0], "cones are transitive");
    }

    #[test]
    fn cone_respects_the_window() {
        use crate::ids::{BlockId, FuncId, InsnUid};
        use crate::program::{BasicBlock, Function, TaggedInsn, Terminator};
        use critic_isa::{Insn, Opcode, Reg};
        // r0 defined once, read 3 instructions later — outside a window of 2.
        let insns = vec![
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R0, &[Reg::R7, Reg::R7]),
                InsnUid(0),
            ),
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R1, &[Reg::R7, Reg::R7]),
                InsnUid(1),
            ),
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R2, &[Reg::R7, Reg::R7]),
                InsnUid(2),
            ),
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R3, &[Reg::R0, Reg::R7]),
                InsnUid(3),
            ),
        ];
        let program = Program {
            name: "window".into(),
            suite: crate::suite::Suite::Mobile,
            functions: vec![Function {
                id: FuncId(0),
                name: "f".into(),
                blocks: vec![BlockId(0)],
            }],
            blocks: vec![BasicBlock {
                id: BlockId(0),
                func: FuncId(0),
                insns,
                terminator: Terminator::Exit,
            }],
            mem: crate::params::MemProfile::default(),
            load_hints: Default::default(),
        };
        let path = ExecutionPath {
            blocks: vec![BlockId(0)],
            seed: 0,
        };
        let trace = Trace::expand(&program, &path);
        assert_eq!(trace.compute_cone_fanout(128)[0], 1);
        assert_eq!(
            trace.compute_cone_fanout(2)[0],
            0,
            "reader at distance 3 is outside"
        );
    }
}
