//! Deterministic fault injection for programs and traces.
//!
//! The campaign runner's robustness contract is "typed errors, never
//! panics" for any malformed input a buggy toolchain, a truncated journal,
//! or a corrupted profile could produce. This module manufactures exactly
//! those inputs: each [`Fault`] is one corruption, applied at a
//! seed-determined site so a failing campaign cell can be reproduced from
//! its journal record alone.
//!
//! Faults map onto the error taxonomy of [`crate::validate`] and
//! [`critic_isa::EncodeError`]:
//!
//! | fault                 | expected detection                                  |
//! |-----------------------|-----------------------------------------------------|
//! | `IllegalImmediate`    | `EncodeError::ImmOutOfRange` / `Unencodable`        |
//! | `IllegalRegister`     | `EncodeError::UnencodableRegister` / `Unencodable`  |
//! | `OversizedCdp`        | `ProgramError::BadCdpCover`                         |
//! | `TruncateBlock`       | `CdpCoverRunsOffBlock` or a `TraceError`            |
//! | `ScrambleBlock`       | `CdpCoversWideInsn` or a `TraceError`               |
//! | `DanglingTerminator`  | `ProgramError::DanglingTerminator`                  |
//! | `DuplicateUid`        | `ProgramError::DuplicateUid`                        |
//! | `EmptyTrace`          | `TraceError::Empty`                                 |
//! | `OversizeTrace`       | `TraceError::Oversized` (under a lowered cap)       |
//! | `ForwardDep`          | `TraceError::ForwardDep`                            |
//!
//! A second family — the *miscompile* faults, [`FaultTarget::Variant`] —
//! corrupts a CritIC-transformed variant in ways every static check above
//! accepts: the program still encodes, the trace still expands and
//! validates, yet the variant computes something different from the
//! baseline. Only the differential oracle (`critic-compiler`'s `validate`
//! module) can catch them, which is exactly what they exist to prove:
//!
//! | fault                  | silent corruption                                  |
//! |------------------------|----------------------------------------------------|
//! | `ClobberedDestination` | a converted member writes the wrong register       |
//! | `DroppedMember`        | a covered member vanishes (cover count fixed up)   |
//! | `ReorderedStore`       | a store swaps with the producer of its value       |
//! | `WrongThumbImmediate`  | an immediate is perturbed within Thumb's field     |
//! | `StaleSource`          | a source operand reads a different register        |
//! | `BadCdpLength`         | a CDP cover shrinks, leaving a member uncovered    |

use std::collections::HashSet;
use std::fmt;
use std::str::FromStr;

use critic_isa::{Insn, InsnBuilder, Opcode, Reg, Width};
use serde::{Deserialize, Serialize};

use crate::ids::{BlockId, InsnUid};
use crate::program::{Program, TaggedInsn, Terminator};
use crate::trace::Trace;

/// One kind of input corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Rewrites an instruction's immediate far outside every field width.
    IllegalImmediate,
    /// Inserts an instruction using the PC as an explicit operand.
    IllegalRegister,
    /// Inserts a CDP format switch whose cover count exceeds 9.
    OversizedCdp,
    /// Drops the tail of a basic block (truncated chain / covered region).
    TruncateBlock,
    /// Reverses a block's instructions (non-contiguous hoists, covers over
    /// 32-bit instructions).
    ScrambleBlock,
    /// Redirects a terminator at a block outside the arena.
    DanglingTerminator,
    /// Copies one instruction's uid onto its neighbour.
    DuplicateUid,
    /// Deletes every trace entry.
    EmptyTrace,
    /// Duplicates the trace's tail until it exceeds `max(len*2, 4096)`
    /// entries (a runaway expansion in miniature).
    OversizeTrace,
    /// Points a trace dependence at a later entry.
    ForwardDep,
    /// Miscompile: rewrites a converted chain member's destination to a
    /// different (still Thumb-addressable) register.
    ClobberedDestination,
    /// Miscompile: deletes one CDP-covered chain member and shrinks the
    /// cover count to match, so the region still decodes.
    DroppedMember,
    /// Miscompile: swaps a store with the nearest preceding producer of its
    /// value register (same encoding width, so the binary layout is intact).
    ReorderedStore,
    /// Miscompile: perturbs an ALU immediate while staying inside Thumb's
    /// field limits.
    WrongThumbImmediate,
    /// Miscompile: replaces a source operand with a different register.
    StaleSource,
    /// Miscompile: decrements a CDP cover count, leaving the last covered
    /// 16-bit instruction undecodable as Thumb.
    BadCdpLength,
}

/// What a fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// The static program.
    Program,
    /// The dynamic trace.
    Trace,
    /// A compiled (transformed) program variant — a silent miscompile only
    /// the differential oracle can see.
    Variant,
}

/// Why a fault could not be applied.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectError {
    /// The input has no site the fault applies to (e.g. no block with
    /// enough instructions).
    NoSite(Fault),
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::NoSite(fault) => write!(f, "no injection site for fault `{fault}`"),
        }
    }
}

impl std::error::Error for InjectError {}

impl Fault {
    /// Every fault, for exhaustive harness sweeps.
    pub const ALL: [Fault; 16] = [
        Fault::IllegalImmediate,
        Fault::IllegalRegister,
        Fault::OversizedCdp,
        Fault::TruncateBlock,
        Fault::ScrambleBlock,
        Fault::DanglingTerminator,
        Fault::DuplicateUid,
        Fault::EmptyTrace,
        Fault::OversizeTrace,
        Fault::ForwardDep,
        Fault::ClobberedDestination,
        Fault::DroppedMember,
        Fault::ReorderedStore,
        Fault::WrongThumbImmediate,
        Fault::StaleSource,
        Fault::BadCdpLength,
    ];

    /// The miscompile family: silent variant corruptions for the oracle.
    pub const MISCOMPILES: [Fault; 6] = [
        Fault::ClobberedDestination,
        Fault::DroppedMember,
        Fault::ReorderedStore,
        Fault::WrongThumbImmediate,
        Fault::StaleSource,
        Fault::BadCdpLength,
    ];

    /// Which artifact this fault corrupts.
    pub fn target(self) -> FaultTarget {
        match self {
            Fault::EmptyTrace | Fault::OversizeTrace | Fault::ForwardDep => FaultTarget::Trace,
            Fault::ClobberedDestination
            | Fault::DroppedMember
            | Fault::ReorderedStore
            | Fault::WrongThumbImmediate
            | Fault::StaleSource
            | Fault::BadCdpLength => FaultTarget::Variant,
            _ => FaultTarget::Program,
        }
    }

    /// The kebab-case name used on the command line and in journals.
    pub fn name(self) -> &'static str {
        match self {
            Fault::IllegalImmediate => "illegal-immediate",
            Fault::IllegalRegister => "illegal-register",
            Fault::OversizedCdp => "oversized-cdp",
            Fault::TruncateBlock => "truncate-block",
            Fault::ScrambleBlock => "scramble-block",
            Fault::DanglingTerminator => "dangling-terminator",
            Fault::DuplicateUid => "duplicate-uid",
            Fault::EmptyTrace => "empty-trace",
            Fault::OversizeTrace => "oversize-trace",
            Fault::ForwardDep => "forward-dep",
            Fault::ClobberedDestination => "clobbered-destination",
            Fault::DroppedMember => "dropped-member",
            Fault::ReorderedStore => "reordered-store",
            Fault::WrongThumbImmediate => "wrong-thumb-immediate",
            Fault::StaleSource => "stale-source",
            Fault::BadCdpLength => "bad-cdp-length",
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Fault {
    type Err = String;

    fn from_str(s: &str) -> Result<Fault, String> {
        Fault::ALL
            .iter()
            .copied()
            .find(|f| f.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Fault::ALL.iter().map(|f| f.name()).collect();
                format!("unknown fault `{s}` (valid: {})", names.join(", "))
            })
    }
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick<T>(items: &[T], seed: u64) -> Option<usize> {
    if items.is_empty() {
        None
    } else {
        Some((mix(seed) % items.len() as u64) as usize)
    }
}

/// A uid range reserved for injected instructions, far above anything the
/// generator or the uid allocator hands out.
const FAULT_UID_BASE: u32 = 0xF000_0000;

/// A corruption site every execution reaches: the entry block when it has
/// at least two instructions (every path visits it), else a seed-picked
/// fallback. Faults detected only through the trace cross-check (truncation,
/// scrambling) use this so the corruption cannot land in dead code.
fn executed_site(program: &Program, seed: u64) -> Option<usize> {
    let entry = program.functions.first()?.blocks.first()?.index();
    if program
        .blocks
        .get(entry)
        .is_some_and(|b| b.insns.len() >= 2)
    {
        return Some(entry);
    }
    let sites: Vec<usize> = (0..program.blocks.len())
        .filter(|&b| program.blocks[b].insns.len() >= 2)
        .collect();
    pick(&sites, seed).map(|i| sites[i])
}

/// Applies a program-targeted fault at a seed-determined site.
///
/// # Errors
///
/// [`InjectError::NoSite`] when the program has no applicable site (never
/// panics — the harness must be more robust than the code it tests).
pub fn inject_program(program: &mut Program, fault: Fault, seed: u64) -> Result<(), InjectError> {
    debug_assert_eq!(
        fault.target(),
        FaultTarget::Program,
        "{fault} targets the trace"
    );
    let no_site = || InjectError::NoSite(fault);
    match fault {
        Fault::IllegalImmediate => {
            // Pick an instruction that already has an immediate and blow it
            // out past the 9-bit ARM field.
            let sites: Vec<(usize, usize)> = program
                .blocks
                .iter()
                .enumerate()
                .flat_map(|(b, block)| {
                    block
                        .insns
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| {
                            t.insn.imm().is_some()
                                && !t.insn.op().is_branch()
                                && !t.insn.op().is_format_switch()
                        })
                        .map(move |(i, _)| (b, i))
                })
                .collect();
            let (b, i) = sites[pick(&sites, seed).ok_or_else(no_site)?];
            let insn = program.blocks[b].insns[i].insn;
            let op = insn.op();
            let bogus = 100_000 + (mix(seed ^ 1) % 100_000) as i32;
            program.blocks[b].insns[i].insn = if op.is_load() {
                Insn::load(
                    op,
                    insn.dst().unwrap_or(Reg::R0),
                    insn.srcs().get(0).unwrap_or(Reg::R1),
                    bogus,
                )
            } else if op.is_store() {
                Insn::store(
                    op,
                    insn.srcs().get(0).unwrap_or(Reg::R0),
                    insn.srcs().get(1).unwrap_or(Reg::R1),
                    bogus,
                )
            } else if let (Some(dst), Some(src)) = (insn.dst(), insn.srcs().get(0)) {
                Insn::alu_imm(op, dst, src, bogus)
            } else {
                Insn::mov_imm(insn.dst().unwrap_or(Reg::R0), bogus)
            };
            Ok(())
        }
        Fault::IllegalRegister => {
            let sites: Vec<usize> = (0..program.blocks.len())
                .filter(|&b| !program.blocks[b].insns.is_empty())
                .collect();
            let b = sites[pick(&sites, seed).ok_or_else(no_site)?];
            let pos = (mix(seed ^ 2) % program.blocks[b].insns.len() as u64) as usize;
            program.blocks[b].insns.insert(
                pos,
                TaggedInsn::new(
                    Insn::alu(Opcode::Add, Reg::R0, &[Reg::PC, Reg::R1]),
                    InsnUid(FAULT_UID_BASE + 1),
                ),
            );
            Ok(())
        }
        Fault::OversizedCdp => {
            let sites: Vec<usize> = (0..program.blocks.len())
                .filter(|&b| !program.blocks[b].insns.is_empty())
                .collect();
            let b = sites[pick(&sites, seed).ok_or_else(no_site)?];
            let covered = 10 + (mix(seed ^ 3) % 6) as u8;
            program.blocks[b].insns.insert(
                0,
                TaggedInsn::new(Insn::cdp_raw(covered), InsnUid(FAULT_UID_BASE + 2)),
            );
            Ok(())
        }
        Fault::TruncateBlock => {
            let b = executed_site(program, seed).ok_or_else(no_site)?;
            let keep = program.blocks[b].insns.len() / 2;
            program.blocks[b].insns.truncate(keep);
            Ok(())
        }
        Fault::ScrambleBlock => {
            let b = executed_site(program, seed).ok_or_else(no_site)?;
            program.blocks[b].insns.reverse();
            Ok(())
        }
        Fault::DanglingTerminator => {
            let bogus = BlockId(program.blocks.len() as u32 + 1 + (mix(seed ^ 4) % 64) as u32);
            let b = pick(&program.blocks, seed).ok_or_else(no_site)?;
            program.blocks[b].terminator = Terminator::Jump(bogus);
            Ok(())
        }
        Fault::DuplicateUid => {
            let sites: Vec<usize> = (0..program.blocks.len())
                .filter(|&b| program.blocks[b].insns.len() >= 2)
                .collect();
            let b = sites[pick(&sites, seed).ok_or_else(no_site)?];
            let uid = program.blocks[b].insns[0].uid;
            program.blocks[b].insns[1].uid = uid;
            Ok(())
        }
        _ => Err(no_site()),
    }
}

/// Applies a trace-targeted fault at a seed-determined site.
///
/// # Errors
///
/// [`InjectError::NoSite`] when the trace has no applicable site.
pub fn inject_trace(trace: &mut Trace, fault: Fault, seed: u64) -> Result<(), InjectError> {
    debug_assert_eq!(
        fault.target(),
        FaultTarget::Trace,
        "{fault} targets the program"
    );
    let no_site = || InjectError::NoSite(fault);
    match fault {
        Fault::EmptyTrace => {
            trace.entries.clear();
            Ok(())
        }
        Fault::OversizeTrace => {
            if trace.entries.is_empty() {
                return Err(no_site());
            }
            let target = (trace.entries.len() * 2).max(4096);
            while trace.entries.len() < target {
                let tail = trace.entries[trace.entries.len() - 1];
                trace.entries.push(tail);
            }
            Ok(())
        }
        Fault::ForwardDep => {
            if trace.entries.is_empty() {
                return Err(no_site());
            }
            let step = (mix(seed) % trace.entries.len() as u64) as usize;
            trace.entries[step].deps[0] = step as u32 + 1;
            Ok(())
        }
        _ => Err(no_site()),
    }
}

/// Rebuilds an instruction with replacement operands, preserving opcode,
/// predication, and encoding width.
fn rebuild(insn: &Insn, dst: Option<Reg>, srcs: &[Reg], imm: Option<i32>) -> Insn {
    let mut b = InsnBuilder::new(insn.op())
        .cond(insn.cond())
        .width(insn.width());
    if let Some(d) = dst {
        b = b.dst(d);
    }
    for &s in srcs {
        b = b.src(s);
    }
    if let Some(i) = imm {
        b = b.imm(i);
    }
    b.build()
}

/// A Thumb-addressable register different from `avoid`, picked by seed.
fn other_low_reg(avoid: Reg, seed: u64) -> Reg {
    let mut idx = (mix(seed) % 8) as u8;
    if idx == avoid.index() {
        idx = (idx + 1) % 8;
    }
    Reg::from_index(idx).unwrap_or(Reg::R0)
}

/// `(block, cdp position, covered position)` for every 16-bit instruction
/// under a CDP cover in an executed block.
fn covered_sites(program: &Program, executed: &HashSet<BlockId>) -> Vec<(usize, usize, usize)> {
    let mut sites = Vec::new();
    for (b, block) in program.blocks.iter().enumerate() {
        if !executed.contains(&block.id) {
            continue;
        }
        let mut cover: Option<(usize, usize)> = None; // (cdp position, remaining)
        for (i, t) in block.insns.iter().enumerate() {
            if let Some(len) = t.insn.cdp_covered_len() {
                cover = Some((i, len));
                continue;
            }
            if let Some((cdp, remaining)) = cover {
                if t.insn.width() == Width::Thumb16 {
                    sites.push((b, cdp, i));
                }
                cover = if remaining > 1 {
                    Some((cdp, remaining - 1))
                } else {
                    None
                };
            }
        }
    }
    sites
}

/// Applies a miscompile fault to a compiled program variant at a
/// seed-determined site, restricted to `executed` blocks so the corruption
/// is observable over the recorded path.
///
/// Every fault in this family is *silent by construction*: the corrupted
/// variant still passes `Program::validate_encoding` and its re-expanded
/// trace still validates. Only the differential oracle — executing baseline
/// and variant over the same seeded inputs — can tell them apart, which is
/// what these faults exist to prove.
///
/// # Errors
///
/// [`InjectError::NoSite`] when the variant has no applicable site (e.g. a
/// baseline program with no 16-bit instructions).
pub fn inject_variant(
    program: &mut Program,
    fault: Fault,
    seed: u64,
    executed: &HashSet<BlockId>,
) -> Result<(), InjectError> {
    debug_assert_eq!(
        fault.target(),
        FaultTarget::Variant,
        "{fault} is not a miscompile"
    );
    let no_site = || InjectError::NoSite(fault);
    // Converted 16-bit ALU instructions — the chain members the pass
    // rewrote — in executed blocks, split by operand shape.
    let thumb_alu_sites = |want_imm: bool| -> Vec<(usize, usize)> {
        program
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, block)| executed.contains(&block.id))
            .flat_map(|(b, block)| {
                block
                    .insns
                    .iter()
                    .enumerate()
                    .filter(move |(_, t)| {
                        let insn = &t.insn;
                        let op = insn.op();
                        insn.width() == Width::Thumb16
                            && !op.is_format_switch()
                            && !op.is_mem()
                            && !op.is_branch()
                            && insn.dst().is_some()
                            && insn.imm().is_some() == want_imm
                    })
                    .map(move |(i, _)| (b, i))
            })
            .collect()
    };
    match fault {
        Fault::ClobberedDestination => {
            let sites = thumb_alu_sites(false);
            let (b, i) = sites[pick(&sites, seed).ok_or_else(no_site)?];
            let insn = program.blocks[b].insns[i].insn;
            let old = insn.dst().unwrap_or(Reg::R0);
            let srcs: Vec<Reg> = insn.srcs().iter().collect();
            program.blocks[b].insns[i].insn =
                rebuild(&insn, Some(other_low_reg(old, seed ^ 0x11)), &srcs, None);
            Ok(())
        }
        Fault::DroppedMember => {
            let sites = covered_sites(program, executed);
            let (b, cdp, victim) = sites[pick(&sites, seed).ok_or_else(no_site)?];
            let block = &mut program.blocks[b];
            let cover = block.insns[cdp].insn.cdp_covered_len().unwrap_or(1);
            block.insns.remove(victim);
            if cover <= 1 {
                block.insns.remove(cdp);
            } else {
                block.insns[cdp].insn = Insn::cdp(cover as u8 - 1);
            }
            Ok(())
        }
        Fault::ReorderedStore => {
            // A store and the nearest preceding producer of its value
            // register, same width (so the fetch layout — and any CDP
            // cover — is untouched by the swap), in a block the pass
            // transformed (it holds at least one 16-bit instruction).
            let mut sites: Vec<(usize, usize, usize)> = Vec::new();
            for (b, block) in program.blocks.iter().enumerate() {
                if !executed.contains(&block.id) {
                    continue;
                }
                if !block.insns.iter().any(|t| t.insn.width() == Width::Thumb16) {
                    continue;
                }
                for (i, t) in block.insns.iter().enumerate() {
                    // Predicated pairs can be runtime no-ops, making the
                    // swap unobservable; insist on unconditional ones.
                    if !t.insn.op().is_store() || t.insn.is_predicated() {
                        continue;
                    }
                    let Some(value_reg) = t.insn.srcs().get(0) else {
                        continue;
                    };
                    for j in (0..i).rev() {
                        let w = &block.insns[j].insn;
                        if w.dst() == Some(value_reg) {
                            // Producers like `orr rX, rX, rX` recompute the
                            // old value; swapping past them is unobservable.
                            let can_change = w.srcs().iter().any(|s| s != value_reg)
                                || w.imm().is_some_and(|imm| imm != 0);
                            if w.width() == t.insn.width()
                                && !w.op().is_format_switch()
                                && !w.is_predicated()
                                && can_change
                            {
                                sites.push((b, i, j));
                            }
                            break; // nearest producer only
                        }
                    }
                }
            }
            let (b, i, j) = sites[pick(&sites, seed).ok_or_else(no_site)?];
            program.blocks[b].insns.swap(i, j);
            Ok(())
        }
        Fault::WrongThumbImmediate => {
            let sites: Vec<(usize, usize)> = thumb_alu_sites(true)
                .into_iter()
                .filter(|&(b, i)| {
                    // Additive/xor/move opcodes: a different immediate is
                    // guaranteed to produce a different value.
                    matches!(
                        program.blocks[b].insns[i].insn.op(),
                        Opcode::Add | Opcode::Sub | Opcode::Mov | Opcode::Eor
                    )
                })
                .collect();
            let (b, i) = sites[pick(&sites, seed).ok_or_else(no_site)?];
            let insn = program.blocks[b].insns[i].insn;
            let old = insn.imm().unwrap_or(0);
            let delta = 1 + (mix(seed ^ 0x13) % 126) as i32;
            let bogus = (old + delta) % 128; // stays inside Thumb's field
            let srcs: Vec<Reg> = insn.srcs().iter().collect();
            program.blocks[b].insns[i].insn = rebuild(&insn, insn.dst(), &srcs, Some(bogus));
            Ok(())
        }
        Fault::StaleSource => {
            let sites: Vec<(usize, usize)> = thumb_alu_sites(false)
                .into_iter()
                .filter(|&(b, i)| !program.blocks[b].insns[i].insn.srcs().is_empty())
                .collect();
            let (b, i) = sites[pick(&sites, seed).ok_or_else(no_site)?];
            let insn = program.blocks[b].insns[i].insn;
            let mut srcs: Vec<Reg> = insn.srcs().iter().collect();
            let slot = (mix(seed ^ 0x17) % srcs.len() as u64) as usize;
            srcs[slot] = other_low_reg(srcs[slot], seed ^ 0x19);
            program.blocks[b].insns[i].insn = rebuild(&insn, insn.dst(), &srcs, None);
            Ok(())
        }
        Fault::BadCdpLength => {
            let sites: Vec<(usize, usize)> = program
                .blocks
                .iter()
                .enumerate()
                .filter(|(_, block)| executed.contains(&block.id))
                .flat_map(|(b, block)| {
                    block
                        .insns
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.insn.cdp_covered_len().is_some_and(|l| l >= 2))
                        .map(move |(i, _)| (b, i))
                })
                .collect();
            let (b, i) = sites[pick(&sites, seed).ok_or_else(no_site)?];
            let cover = program.blocks[b].insns[i]
                .insn
                .cdp_covered_len()
                .unwrap_or(2);
            program.blocks[b].insns[i].insn = Insn::cdp(cover as u8 - 1);
            Ok(())
        }
        _ => Err(no_site()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::ProgramGenerator;
    use crate::params::GenParams;
    use crate::path::ExecutionPath;

    fn setup() -> (Program, Trace) {
        let mut p = GenParams::mobile(31);
        p.num_functions = 10;
        let program = ProgramGenerator::new(p).generate();
        let path = ExecutionPath::generate(&program, 5, 3_000);
        let trace = Trace::expand(&program, &path);
        (program, trace)
    }

    /// A hand-built "transformed variant": one block whose tail is a
    /// CDP-covered 16-bit region, preceded by a producer/store pair —
    /// at least one site for every miscompile fault.
    fn mini_variant() -> (Program, ExecutionPath, HashSet<BlockId>) {
        use crate::ids::FuncId;
        use crate::program::{BasicBlock, Function};
        let t16 = |insn: Insn| insn.with_width(Width::Thumb16);
        let insns = vec![
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R0, &[Reg::R7, Reg::R7]),
                InsnUid(0),
            ),
            TaggedInsn::new(Insn::store(Opcode::Str, Reg::R0, Reg::R1, 0), InsnUid(1)),
            TaggedInsn::new(Insn::cdp(3), InsnUid(10)),
            TaggedInsn::new(
                t16(Insn::alu(Opcode::Add, Reg::R2, &[Reg::R0, Reg::R1])),
                InsnUid(2),
            ),
            TaggedInsn::new(
                t16(Insn::alu_imm(Opcode::Sub, Reg::R3, Reg::R3, 5)),
                InsnUid(3),
            ),
            TaggedInsn::new(
                t16(Insn::alu(Opcode::Eor, Reg::R4, &[Reg::R2, Reg::R3])),
                InsnUid(4),
            ),
        ];
        let program = Program {
            name: "mini-variant".into(),
            suite: crate::suite::Suite::Mobile,
            functions: vec![Function {
                id: FuncId(0),
                name: "f".into(),
                blocks: vec![BlockId(0)],
            }],
            blocks: vec![BasicBlock {
                id: BlockId(0),
                func: FuncId(0),
                insns,
                terminator: crate::program::Terminator::Exit,
            }],
            mem: crate::params::MemProfile::default(),
            load_hints: Default::default(),
        };
        let path = ExecutionPath {
            blocks: vec![BlockId(0)],
            seed: 0,
        };
        let executed: HashSet<BlockId> = path.blocks.iter().copied().collect();
        (program, path, executed)
    }

    #[test]
    fn every_fault_is_detected_by_some_validator() {
        let (clean_program, clean_trace) = setup();
        clean_program
            .validate_encoding()
            .expect("clean program validates");
        clean_trace
            .validate(&clean_program)
            .expect("clean trace validates");

        for (k, fault) in Fault::ALL.into_iter().enumerate() {
            let seed = 0xFA_u64 + k as u64;
            match fault.target() {
                FaultTarget::Program => {
                    let mut program = clean_program.clone();
                    inject_program(&mut program, fault, seed).expect("site exists");
                    // Either the static checks or the trace cross-check must
                    // flag the corruption — and nothing may panic.
                    let static_err = program.validate_encoding().is_err();
                    let trace_err = clean_trace.validate(&program).is_err();
                    assert!(static_err || trace_err, "fault {fault} escaped validation");
                }
                FaultTarget::Trace => {
                    let mut trace = clean_trace.clone();
                    inject_trace(&mut trace, fault, seed).expect("site exists");
                    if fault == Fault::OversizeTrace {
                        // The miniature runaway stays under the global cap;
                        // its signature is growth beyond the recorded window.
                        assert!(trace.len() >= clean_trace.len() * 2 || trace.len() >= 4096);
                    } else {
                        assert!(
                            trace.validate(&clean_program).is_err(),
                            "fault {fault} escaped validation"
                        );
                    }
                }
                FaultTarget::Variant => {
                    // Miscompiles are *designed* to slip past every static
                    // check; the differential oracle (critic-compiler)
                    // proves detection. Here: prove silence.
                    let (mut program, path, executed) = mini_variant();
                    inject_variant(&mut program, fault, seed, &executed).expect("site exists");
                    program
                        .validate_encoding()
                        .unwrap_or_else(|e| panic!("miscompile {fault} is not silent: {e}"));
                    let trace = Trace::expand(&program, &path);
                    trace
                        .validate(&program)
                        .unwrap_or_else(|e| panic!("miscompile {fault} trace not silent: {e}"));
                }
            }
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let (program, trace) = setup();
        for fault in Fault::ALL {
            match fault.target() {
                FaultTarget::Program => {
                    let mut a = program.clone();
                    let mut b = program.clone();
                    inject_program(&mut a, fault, 42).expect("site");
                    inject_program(&mut b, fault, 42).expect("site");
                    assert_eq!(a, b, "{fault} must be reproducible from its seed");
                }
                FaultTarget::Trace => {
                    let mut a = trace.clone();
                    let mut b = trace.clone();
                    inject_trace(&mut a, fault, 42).expect("site");
                    inject_trace(&mut b, fault, 42).expect("site");
                    assert_eq!(a, b, "{fault} must be reproducible from its seed");
                }
                FaultTarget::Variant => {
                    let (variant, _, executed) = mini_variant();
                    let mut a = variant.clone();
                    let mut b = variant.clone();
                    inject_variant(&mut a, fault, 42, &executed).expect("site");
                    inject_variant(&mut b, fault, 42, &executed).expect("site");
                    assert_eq!(a, b, "{fault} must be reproducible from its seed");
                    assert_ne!(a, variant, "{fault} must actually corrupt the variant");
                }
            }
        }
    }

    #[test]
    fn miscompiles_have_no_site_in_an_untransformed_program() {
        let (program, _) = setup();
        let executed: HashSet<BlockId> = program.blocks.iter().map(|b| b.id).collect();
        for fault in Fault::MISCOMPILES {
            let mut p = program.clone();
            assert_eq!(
                inject_variant(&mut p, fault, 9, &executed),
                Err(InjectError::NoSite(fault)),
                "{fault} found a site in an all-32-bit baseline"
            );
        }
    }

    #[test]
    fn fault_names_round_trip() {
        for fault in Fault::ALL {
            assert_eq!(fault.name().parse::<Fault>(), Ok(fault));
        }
        assert!("no-such-fault"
            .parse::<Fault>()
            .unwrap_err()
            .contains("valid:"));
    }

    #[test]
    fn injection_into_degenerate_inputs_errors_instead_of_panicking() {
        let mut empty_program = Program {
            name: "empty".into(),
            suite: crate::suite::Suite::Mobile,
            functions: Vec::new(),
            blocks: Vec::new(),
            mem: crate::params::MemProfile::default(),
            load_hints: Default::default(),
        };
        for fault in Fault::ALL
            .into_iter()
            .filter(|f| f.target() == FaultTarget::Program)
        {
            assert_eq!(
                inject_program(&mut empty_program, fault, 1),
                Err(InjectError::NoSite(fault)),
                "{fault} on an empty program"
            );
        }
        let mut empty_trace = Trace {
            name: "empty".into(),
            entries: Vec::new(),
        };
        assert!(inject_trace(&mut empty_trace, Fault::OversizeTrace, 1).is_err());
        assert!(inject_trace(&mut empty_trace, Fault::ForwardDep, 1).is_err());
        // EmptyTrace on an already-empty trace is trivially applicable.
        assert!(inject_trace(&mut empty_trace, Fault::EmptyTrace, 1).is_ok());
    }
}
