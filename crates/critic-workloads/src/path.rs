//! Block-level execution paths.
//!
//! A path is the sequence of basic blocks one run of the app visits. It is
//! generated *once* from the original binary's CFG and a seed (the "user
//! input") and then replayed over every compiled variant of that binary —
//! the compiler passes rewrite block bodies but never the CFG, so a path
//! stays valid and the comparison between design points is input-identical,
//! the way the paper replays the same recorded app activity on each binary.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::ids::BlockId;
use crate::program::{Program, Terminator};

/// A block-level execution path through a program's CFG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionPath {
    /// Visited blocks in order.
    pub blocks: Vec<BlockId>,
    /// The seed used for branch/trip decisions.
    pub seed: u64,
}

impl ExecutionPath {
    /// Walks the CFG from the program entry until at least `target_insns`
    /// dynamic instructions have been covered.
    ///
    /// Branch outcomes are drawn from each [`Terminator::Branch`]'s ground
    /// truth probability; calls and returns follow a call stack. Reaching
    /// [`Terminator::Exit`] (or an empty call stack on return) wraps around
    /// to the entry, modelling the app's event loop.
    pub fn generate(program: &Program, seed: u64, target_insns: usize) -> ExecutionPath {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut blocks = Vec::new();
        let mut stack: Vec<BlockId> = Vec::new();
        let mut covered = 0usize;
        let mut current = program.entry();
        // Hard cap so a malformed CFG cannot spin forever on empty blocks.
        let max_steps = target_insns.saturating_mul(4).max(1024);
        for _ in 0..max_steps {
            let block = program.block(current);
            blocks.push(current);
            covered += block.len();
            if covered >= target_insns {
                break;
            }
            current = match block.terminator {
                Terminator::Fallthrough(next) | Terminator::Jump(next) => next,
                Terminator::Branch {
                    taken,
                    not_taken,
                    prob_taken,
                } => {
                    if rng.gen_bool(prob_taken.clamp(0.0, 1.0)) {
                        taken
                    } else {
                        not_taken
                    }
                }
                Terminator::Call { callee, return_to } => {
                    stack.push(return_to);
                    program.functions[callee.index()].entry()
                }
                Terminator::Return => match stack.pop() {
                    Some(return_to) => return_to,
                    None => program.entry(),
                },
                Terminator::Exit => {
                    stack.clear();
                    program.entry()
                }
            };
        }
        ExecutionPath { blocks, seed }
    }

    /// Number of blocks visited.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total dynamic instructions the path covers in `program`.
    ///
    /// This count depends on the program variant (compiler passes insert
    /// CDPs and switch branches), which is exactly the dynamic-instruction
    /// expansion the paper charges against each scheme.
    pub fn dyn_insns(&self, program: &Program) -> usize {
        self.blocks.iter().map(|&b| program.block(b).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::ProgramGenerator;
    use crate::params::GenParams;

    fn program() -> Program {
        let mut p = GenParams::mobile(77);
        p.num_functions = 16;
        ProgramGenerator::new(p).generate()
    }

    #[test]
    fn path_reaches_target_length() {
        let program = program();
        let path = ExecutionPath::generate(&program, 5, 10_000);
        assert!(path.dyn_insns(&program) >= 10_000);
        assert!(!path.is_empty());
    }

    #[test]
    fn path_is_deterministic() {
        let program = program();
        let a = ExecutionPath::generate(&program, 5, 5_000);
        let b = ExecutionPath::generate(&program, 5, 5_000);
        assert_eq!(a, b);
        let c = ExecutionPath::generate(&program, 6, 5_000);
        assert_ne!(a, c);
    }

    #[test]
    fn consecutive_blocks_are_cfg_successors() {
        let program = program();
        let path = ExecutionPath::generate(&program, 9, 8_000);
        let mut stack: Vec<BlockId> = Vec::new();
        for pair in path.blocks.windows(2) {
            let (from, to) = (pair[0], pair[1]);
            let ok = match program.block(from).terminator {
                Terminator::Fallthrough(n) | Terminator::Jump(n) => n == to,
                Terminator::Branch {
                    taken, not_taken, ..
                } => to == taken || to == not_taken,
                Terminator::Call { callee, return_to } => {
                    stack.push(return_to);
                    program.functions[callee.index()].entry() == to
                }
                Terminator::Return => {
                    let expected = stack.pop().unwrap_or(program.entry());
                    expected == to
                }
                Terminator::Exit => to == program.entry(),
            };
            assert!(ok, "{from} -> {to} is not a CFG edge");
        }
    }

    #[test]
    fn loops_revisit_blocks() {
        let mut p = GenParams::spec_int(3);
        p.num_functions = 6;
        let program = ProgramGenerator::new(p).generate();
        let path = ExecutionPath::generate(&program, 11, 20_000);
        let mut counts = std::collections::HashMap::new();
        for &b in &path.blocks {
            *counts.entry(b).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        assert!(
            max >= 16,
            "SPEC loops should revisit blocks many times, max={max}"
        );
    }
}
