//! Workload catalogs reproducing the paper's Table II.
//!
//! Ten popular Play-Store apps spanning document readers to video streaming,
//! plus eight SPEC.int and eight SPEC.float programs. Each entry binds a
//! name, its domain and the activity the paper performed, and a
//! [`GenParams`] preset with a per-app seed and light per-app flavour
//! adjustments (so apps differ the way real apps do, not just by seed).

use serde::{Deserialize, Serialize};

use crate::generate::ProgramGenerator;
use crate::params::GenParams;
use crate::program::Program;

/// The three workload suites of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// Ten Play-Store Android apps (Table II, top).
    Mobile,
    /// Eight SPEC CPU2006 integer programs.
    SpecInt,
    /// Eight SPEC CPU2006 floating-point programs.
    SpecFloat,
}

impl Suite {
    /// All suites in evaluation order.
    pub const ALL: [Suite; 3] = [Suite::Mobile, Suite::SpecInt, Suite::SpecFloat];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Mobile => "Android",
            Suite::SpecInt => "SPEC.int",
            Suite::SpecFloat => "SPEC.float",
        }
    }

    /// The workload catalog of this suite.
    pub fn apps(self) -> Vec<AppSpec> {
        match self {
            Suite::Mobile => mobile_apps(),
            Suite::SpecInt => spec_int_apps(),
            Suite::SpecFloat => spec_float_apps(),
        }
    }
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One workload: a Table II row bound to generator parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Workload name (`Acrobat`, `bzip2`, …).
    pub name: String,
    /// The suite it belongs to.
    pub suite: Suite,
    /// Domain column of Table II.
    pub domain: String,
    /// "Activities performed" column of Table II.
    pub activity: String,
    /// Generator parameters (seeded per app).
    pub params: GenParams,
}

impl AppSpec {
    /// Generates this workload's static binary.
    pub fn generate_program(&self) -> Program {
        let mut program = ProgramGenerator::new(self.params.clone()).generate();
        program.name = self.name.clone();
        program.suite = self.suite;
        program
    }

    /// Seed for the execution-path walk (distinct from the binary seed so
    /// code layout and user input vary independently).
    pub fn path_seed(&self) -> u64 {
        self.params
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xA5A5)
    }
}

fn app(name: &str, suite: Suite, domain: &str, activity: &str, params: GenParams) -> AppSpec {
    AppSpec {
        name: name.to_string(),
        suite,
        domain: domain.to_string(),
        activity: activity.to_string(),
        params,
    }
}

/// The ten Play-Store apps of Table II.
pub fn mobile_apps() -> Vec<AppSpec> {
    let base = |seed: u64| GenParams::mobile(seed);
    let mut acrobat = base(0xA001);
    // Document rendering: slightly longer blocks, strong chain presence.
    acrobat.chain_density = 0.029;
    acrobat.insns_per_block = crate::params::SpanRange::new(9, 23);

    let mut angrybirds = base(0xA002);
    // Physics engine: a little more FP and multiply work.
    angrybirds.float_frac = 0.05;
    angrybirds.mul_frac = 0.06;

    let mut browser = base(0xA003);
    // Web interface: biggest code base, most functions touched.
    browser.num_functions = 480;
    browser.call_density = 0.42;

    let mut facebook = base(0xA004);
    facebook.call_density = 0.40;
    facebook.branch_bias = 0.88;

    let mut email = base(0xA005);
    email.num_functions = 320;

    let mut maps = base(0xA006);
    // Navigation: heavier dataflow between criticals (most F.StallForR+D).
    maps.chain_density = 0.030;
    maps.high_fanout = crate::params::SpanRange::new(22, 38);

    let mut music = base(0xA007);
    // Audio decode loop: smallest benefit in the paper (9%).
    music.num_functions = 260;
    music.loop_prob = 0.35;
    music.chain_density = 0.018;

    let mut office = base(0xA008);
    office.insns_per_block = crate::params::SpanRange::new(8, 21);

    let mut photogallery = base(0xA009);
    photogallery.load_frac = 0.26;
    photogallery.mem.stride_frac = 0.30;

    let mut youtube = base(0xA00A);
    // Video streaming: strong dataflow pressure (26.7% F.StallForR+D).
    youtube.chain_density = 0.030;
    youtube.chain_spacing = crate::params::SpanRange::new(1, 6);

    vec![
        app(
            "Acrobat",
            Suite::Mobile,
            "Document readers",
            "View, add comment",
            acrobat,
        ),
        app(
            "Angrybirds",
            Suite::Mobile,
            "Physics games",
            "1 level of game",
            angrybirds,
        ),
        app(
            "Browser",
            Suite::Mobile,
            "Web interfaces",
            "Search and load pages",
            browser,
        ),
        app(
            "Facebook",
            Suite::Mobile,
            "Instant messengers",
            "RT-texting",
            facebook,
        ),
        app(
            "Email",
            Suite::Mobile,
            "Email clients",
            "Send, receive mail",
            email,
        ),
        app(
            "Maps",
            Suite::Mobile,
            "Navigation",
            "Search directions",
            maps,
        ),
        app(
            "Music",
            Suite::Mobile,
            "Music/audio players",
            "2 minutes song",
            music,
        ),
        app(
            "Office",
            Suite::Mobile,
            "Interactive displays",
            "Slide edit, present",
            office,
        ),
        app(
            "PhotoGallery",
            Suite::Mobile,
            "Image browsing",
            "Browse images",
            photogallery,
        ),
        app(
            "Youtube",
            Suite::Mobile,
            "Video streaming",
            "HQ video stream",
            youtube,
        ),
    ]
}

/// The eight SPEC.int programs of Table II.
pub fn spec_int_apps() -> Vec<AppSpec> {
    let names = [
        "bzip2",
        "hmmer",
        "libquantum",
        "mcf",
        "gcc",
        "gobmk",
        "sjeng",
        "h264ref",
    ];
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut params = GenParams::spec_int(0xB000 + i as u64);
            match *name {
                // mcf: pointer chasing, huge working set, low IPC.
                "mcf" => {
                    params.mem.working_set_bytes = 32 << 20;
                    params.mem.stride_frac = 0.10;
                    params.mem.hot_frac = 0.10;
                }
                // libquantum: streaming kernels.
                "libquantum" => {
                    params.mem.stride_frac = 0.85;
                    params.loop_trips = crate::params::SpanRange::new(100, 400);
                }
                // gcc: bigger code base than the rest of SPEC.
                "gcc" => {
                    params.num_functions = 90;
                    params.call_density = 0.15;
                }
                // gobmk/sjeng: branchy search.
                "gobmk" | "sjeng" => {
                    params.branch_bias = 0.84;
                    params.cond_branch_prob = 0.55;
                }
                _ => {}
            }
            app(
                name,
                Suite::SpecInt,
                "SPEC CPU2006 int",
                "ref input",
                params,
            )
        })
        .collect()
}

/// The eight SPEC.float programs of Table II.
pub fn spec_float_apps() -> Vec<AppSpec> {
    let names = [
        "sperand", "namd", "gromacs", "calculix", "lbm", "milc", "dealII", "leslie3d",
    ];
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut params = GenParams::spec_float(0xC200 + i as u64);
            match *name {
                // lbm/leslie3d: stream-dominated stencil codes.
                "lbm" | "leslie3d" => {
                    params.mem.stride_frac = 0.9;
                    params.float_frac = 0.40;
                }
                // namd/gromacs: molecular dynamics, multiply heavy.
                "namd" | "gromacs" => {
                    params.mul_frac = 0.05;
                    params.float_frac = 0.38;
                }
                _ => {}
            }
            app(
                name,
                Suite::SpecFloat,
                "SPEC CPU2006 float",
                "ref input",
                params,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_match_table_ii() {
        let mobile = mobile_apps();
        assert_eq!(mobile.len(), 10);
        let names: Vec<&str> = mobile.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "Acrobat",
                "Angrybirds",
                "Browser",
                "Facebook",
                "Email",
                "Maps",
                "Music",
                "Office",
                "PhotoGallery",
                "Youtube"
            ]
        );
        assert_eq!(spec_int_apps().len(), 8);
        assert_eq!(spec_float_apps().len(), 8);
    }

    #[test]
    fn seeds_are_unique_across_the_evaluation() {
        let mut seeds = std::collections::HashSet::new();
        for suite in Suite::ALL {
            for app in suite.apps() {
                assert!(
                    seeds.insert(app.params.seed),
                    "duplicate seed for {}",
                    app.name
                );
            }
        }
    }

    #[test]
    fn suite_labels_match_figures() {
        assert_eq!(Suite::Mobile.label(), "Android");
        assert_eq!(Suite::SpecInt.to_string(), "SPEC.int");
    }

    #[test]
    fn every_app_belongs_to_its_suite() {
        for suite in Suite::ALL {
            for app in suite.apps() {
                assert_eq!(app.suite, suite, "{}", app.name);
            }
        }
    }

    #[test]
    fn path_seed_differs_from_binary_seed() {
        for app in mobile_apps() {
            assert_ne!(app.path_seed(), app.params.seed);
        }
    }
}
