//! Generator parameters encoding the paper's workload characterization.
//!
//! Every number here maps to a measurement in the paper:
//!
//! * [`GenParams::chain_gap_weights`] / [`GenParams::isolated_critical_frac`]
//!   reproduce Fig. 1b — Android apps have 1–5 low-fanout instructions
//!   between successive high-fanout instructions in a dependence chain for
//!   ~52% of the time (and essentially never a direct critical→critical
//!   dependence), while SPEC.float / SPEC.int have *no* dependent critical
//!   pairs 60% / 35% of the time;
//! * [`GenParams::critical_load_frac`] and the divide/float fractions
//!   reproduce Fig. 3c — the mobile critical-instruction mix is dominated by
//!   short-latency ops;
//! * the function-count and block-size knobs set the code footprint that
//!   drives Fig. 3b's F.StallForI (Android executes "from a much larger code
//!   base with a diverse set of libraries … more frequent function calls");
//! * the chain length/spacing knobs reproduce Fig. 5a (mobile ICs ≤ ~20
//!   instructions spread over ≤ ~540; SPEC ICs up to 1.3k spread over 6.3k,
//!   via loop-carried dependences);
//! * the predication / high-register / wide-immediate fractions set the
//!   Thumb-convertible share of CritIC instructions (Fig. 5b: ~95.5%).

use serde::{Deserialize, Serialize};

/// An inclusive integer range the generator samples uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRange {
    /// Inclusive lower bound.
    pub min: u32,
    /// Inclusive upper bound.
    pub max: u32,
}

impl SpanRange {
    /// Builds a range, normalizing an inverted pair.
    pub fn new(min: u32, max: u32) -> SpanRange {
        if min <= max {
            SpanRange { min, max }
        } else {
            SpanRange { min: max, max: min }
        }
    }

    /// The midpoint, used for sizing estimates.
    pub fn mid(&self) -> u32 {
        (self.min + self.max) / 2
    }
}

/// Data-side memory behaviour, embedded in the generated [`crate::Program`]
/// so the trace expander reproduces the same address streams for every
/// compiled variant of the binary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemProfile {
    /// Seed for the per-instruction address hash.
    pub seed: u64,
    /// Total data working set in bytes.
    pub working_set_bytes: u64,
    /// Size of the hot region repeatedly-accessed loads hit.
    pub hot_bytes: u64,
    /// Fraction of memory instructions that stream with a fixed stride.
    pub stride_frac: f64,
    /// Fraction of memory instructions that stay in the hot region
    /// (the remainder accesses the working set at random).
    pub hot_frac: f64,
    /// Class of *critical* (chain) loads: `true` = streaming/stride
    /// (SPEC's prefetchable, miss-prone high-fanout loads — what makes
    /// Fig. 1a's critical-load prefetching shine there), `false` = hot
    /// (mobile's short-latency critical loads, Fig. 3c).
    pub critical_load_stride: bool,
}

impl Default for MemProfile {
    fn default() -> Self {
        MemProfile {
            seed: 1,
            working_set_bytes: 1 << 19,
            hot_bytes: 1 << 14,
            stride_frac: 0.2,
            hot_frac: 0.6,
            critical_load_stride: false,
        }
    }
}

/// All knobs of the synthetic program/trace generator.
///
/// Construct via the suite presets ([`GenParams::mobile`],
/// [`GenParams::spec_int`], [`GenParams::spec_float`]) and adjust fields for
/// per-app flavour (see [`crate::suite`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenParams {
    /// Master seed; every derived stream re-seeds from it.
    pub seed: u64,

    // ---- code shape ----
    /// Number of functions in the binary.
    pub num_functions: u32,
    /// Basic blocks per function.
    pub blocks_per_function: SpanRange,
    /// Instructions per block (excluding the terminator's branch).
    pub insns_per_block: SpanRange,

    // ---- control flow ----
    /// Probability a function contains a natural loop.
    pub loop_prob: f64,
    /// Loop trip counts.
    pub loop_trips: SpanRange,
    /// Probability a block ends in a call (functions call strictly
    /// higher-numbered functions, so the call graph is a DAG).
    pub call_density: f64,
    /// Probability a non-call, non-loop block ends in a conditional branch.
    pub cond_branch_prob: f64,
    /// Bias of conditional branches: 0.5 = coin flip (hard to predict),
    /// towards 1.0 = strongly biased (easy to predict).
    pub branch_bias: f64,

    // ---- criticality / dataflow structure ----
    /// Probability (per instruction slot) that a dependence-chain template
    /// is planted starting at that slot.
    pub chain_density: f64,
    /// Fraction of critical (high-fanout) producers that have *no* dependent
    /// critical instruction — Fig. 1b's "none" bucket.
    pub isolated_critical_frac: f64,
    /// Number of critical members in a non-isolated chain.
    pub chain_criticals: SpanRange,
    /// Weights of 0–5 low-fanout chain members between two successive
    /// critical members (Fig. 1b's x-axis).
    pub chain_gap_weights: [f64; 6],
    /// Free-slot spacing between consecutive chain members (controls the
    /// *spread* of Fig. 5a).
    pub chain_spacing: SpanRange,
    /// Consumers attached to a critical producer (its fanout).
    pub high_fanout: SpanRange,
    /// Consumers attached to a low-fanout chain member.
    pub low_fanout: SpanRange,
    /// Window (in slots) within which a producer's consumers are placed.
    pub consumer_window: u32,
    /// Fraction of critical producers that are loads (Fig. 3c: high for
    /// SPEC, low for mobile).
    pub critical_load_frac: f64,
    /// Whether loop bodies carry an accumulator dependence across
    /// iterations (SPEC-style kilo-instruction ICs, Fig. 5a).
    pub loop_carried_chain: bool,

    // ---- instruction mix (filler instructions) ----
    /// Fraction of filler slots that are loads.
    pub load_frac: f64,
    /// Fraction of filler slots that are stores.
    pub store_frac: f64,
    /// Fraction of filler slots that are integer multiplies.
    pub mul_frac: f64,
    /// Fraction of filler slots that are integer divides.
    pub div_frac: f64,
    /// Fraction of filler slots that are floating point.
    pub float_frac: f64,
    /// Fraction of instructions carrying a non-AL condition.
    pub predicated_frac: f64,
    /// Fraction of operands drawn from the high registers (`r8`–`r12`).
    pub high_reg_frac: f64,
    /// Fraction of immediates too wide for the 16-bit format.
    pub wide_imm_frac: f64,

    // ---- data memory ----
    /// Memory behaviour baked into the program.
    pub mem: MemProfile,
}

impl GenParams {
    /// Preset reproducing the paper's Android-app characteristics.
    pub fn mobile(seed: u64) -> GenParams {
        GenParams {
            seed,
            num_functions: 380,
            blocks_per_function: SpanRange::new(3, 9),
            insns_per_block: SpanRange::new(8, 22),
            loop_prob: 0.22,
            loop_trips: SpanRange::new(4, 16),
            call_density: 0.38,
            cond_branch_prob: 0.45,
            branch_bias: 0.96,
            chain_density: 0.026,
            isolated_critical_frac: 0.03,
            chain_criticals: SpanRange::new(2, 4),
            chain_gap_weights: [0.01, 0.42, 0.23, 0.12, 0.09, 0.13],
            chain_spacing: SpanRange::new(0, 2),
            high_fanout: SpanRange::new(20, 34),
            low_fanout: SpanRange::new(1, 2),
            consumer_window: 64,
            critical_load_frac: 0.15,
            loop_carried_chain: false,
            load_frac: 0.22,
            store_frac: 0.10,
            mul_frac: 0.03,
            div_frac: 0.004,
            float_frac: 0.01,
            predicated_frac: 0.05,
            high_reg_frac: 0.06,
            wide_imm_frac: 0.05,
            mem: MemProfile {
                seed: seed ^ 0x6d65_6d00,
                working_set_bytes: 1 << 19,
                hot_bytes: 1 << 15,
                stride_frac: 0.02,
                hot_frac: 0.95,
                critical_load_stride: false,
            },
        }
    }

    /// Preset reproducing SPEC CPU2006 integer characteristics.
    pub fn spec_int(seed: u64) -> GenParams {
        GenParams {
            seed,
            num_functions: 36,
            blocks_per_function: SpanRange::new(4, 12),
            insns_per_block: SpanRange::new(8, 26),
            loop_prob: 0.85,
            loop_trips: SpanRange::new(16, 160),
            call_density: 0.06,
            cond_branch_prob: 0.40,
            branch_bias: 0.94,
            chain_density: 0.013,
            isolated_critical_frac: 0.35,
            chain_criticals: SpanRange::new(2, 3),
            chain_gap_weights: [0.62, 0.17, 0.10, 0.06, 0.03, 0.02],
            chain_spacing: SpanRange::new(2, 10),
            high_fanout: SpanRange::new(9, 15),
            low_fanout: SpanRange::new(1, 2),
            consumer_window: 48,
            critical_load_frac: 0.55,
            loop_carried_chain: true,
            load_frac: 0.26,
            store_frac: 0.09,
            mul_frac: 0.04,
            div_frac: 0.012,
            float_frac: 0.0,
            predicated_frac: 0.14,
            high_reg_frac: 0.22,
            wide_imm_frac: 0.18,
            mem: MemProfile {
                seed: seed ^ 0x6d65_6d01,
                working_set_bytes: 8 << 20,
                hot_bytes: 1 << 16,
                stride_frac: 0.35,
                hot_frac: 0.55,
                critical_load_stride: true,
            },
        }
    }

    /// Preset reproducing SPEC CPU2006 floating-point characteristics.
    pub fn spec_float(seed: u64) -> GenParams {
        GenParams {
            seed,
            num_functions: 28,
            blocks_per_function: SpanRange::new(3, 10),
            insns_per_block: SpanRange::new(10, 30),
            loop_prob: 0.92,
            loop_trips: SpanRange::new(40, 400),
            call_density: 0.04,
            cond_branch_prob: 0.30,
            branch_bias: 0.94,
            chain_density: 0.010,
            isolated_critical_frac: 0.60,
            chain_criticals: SpanRange::new(2, 2),
            chain_gap_weights: [0.70, 0.14, 0.08, 0.04, 0.02, 0.02],
            chain_spacing: SpanRange::new(3, 12),
            high_fanout: SpanRange::new(8, 11),
            low_fanout: SpanRange::new(1, 2),
            consumer_window: 64,
            critical_load_frac: 0.60,
            loop_carried_chain: true,
            load_frac: 0.30,
            store_frac: 0.10,
            mul_frac: 0.02,
            div_frac: 0.004,
            float_frac: 0.34,
            predicated_frac: 0.10,
            high_reg_frac: 0.20,
            wide_imm_frac: 0.15,
            mem: MemProfile {
                seed: seed ^ 0x6d65_6d02,
                working_set_bytes: 16 << 20,
                hot_bytes: 1 << 16,
                stride_frac: 0.70,
                hot_frac: 0.15,
                critical_load_stride: true,
            },
        }
    }

    /// Rough estimate of the binary's code footprint in bytes (all 32-bit).
    pub fn estimated_code_bytes(&self) -> u64 {
        u64::from(self.num_functions)
            * u64::from(self.blocks_per_function.mid())
            * (u64::from(self.insns_per_block.mid()) + 1)
            * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_range_normalizes() {
        let r = SpanRange::new(9, 3);
        assert_eq!((r.min, r.max), (3, 9));
        assert_eq!(r.mid(), 6);
    }

    #[test]
    fn gap_weights_are_distributions() {
        for params in [
            GenParams::mobile(1),
            GenParams::spec_int(1),
            GenParams::spec_float(1),
        ] {
            let sum: f64 = params.chain_gap_weights.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "weights of {:?} sum to {sum}",
                params.seed
            );
        }
    }

    #[test]
    fn mobile_footprint_exceeds_the_32kb_icache() {
        // Fig. 3b's i-cache stalls require the mobile code base to dwarf the
        // 32 KB i-cache.
        assert!(GenParams::mobile(1).estimated_code_bytes() > 96 * 1024);
        // SPEC hot code, by contrast, should be cacheable.
        assert!(GenParams::spec_int(1).estimated_code_bytes() < 64 * 1024);
    }

    #[test]
    fn suite_presets_differ_where_the_paper_says() {
        let mobile = GenParams::mobile(7);
        let int = GenParams::spec_int(7);
        let float = GenParams::spec_float(7);
        // Fig. 1b: direct critical→critical dependences are a SPEC thing.
        assert!(mobile.chain_gap_weights[0] < 0.05);
        assert!(int.chain_gap_weights[0] > 0.5);
        // Fig. 1b: isolated criticals — float 60%, int 35%, mobile ≈ none.
        assert!(float.isolated_critical_frac > int.isolated_critical_frac);
        assert!(int.isolated_critical_frac > mobile.isolated_critical_frac);
        // Fig. 3c: mobile criticals are short-latency.
        assert!(mobile.critical_load_frac < int.critical_load_frac);
        // Fig. 5a: kilo-instruction ICs come from loop-carried deps.
        assert!(!mobile.loop_carried_chain);
        assert!(int.loop_carried_chain && float.loop_carried_chain);
    }

    #[test]
    fn presets_are_deterministic_in_the_seed() {
        assert_eq!(GenParams::mobile(3), GenParams::mobile(3));
        assert_ne!(GenParams::mobile(3).mem.seed, GenParams::mobile(4).mem.seed);
    }
}
