//! The static-program generator.
//!
//! Given [`GenParams`], builds a [`Program`] whose *register def-use
//! structure* — not just its opcode mix — reproduces the paper's
//! characterization:
//!
//! * **chain templates**: dependence chains are planted explicitly. A chain
//!   is a sequence of members where each member reads the previous member's
//!   destination; *critical* members additionally receive `high_fanout`
//!   consumer instructions placed in a window after them, so the ROB-fanout
//!   heuristic of `critic-profiler` marks them critical, while the low-fanout
//!   members between two criticals realize Fig. 1b's gap histogram;
//! * **loop-carried accumulators** (SPEC presets) produce the
//!   kilo-instruction instruction chains of Fig. 5a;
//! * **filler instructions** realize the opcode mix, predication rate,
//!   high-register pressure, and immediate widths that gate Thumb
//!   conversion.
//!
//! The generator is fully deterministic in `params.seed`.

use critic_isa::{Cond, Insn, Opcode, Reg};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::ids::{BlockId, FuncId, InsnUid};
use crate::params::GenParams;
use crate::program::{BasicBlock, Function, Program, TaggedInsn, Terminator};
use crate::suite::Suite;

/// Builds one [`Program`] from a parameter set. See the module docs.
#[derive(Debug)]
pub struct ProgramGenerator {
    params: GenParams,
    rng: StdRng,
}

/// How far (in functions) a call may reach. Small code bases (SPEC) call
/// locally; app-sized code bases call all over their library surface, which
/// is what defeats the i-cache (paper Sec. II-D).
const SPEC_CALL_WINDOW: u32 = 8;

/// Registers the allocator hands out (`r0`–`r11`; sp/lr/pc are special and
/// `r12` is the scratch destination of fanout-consumer instructions).
const POOL_SIZE: usize = 12;

/// Scratch destination for consumer instructions whose value is never used.
const SCRATCH: Reg = Reg::R12;

impl ProgramGenerator {
    /// Creates a generator for the given parameters.
    pub fn new(params: GenParams) -> ProgramGenerator {
        let rng = StdRng::seed_from_u64(params.seed);
        ProgramGenerator { params, rng }
    }

    /// Generates the program.
    pub fn generate(mut self) -> Program {
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut functions: Vec<Function> = Vec::new();
        let mut uid_counter = 0u32;
        let mut load_hints = std::collections::BTreeSet::new();
        let num_functions = self.params.num_functions.max(1);
        for f in 0..num_functions {
            let func_id = FuncId(f);
            let skeleton = self.plan_function(func_id, num_functions);
            let built = self.build_function(
                func_id,
                &skeleton,
                blocks.len() as u32,
                &mut uid_counter,
                &mut load_hints,
            );
            functions.push(Function {
                id: func_id,
                name: format!("f{f}"),
                blocks: built.iter().map(|b| b.id).collect(),
            });
            blocks.extend(built);
        }
        Program {
            name: String::from("synthetic"),
            suite: Suite::Mobile,
            functions,
            blocks,
            mem: self.params.mem,
            load_hints,
        }
    }

    fn sample_span(&mut self, span: crate::params::SpanRange) -> u32 {
        if span.min >= span.max {
            span.min
        } else {
            self.rng.gen_range(span.min..=span.max)
        }
    }

    fn plan_function(&mut self, func: FuncId, num_functions: u32) -> FunctionSkeleton {
        // The entry function is the app's event loop: it must be big enough
        // and call-dense enough to actually dispatch into the handler
        // functions, otherwise the whole execution degenerates to a tiny
        // local loop.
        let is_entry = func.0 == 0;
        // App-sized binaries additionally get a *dispatcher layer*: the
        // first few functions fan calls out across the whole library
        // surface, the way an event loop dispatches into diverse handlers.
        // This is what makes the executed footprint exceed the i-cache.
        let dispatcher_layer = self.params.num_functions / 32;
        let is_dispatcher =
            self.params.num_functions > 100 && func.0 > 0 && func.0 <= dispatcher_layer;
        let mut nb = self.sample_span(self.params.blocks_per_function).max(1) as usize;
        if is_entry {
            nb = nb.max(12);
        } else if is_dispatcher {
            nb = nb.max(8);
        }
        let call_density = if is_entry || is_dispatcher {
            (self.params.call_density * 2.0).clamp(0.6, 0.95)
        } else {
            self.params.call_density
        };
        let sizes: Vec<usize> = (0..nb)
            .map(|_| self.sample_span(self.params.insns_per_block).max(2) as usize)
            .collect();

        let mut ends: Vec<BlockEnd> = vec![BlockEnd::Fallthrough; nb];

        // Natural loop: a backward conditional branch from tail to head.
        let mut loop_span = None;
        if nb >= 3 && self.rng.gen_bool(self.params.loop_prob) {
            let head = self.rng.gen_range(0..nb - 2);
            let tail = self.rng.gen_range(head + 1..nb - 1);
            let trips = f64::from(self.sample_span(self.params.loop_trips).max(1));
            ends[tail] = BlockEnd::LoopBack {
                head,
                prob_taken: trips / (trips + 1.0),
            };
            loop_span = Some((head, tail));
        }

        for (i, end) in ends.iter_mut().enumerate().take(nb - 1) {
            if !matches!(end, BlockEnd::Fallthrough) {
                continue;
            }
            let can_call = func.0 + 1 < num_functions;
            if can_call && self.rng.gen_bool(call_density) {
                // SPEC-sized code bases call near neighbours; app-sized code
                // bases call across the whole library surface.
                let lo = func.0 + 1;
                let hi = if num_functions <= 100 {
                    (func.0 + SPEC_CALL_WINDOW).min(num_functions - 1)
                } else {
                    num_functions - 1
                };
                // Real app execution is frequency-skewed: a minority of hot
                // library routines takes most calls. Square a uniform draw
                // to bias toward the low end of the callee range while
                // keeping the whole surface reachable (the i-cache still
                // sees the tail).
                let span = f64::from(hi - lo);
                let roll: f64 = self.rng.gen::<f64>();
                let skewed = if num_functions > 100 {
                    roll * roll
                } else {
                    roll
                };
                let callee = FuncId(lo + (skewed * span) as u32);
                *end = BlockEnd::Call { callee };
            } else if i + 2 < nb && self.rng.gen_bool(self.params.cond_branch_prob) {
                let skip_to = self.rng.gen_range(i + 2..=(i + 3).min(nb - 1));
                let bias = self.params.branch_bias.clamp(0.5, 0.99);
                let jitter = self.rng.gen_range(-0.04..0.04);
                let base = if self.rng.gen_bool(0.5) {
                    bias
                } else {
                    1.0 - bias
                };
                let prob_taken = (base + jitter).clamp(0.02, 0.98);
                *end = BlockEnd::CondSkip {
                    target: skip_to,
                    prob_taken,
                };
            }
        }

        FunctionSkeleton {
            sizes,
            ends,
            loop_span,
        }
    }

    fn build_function(
        &mut self,
        func: FuncId,
        skeleton: &FunctionSkeleton,
        first_block: u32,
        uid_counter: &mut u32,
        load_hints: &mut std::collections::BTreeSet<u32>,
    ) -> Vec<BasicBlock> {
        let nb = skeleton.sizes.len();
        let total: usize = skeleton.sizes.iter().sum();
        let mut slots: Vec<Option<Insn>> = vec![None; total];
        let mut hinted_slots: Vec<bool> = vec![false; total];
        let mut regs = RegAlloc::new();

        // Slot index of the first slot of each block, and block of each slot.
        let mut block_start = Vec::with_capacity(nb);
        let mut cursor = 0usize;
        for &size in &skeleton.sizes {
            block_start.push(cursor);
            cursor += size;
        }
        // Reserve the last slot of every conditionally-branching block for
        // the compare that produces the branch's flags.
        let mut reserved_cmp: Vec<usize> = Vec::new();
        for (b, end) in skeleton.ends.iter().enumerate() {
            if matches!(end, BlockEnd::CondSkip { .. } | BlockEnd::LoopBack { .. }) {
                let last = block_start[b] + skeleton.sizes[b] - 1;
                slots[last] = Some(Insn::nop()); // placeholder, replaced below
                reserved_cmp.push(last);
            }
        }

        // ---- chain weaving ----
        // Chains read the function's context register as their second
        // operand: it is never written locally, so chains stay
        // independently schedulable (self-contained) at the static level.
        let ctx = regs.alloc_pinned_low().unwrap_or(Reg::R7);
        let mut slot = 0usize;
        // Each chain's head reads the previous chain's tail value (through
        // the tail's trailing low-fanout members), so the function's
        // dataflow forms a continuing web: a critical instruction's forward
        // chain reaches the *next* chain's criticals, as Fig. 1b's Android
        // profile requires.
        let mut link: Option<(Reg, usize)> = None;
        while slot < total {
            if slots[slot].is_none() && self.rng.gen_bool(self.params.chain_density) {
                link = self.plant_chain(
                    &mut slots,
                    &mut hinted_slots,
                    &mut regs,
                    slot,
                    total,
                    ctx,
                    link,
                );
            }
            slot += 1;
        }

        // ---- loop-carried accumulators (SPEC) ----
        if let (Some((head, tail)), true) = (skeleton.loop_span, self.params.loop_carried_chain) {
            let lo = block_start[head];
            let hi = block_start[tail] + skeleton.sizes[tail];
            // Loop bodies are SPEC's hot code: plant one chain inside so
            // the high-fanout (and stride-missing, prefetchable) loads the
            // paper's Fig. 1a baseline targets actually dominate execution.
            // SPEC criticals are *isolated* (Fig. 1b), so the loop chain is
            // a single critical with its consumers.
            if let Some(free) = find_free(&slots, lo, hi) {
                let saved = self.params.isolated_critical_frac;
                self.params.isolated_critical_frac = 1.0;
                let _ = self.plant_chain(
                    &mut slots,
                    &mut hinted_slots,
                    &mut regs,
                    free,
                    total,
                    ctx,
                    None,
                );
                self.params.isolated_critical_frac = saved;
            }
            let acc = regs.alloc_pinned();
            if let Some(acc) = acc {
                // Immediate-form updates keep the accumulator chain
                // self-contained across iterations (its only input is
                // itself), which is what lets SPEC ICs grow to the
                // kilo-instruction lengths of Fig. 5a.
                let updates = self.rng.gen_range(1..=2);
                let mut at = lo;
                for u in 0..updates {
                    if let Some(free) = find_free(&slots, at, hi) {
                        slots[free] = Some(Insn::alu_imm(Opcode::Add, acc, acc, 1 + u));
                        regs.note_def(free, acc);
                        at = free + 1;
                    }
                }
            }
        }

        // ---- compares for conditional branches ----
        for &at in &reserved_cmp {
            let lhs = regs.recent_or_default(at, &mut self.rng);
            let rhs = regs.recent_or_default(at, &mut self.rng);
            slots[at] = Some(Insn::compare(Opcode::Cmp, lhs, rhs));
        }

        // ---- filler ----
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(self.filler(&mut regs, i));
            }
        }

        // ---- assemble blocks with terminators ----
        let abs = |b: usize| BlockId(first_block + b as u32);
        // Approximate word offsets between block boundaries (all-32-bit).
        let word_offset = |from_block: usize, to_block: usize| -> i32 {
            let from_end: usize = skeleton.sizes[..=from_block].iter().map(|s| s + 1).sum();
            let to_start: usize = skeleton.sizes[..to_block].iter().map(|s| s + 1).sum();
            to_start as i32 - from_end as i32
        };

        let mut built = Vec::with_capacity(nb);
        for (b, &start) in block_start.iter().enumerate() {
            let size = skeleton.sizes[b];
            let mut insns: Vec<TaggedInsn> = Vec::with_capacity(size + 1);
            for s in start..start + size {
                let Some(insn) = slots[s].take() else {
                    unreachable!("slot {s} filled by the planner or the filler pass")
                };
                if hinted_slots[s] {
                    load_hints.insert(*uid_counter);
                }
                insns.push(TaggedInsn::new(insn, InsnUid(*uid_counter)));
                *uid_counter += 1;
            }
            let is_last = b + 1 == nb;
            let (terminator, branch_insn) = match skeleton.ends[b] {
                _ if is_last => {
                    if func.0 == 0 {
                        // The entry function is an endless event/outer loop.
                        (
                            Terminator::Jump(abs(0)),
                            Some(Insn::branch(Opcode::B, word_offset(b, 0))),
                        )
                    } else {
                        (Terminator::Return, Some(Insn::branch_reg(Reg::LR)))
                    }
                }
                BlockEnd::Fallthrough => (Terminator::Fallthrough(abs(b + 1)), None),
                BlockEnd::CondSkip { target, prob_taken } => (
                    Terminator::Branch {
                        taken: abs(target),
                        not_taken: abs(b + 1),
                        prob_taken,
                    },
                    Some(Insn::branch(Opcode::B, word_offset(b, target)).with_cond(Cond::Ne)),
                ),
                BlockEnd::LoopBack { head, prob_taken } => (
                    Terminator::Branch {
                        taken: abs(head),
                        not_taken: abs(b + 1),
                        prob_taken,
                    },
                    Some(Insn::branch(Opcode::B, word_offset(b, head)).with_cond(Cond::Lt)),
                ),
                BlockEnd::Call { callee } => (
                    Terminator::Call {
                        callee,
                        return_to: abs(b + 1),
                    },
                    // Inter-function distance: far beyond the 16-bit branch
                    // range, like a real library call.
                    Some(Insn::branch(Opcode::Bl, 4096 + callee.0 as i32 * 64)),
                ),
            };
            if let Some(insn) = branch_insn {
                insns.push(TaggedInsn::new(insn, InsnUid(*uid_counter)));
                *uid_counter += 1;
            }
            built.push(BasicBlock {
                id: abs(b),
                func,
                insns,
                terminator,
            });
        }
        built
    }

    /// Plants one dependence-chain template starting at `start`.
    #[allow(clippy::too_many_arguments)]
    fn plant_chain(
        &mut self,
        slots: &mut [Option<Insn>],
        hinted_slots: &mut [bool],
        regs: &mut RegAlloc,
        start: usize,
        total: usize,
        ctx: Reg,
        link: Option<(Reg, usize)>,
    ) -> Option<(Reg, usize)> {
        let isolated = self.rng.gen_bool(self.params.isolated_critical_frac);
        let criticals = if isolated {
            1
        } else {
            self.sample_span(self.params.chain_criticals).max(1) as usize
        };

        // Build the member pattern: C (g lows) C (g lows) C … (1-2 trailing
        // lows carry the value toward the next chain's head).
        let mut members: Vec<bool> = Vec::new(); // true = critical
        members.push(true);
        for _ in 1..criticals {
            let gap = self.sample_gap();
            members.resize(members.len() + gap, false);
            members.push(true);
        }
        if !isolated {
            let tail = self.sample_gap().clamp(1, 2);
            members.resize(members.len() + tail, false);
        }

        let window = self.params.consumer_window as usize;
        let mut pos = start;
        // The head continues the previous chain's value if it is still live.
        let mut prev_dest: Option<Reg> = link.filter(|&(_, until)| until > start).map(|(r, _)| r);
        let mut critical_dests: Vec<(Reg, usize)> = Vec::new();
        let mut last_at = start;
        let mut last_dest: Option<Reg> = None;
        let mut last_was_low = false;
        for &critical in &members {
            let Some(at) = find_free(slots, pos, total) else {
                break;
            };
            // Criticals stay live across their whole consumer window; gap
            // members only need to survive until the next member reads them.
            // Short gap reservations keep the low-register pool available,
            // which is what keeps chains Thumb-convertible (Fig. 5b).
            // Reservations start at the *chain head*, not the member: no
            // filler inside the chain's span may reuse a member register,
            // which is exactly what keeps the compiler's hoist legal.
            let until = if critical {
                (at + window).min(total)
            } else {
                (at + 10).min(total)
            };
            let Some(dest) = regs.alloc_protected(start, until, &mut self.rng) else {
                break;
            };
            let insn = self.chain_member_insn(critical, dest, prev_dest, ctx);
            if critical && insn.op().is_load() {
                hinted_slots[at] = true;
            }
            slots[at] = Some(insn);
            regs.note_def(at, dest);
            if critical {
                // Most of a critical's fanout is organic: later code
                // preferentially reads this register (see
                // `RegAlloc::popular`); a few explicit consumers guarantee
                // a floor.
                regs.add_popular(dest, at, until);
                critical_dests.push((dest, until));
            }
            prev_dest = Some(dest);
            last_dest = Some(dest);
            last_was_low = !critical;
            last_at = at;
            pos = at + 1 + self.sample_span(self.params.chain_spacing) as usize;
        }
        // Keep the tail value alive long enough for the next chain to read.
        // Only link through a trailing *low* member: a truncated chain
        // ending on a critical must not hand its value directly to the next
        // head (that would be a critical→critical edge, which Android apps
        // essentially never show in Fig. 1b).
        if !last_was_low {
            last_dest = None;
        }
        let link_until = (last_at + 80).min(total);
        if let Some(tail) = last_dest {
            let i = tail.index() as usize;
            if i < POOL_SIZE {
                regs.protected_until[i] = regs.protected_until[i].max(link_until);
                regs.busy_until[i] = regs.busy_until[i].max(link_until);
            }
        }
        // Explicit consumer floor, placed after the whole chain so the
        // members stay spatially compact (Fig. 5a spread).
        // The explicit floor scales with the suite's planted fanout target,
        // so mobile criticals reliably out-rank SPEC's (Fig. 1a right axis).
        let explicit = (self.params.high_fanout.min / 2).clamp(3, 12) as usize;
        for (dest, until) in critical_dests {
            let mut cpos = last_at + 1;
            for _ in 0..explicit {
                let Some(cslot) = find_free(slots, cpos, until) else {
                    break;
                };
                // Consumers fall back to the scratch register under pool
                // pressure: their *reads* are the point, their value is not.
                let cdst = regs
                    .alloc(cslot, (cslot + 4).min(total), &mut self.rng, 0.0)
                    .unwrap_or(SCRATCH);
                let other = regs.recent_low_or_default(cslot, &mut self.rng);
                let op = [Opcode::Add, Opcode::Eor, Opcode::Orr, Opcode::Sub]
                    .choose(&mut self.rng)
                    .copied()
                    .unwrap_or(Opcode::Add);
                slots[cslot] = Some(Insn::alu(op, cdst, &[dest, other]));
                if cdst != SCRATCH {
                    regs.note_def(cslot, cdst);
                }
                cpos = cslot + 1;
            }
        }
        last_dest.map(|r| (r, link_until))
    }

    fn sample_gap(&mut self) -> usize {
        let weights = &self.params.chain_gap_weights;
        let roll: f64 = self.rng.gen_range(0.0..weights.iter().sum::<f64>());
        let mut acc = 0.0;
        for (gap, &w) in weights.iter().enumerate() {
            acc += w;
            if roll < acc {
                return gap;
            }
        }
        weights.len() - 1
    }

    fn chain_member_insn(
        &mut self,
        critical: bool,
        dest: Reg,
        prev_dest: Option<Reg>,
        ctx: Reg,
    ) -> Insn {
        // Chains are kept Thumb-clean except for a small pollution rate that
        // yields the paper's ~4.5% unconvertible CritIC sequences (Fig. 5b).
        let polluted = self.rng.gen_bool(0.009);
        let src_a = prev_dest.unwrap_or(ctx);
        let src_b = ctx;
        let mut insn = if critical && self.rng.gen_bool(self.params.critical_load_frac) {
            let offset = 4 * self.rng.gen_range(0..=15);
            Insn::load(Opcode::Ldr, dest, src_a, offset)
        } else {
            let op = [
                Opcode::Add,
                Opcode::Sub,
                Opcode::Eor,
                Opcode::And,
                Opcode::Orr,
            ]
            .choose(&mut self.rng)
            .copied()
            .unwrap_or(Opcode::Add);
            Insn::alu(op, dest, &[src_a, src_b])
        };
        if polluted {
            insn = insn.with_cond(Cond::Eq);
        }
        insn
    }

    fn filler(&mut self, regs: &mut RegAlloc, at: usize) -> Insn {
        let p = self.params.clone();
        let p = &p;
        let roll: f64 = self.rng.gen();
        let high_dst = self.rng.gen_bool(p.high_reg_frac);
        let predicated = self.rng.gen_bool(p.predicated_frac);
        // Fillers lean on the high registers so the Thumb-friendly low pool
        // stays available for chain values.
        let high_dst = high_dst || self.rng.gen_bool(0.15);
        let Some(dst) = regs.alloc_biased(at, at + 6, &mut self.rng, high_dst) else {
            // Transient register-pressure spike: emit a compare, which
            // produces no register value.
            let lhs = self.filler_src_at(regs, at);
            let rhs = self.filler_src_at(regs, at);
            return Insn::compare(Opcode::Cmp, lhs, rhs);
        };
        let src = self.filler_src_at(regs, at);

        let mut insn = if roll < p.load_frac {
            let op = [
                Opcode::Ldr,
                Opcode::Ldr,
                Opcode::Ldr,
                Opcode::Ldrb,
                Opcode::Ldrh,
            ]
            .choose(&mut self.rng)
            .copied()
            .unwrap_or(Opcode::Ldr);
            let offset = self.mem_offset();
            Insn::load(op, dst, src, offset)
        } else if roll < p.load_frac + p.store_frac {
            let op = [Opcode::Str, Opcode::Str, Opcode::Strb, Opcode::Strh]
                .choose(&mut self.rng)
                .copied()
                .unwrap_or(Opcode::Str);
            let base = self.filler_src_at(regs, at);
            let offset = self.mem_offset();
            Insn::store(op, src, base, offset)
        } else if roll < p.load_frac + p.store_frac + p.mul_frac {
            let other = self.filler_src_at(regs, at);
            Insn::alu(Opcode::Mul, dst, &[src, other])
        } else if roll < p.load_frac + p.store_frac + p.mul_frac + p.div_frac {
            let other = self.filler_src_at(regs, at);
            Insn::alu(Opcode::Sdiv, dst, &[src, other])
        } else if roll < p.load_frac + p.store_frac + p.mul_frac + p.div_frac + p.float_frac {
            let op = [
                Opcode::Vadd,
                Opcode::Vmul,
                Opcode::Vsub,
                Opcode::Vadd,
                Opcode::Vdiv,
            ]
            .choose(&mut self.rng)
            .copied()
            .unwrap_or(Opcode::Vadd);
            let other = self.filler_src_at(regs, at);
            Insn::alu(op, dst, &[src, other])
        } else if self.rng.gen_bool(0.25) {
            // Immediate ALU, mostly two-address (Thumb-friendly, like real
            // compiler output: increments, masks, small adjustments).
            let wide = self.rng.gen_bool(p.wide_imm_frac);
            let imm = if wide {
                self.rng.gen_range(128..=255)
            } else {
                self.rng.gen_range(0..=63)
            };
            if self.rng.gen_bool(0.3) {
                Insn::mov_imm(dst, imm)
            } else {
                let op = [Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Lsl]
                    .choose(&mut self.rng)
                    .copied()
                    .unwrap_or(Opcode::Add);
                if self.rng.gen_bool(0.3) {
                    // Three-address immediate form: ARM expresses it in one
                    // instruction; Thumb needs a mov + two-address pair
                    // (the Compress baseline's expansion case).
                    Insn::alu_imm(op, dst, src, imm)
                } else {
                    Insn::alu_imm(op, dst, dst, imm)
                }
            }
        } else {
            let op = [
                Opcode::Add,
                Opcode::Sub,
                Opcode::Orr,
                Opcode::Eor,
                Opcode::Mov,
                Opcode::Lsr,
            ]
            .choose(&mut self.rng)
            .copied()
            .unwrap_or(Opcode::Add);
            if matches!(op, Opcode::Mov) {
                Insn::alu(op, dst, &[src])
            } else {
                let other = self.filler_src_at(regs, at);
                Insn::alu(op, dst, &[src, other])
            }
        };
        regs.note_def(at, dst);
        if predicated && !insn.op().is_branch() {
            let cond = [Cond::Eq, Cond::Ne, Cond::Ge, Cond::Lt]
                .choose(&mut self.rng)
                .copied()
                .unwrap_or(Cond::Eq);
            insn = insn.with_cond(cond);
        }
        insn
    }

    /// A source register for filler code. Live *popular* values (critical
    /// chain destinations) are read preferentially — realizing the planted
    /// fanout organically — then recently-defined registers (short-distance
    /// dependences), then arbitrary low registers whose writers are long
    /// retired, giving filler code the instruction-level parallelism real
    /// compiled code has.
    fn filler_src_at(&mut self, regs: &mut RegAlloc, at: usize) -> Reg {
        if self.rng.gen_bool(0.85) {
            if let Some(reg) = regs.popular_src(at, &mut self.rng) {
                return reg;
            }
        }
        if self.rng.gen_bool(0.5) {
            regs.recent_or_default(at, &mut self.rng)
        } else {
            Reg::from_index(self.rng.gen_range(0..8)).unwrap_or(SCRATCH)
        }
    }

    fn mem_offset(&mut self) -> i32 {
        if self.rng.gen_bool(self.params.wide_imm_frac) {
            4 * self.rng.gen_range(16..=63) // 64..252: beyond the Thumb field
        } else {
            4 * self.rng.gen_range(0..=15) // 0..60: Thumb-encodable
        }
    }
}

fn find_free(slots: &[Option<Insn>], from: usize, to: usize) -> Option<usize> {
    slots[from.min(to)..to]
        .iter()
        .position(Option::is_none)
        .map(|i| from + i)
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum BlockEnd {
    Fallthrough,
    CondSkip { target: usize, prob_taken: f64 },
    LoopBack { head: usize, prob_taken: f64 },
    Call { callee: FuncId },
}

#[derive(Debug)]
struct FunctionSkeleton {
    sizes: Vec<usize>,
    ends: Vec<BlockEnd>,
    loop_span: Option<(usize, usize)>,
}

/// A tiny linear-scan register allocator over instruction slots.
///
/// Keeps each produced value's register reserved until its consumers have
/// been placed, so planted fanout is realized in the dynamic def-use graph
/// rather than destroyed by accidental overwrites.
#[derive(Debug)]
struct RegAlloc {
    busy_until: [usize; POOL_SIZE],
    /// Hard reservations for chain-member values: never stolen, so planted
    /// fanout survives the fill phase.
    protected_until: [usize; POOL_SIZE],
    pinned: [bool; POOL_SIZE],
    recent: Vec<(Reg, usize)>,
    /// "Popular" values — critical chain members' destinations, with their
    /// definition slot and lifetime. Subsequent code preferentially reads
    /// them (the way real code keeps re-reading a freshly computed object
    /// pointer), which is what gives critical instructions their high ROB
    /// fanout. Readers are only offered values already defined at their
    /// slot, so hoisting chains stays legal.
    popular: Vec<(Reg, usize, usize)>,
}

impl RegAlloc {
    fn new() -> RegAlloc {
        RegAlloc {
            busy_until: [0; POOL_SIZE],
            protected_until: [0; POOL_SIZE],
            pinned: [false; POOL_SIZE],
            recent: Vec::new(),
            popular: Vec::new(),
        }
    }

    /// Allocates a register free at `at`, reserving it until `until`.
    /// `high_prob` is the chance of deliberately choosing a high register.
    fn alloc(&mut self, at: usize, until: usize, rng: &mut StdRng, high_prob: f64) -> Option<Reg> {
        let prefer_high = high_prob > 0.0 && rng.gen_bool(high_prob);
        self.alloc_biased(at, until, rng, prefer_high)
    }

    fn available(&self, i: usize, at: usize) -> bool {
        !self.pinned[i] && self.busy_until[i] <= at && self.protected_until[i] <= at
    }

    fn alloc_biased(
        &mut self,
        at: usize,
        until: usize,
        rng: &mut StdRng,
        prefer_high: bool,
    ) -> Option<Reg> {
        let (first, second): (std::ops::Range<usize>, std::ops::Range<usize>) = if prefer_high {
            (8..POOL_SIZE, 0..8)
        } else {
            (0..8, 8..POOL_SIZE)
        };
        let pick =
            |range: std::ops::Range<usize>, this: &Self, rng: &mut StdRng| -> Option<usize> {
                let free: Vec<usize> = range.filter(|&i| this.available(i, at)).collect();
                free.choose(rng).copied()
            };
        let index = pick(first, self, rng)
            .or_else(|| pick(second, self, rng))
            .or_else(|| {
                // Steal the soonest-released *unprotected* register.
                (0..POOL_SIZE)
                    .filter(|&i| !self.pinned[i] && self.protected_until[i] <= at)
                    .min_by_key(|&i| self.busy_until[i])
            })?;
        self.busy_until[index] = until;
        Reg::from_index(index as u8)
    }

    /// Allocates a chain-member destination with a steal-proof reservation.
    ///
    /// Low registers only: chain destinations feed the next member's 3-bit
    /// Thumb source field, so a high-register member would make the whole
    /// chain unconvertible (the all-or-nothing rule). Under pressure the
    /// chain is abandoned rather than polluted.
    fn alloc_protected(&mut self, at: usize, until: usize, rng: &mut StdRng) -> Option<Reg> {
        let low: Vec<usize> = (0..8).filter(|&i| self.available(i, at)).collect();
        let index = low.choose(rng).copied()?;
        self.busy_until[index] = until;
        self.protected_until[index] = until;
        Reg::from_index(index as u8)
    }

    /// Permanently reserves a *low* register (function context values such
    /// as `this`/environment pointers that chains read without creating
    /// local dependences — and that the 3-bit Thumb source fields can name).
    fn alloc_pinned_low(&mut self) -> Option<Reg> {
        for i in (0..8).rev() {
            if !self.pinned[i] && self.busy_until[i] == 0 {
                self.pinned[i] = true;
                return Reg::from_index(i as u8);
            }
        }
        None
    }

    /// Permanently reserves a register (loop accumulators).
    fn alloc_pinned(&mut self) -> Option<Reg> {
        // Prefer a high register so the accumulator doesn't starve the
        // Thumb-friendly low pool.
        for i in (0..POOL_SIZE).rev() {
            if !self.pinned[i] && self.busy_until[i] == 0 {
                self.pinned[i] = true;
                return Reg::from_index(i as u8);
            }
        }
        None
    }

    /// Marks a register as a popular read target until `until`. At most
    /// two values are popular at a time (reads concentrate on the newest
    /// critical results, keeping each one's fanout high); an evicted value
    /// also releases its long protection so the pool never starves.
    fn add_popular(&mut self, reg: Reg, at: usize, until: usize) {
        if self.popular.len() >= 2 {
            let (old, _, _) = self.popular.remove(0);
            let i = old.index() as usize;
            if i < POOL_SIZE {
                self.protected_until[i] = self.protected_until[i].min(at + 4);
                self.busy_until[i] = self.busy_until[i].min(at + 4);
            }
        }
        self.popular.push((reg, at, until));
    }

    /// A live popular register already defined at `at`, if any.
    fn popular_src(&mut self, at: usize, rng: &mut StdRng) -> Option<Reg> {
        self.popular.retain(|&(_, _, until)| until > at);
        let live: Vec<Reg> = self
            .popular
            .iter()
            .filter(|&&(_, def, _)| def < at)
            .map(|&(reg, _, _)| reg)
            .collect();
        live.choose(rng).copied()
    }

    fn note_def(&mut self, at: usize, reg: Reg) {
        self.recent.push((reg, at));
        if self.recent.len() > 12 {
            self.recent.remove(0);
        }
    }

    /// A register already defined at `at` — recently-defined if available,
    /// otherwise a low register free of pending chain reservations. Reading
    /// only already-defined values is what keeps the compiler's chain
    /// hoisting legal.
    fn recent_or_default(&self, at: usize, rng: &mut StdRng) -> Reg {
        let defined: Vec<Reg> = self
            .recent
            .iter()
            .filter(|&&(_, def)| def < at)
            .map(|&(r, _)| r)
            .collect();
        defined
            .choose(rng)
            .copied()
            .unwrap_or_else(|| self.free_low_reg(at, rng))
    }

    /// A recently-defined *low* register (Thumb source fields are 3-bit).
    fn recent_low_or_default(&self, at: usize, rng: &mut StdRng) -> Reg {
        let lows: Vec<Reg> = self
            .recent
            .iter()
            .filter(|&&(r, def)| r.index() < 8 && def < at)
            .map(|&(r, _)| r)
            .collect();
        lows.choose(rng)
            .copied()
            .unwrap_or_else(|| self.free_low_reg(at, rng))
    }

    /// A low register with no chain reservation pending at `at`.
    fn free_low_reg(&self, at: usize, rng: &mut StdRng) -> Reg {
        let free: Vec<u8> = (0..8u8)
            .filter(|&i| self.protected_until[i as usize] <= at)
            .collect();
        let index = free.choose(rng).copied().unwrap_or(0);
        Reg::from_index(index).unwrap_or(SCRATCH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GenParams;

    fn small_params(seed: u64) -> GenParams {
        let mut p = GenParams::mobile(seed);
        p.num_functions = 12;
        p
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ProgramGenerator::new(small_params(42)).generate();
        let b = ProgramGenerator::new(small_params(42)).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProgramGenerator::new(small_params(1)).generate();
        let b = ProgramGenerator::new(small_params(2)).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn structure_is_well_formed() {
        let program = ProgramGenerator::new(small_params(7)).generate();
        assert_eq!(program.functions.len(), 12);
        // Block ids are a permutation of arena indices.
        for (i, block) in program.blocks.iter().enumerate() {
            assert_eq!(block.id.index(), i);
            assert!(!block.insns.is_empty());
            // Every terminator target exists.
            match block.terminator {
                Terminator::Fallthrough(t) | Terminator::Jump(t) => {
                    assert!(t.index() < program.blocks.len());
                }
                Terminator::Branch {
                    taken,
                    not_taken,
                    prob_taken,
                } => {
                    assert!(taken.index() < program.blocks.len());
                    assert!(not_taken.index() < program.blocks.len());
                    assert!((0.0..=1.0).contains(&prob_taken));
                }
                Terminator::Call { callee, return_to } => {
                    assert!(callee.index() < program.functions.len());
                    assert!(return_to.index() < program.blocks.len());
                }
                Terminator::Return | Terminator::Exit => {}
            }
        }
        // Uids are unique.
        let mut uids = std::collections::HashSet::new();
        for block in &program.blocks {
            for t in &block.insns {
                assert!(uids.insert(t.uid), "duplicate uid {}", t.uid);
            }
        }
    }

    #[test]
    fn calls_form_a_dag() {
        let program = ProgramGenerator::new(small_params(9)).generate();
        for block in &program.blocks {
            if let Terminator::Call { callee, .. } = block.terminator {
                assert!(
                    callee.0 > block.func.0,
                    "call from {} to {}",
                    block.func,
                    callee
                );
            }
        }
    }

    #[test]
    fn entry_function_loops_forever() {
        let program = ProgramGenerator::new(small_params(3)).generate();
        let main = &program.functions[0];
        let last = program.block(*main.blocks.last().unwrap());
        assert_eq!(last.terminator, Terminator::Jump(main.entry()));
    }

    #[test]
    fn conditional_blocks_contain_a_compare() {
        let program = ProgramGenerator::new(small_params(11)).generate();
        for block in &program.blocks {
            if let Terminator::Branch { .. } = block.terminator {
                let has_cmp = block.insns.iter().any(|t| t.insn.op() == Opcode::Cmp);
                assert!(has_cmp, "{} branches without a compare", block.id);
            }
        }
    }

    #[test]
    fn chains_realize_high_fanout_registers() {
        // At least some registers should be read many times before being
        // redefined — the planted fanout.
        let program = ProgramGenerator::new(small_params(5)).generate();
        let mut max_reads_between_defs = 0usize;
        for function in &program.functions {
            let mut reads_since_def = [0usize; 16];
            for &bid in &function.blocks {
                for t in &program.block(bid).insns {
                    for src in t.insn.srcs().iter() {
                        reads_since_def[src.index() as usize] += 1;
                        max_reads_between_defs =
                            max_reads_between_defs.max(reads_since_def[src.index() as usize]);
                    }
                    if let Some(dst) = t.insn.dst() {
                        reads_since_def[dst.index() as usize] = 0;
                    }
                }
            }
        }
        assert!(
            max_reads_between_defs >= 8,
            "expected a planted fanout >= 8, saw {max_reads_between_defs}"
        );
    }

    #[test]
    fn spec_programs_pin_a_loop_accumulator() {
        let mut p = GenParams::spec_int(21);
        p.num_functions = 10;
        let program = ProgramGenerator::new(p).generate();
        // Some function should contain an `add rX, rX, #imm` self-update
        // (the immediate form keeps the chain self-contained).
        let has_acc = program.blocks.iter().flat_map(|b| &b.insns).any(|t| {
            t.insn.op() == Opcode::Add
                && t.insn.dst().is_some()
                && t.insn.srcs().get(0) == t.insn.dst()
                && t.insn.imm().is_some()
        });
        assert!(has_acc, "expected loop-carried accumulator updates");
    }
}
