//! Deterministic *systemic* fault injection for the campaign runner.
//!
//! [`crate::fault`] corrupts the data flowing through the pipeline —
//! programs, traces, compiled variants. This module corrupts the *system
//! around* the pipeline: journal writes, artifact-store requests, attempt
//! scheduling, and campaign lifetime. Each [`SysFault`] is one
//! environmental failure, armed at a deterministic operation index within
//! its operation class ([`SysOp`]) so an entire chaos schedule replays
//! bit-identically from its JSON form alone.
//!
//! | fault          | op class       | effect at the tap point               |
//! |----------------|----------------|---------------------------------------|
//! | `JournalWrite` | `JournalAppend`| the journal line is lost (write error)|
//! | `JournalFsync` | `JournalAppend`| the fsync is skipped (durability loss)|
//! | `JournalTorn`  | `JournalAppend`| only a line prefix reaches the file   |
//! | `StoreRead`    | `StoreRequest` | the store request fails (read error)  |
//! | `StoreWrite`   | `StoreRequest` | the store request fails (write error) |
//! | `AllocBudget`  | `AttemptStart` | the attempt runs under a byte budget  |
//! | `WorkerStall`  | `AttemptStart` | the attempt sleeps before starting    |
//! | `Kill`         | `CellDone`     | graceful shutdown is requested        |
//! | `DiskRead`     | `DiskRequest`  | a disk-store load fails (read error)  |
//! | `DiskWrite`    | `DiskRequest`  | a disk-store save fails (write error) |
//! | `DiskCorrupt`  | `DiskRequest`  | the loaded entry arrives corrupted    |
//! | `Crash`        | (embedded op)  | the process aborts at the tap point   |
//!
//! The injector is *consume-once*: each armed spec fires at most one time,
//! so a retried attempt observes a healed environment — exactly the
//! transient-failure shape supervision policies exist to absorb.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// One kind of environmental failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SysFault {
    /// A journal append fails: the cell's line never reaches the file.
    JournalWrite,
    /// A journal fsync fails: the line is written but not made durable.
    JournalFsync,
    /// A journal append is torn mid-line (the classic kill-during-write).
    JournalTorn,
    /// An artifact-store request fails on the read side.
    StoreRead,
    /// An artifact-store request fails on the publish side.
    StoreWrite,
    /// The attempt runs under an allocation budget of `bytes`; charging
    /// past it aborts the attempt (an OOM in miniature).
    AllocBudget {
        /// Budget in bytes.
        bytes: u64,
    },
    /// The worker stalls for `millis` before the attempt body starts —
    /// under a deadline this manifests as a clock overrun.
    WorkerStall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// A graceful-shutdown request lands mid-campaign: queued cells are
    /// shed, in-flight attempts drain, the journal trailer still flushes.
    Kill,
    /// A persistent-store load fails on the read side: the entry is
    /// treated as a miss and rebuilt.
    DiskRead,
    /// A persistent-store save fails on the write side: the entry is not
    /// persisted (the in-memory tier still serves it).
    DiskWrite,
    /// The next persistent-store entry loaded arrives bit-flipped: the
    /// checksum must catch it and quarantine the entry.
    DiskCorrupt,
    /// The process aborts (`SIGABRT`) at the tap point of the embedded
    /// operation class — the kill-anywhere drill's crash primitive. Unlike
    /// [`SysFault::Kill`] nothing drains and nothing flushes: whatever is
    /// durable at that instant is all a restart gets.
    Crash {
        /// The operation class at whose tap the process aborts.
        op: SysOp,
    },
}

impl SysFault {
    /// The operation class whose counter triggers this fault.
    pub fn op(self) -> SysOp {
        match self {
            SysFault::JournalWrite | SysFault::JournalFsync | SysFault::JournalTorn => {
                SysOp::JournalAppend
            }
            SysFault::StoreRead | SysFault::StoreWrite => SysOp::StoreRequest,
            SysFault::AllocBudget { .. } | SysFault::WorkerStall { .. } => SysOp::AttemptStart,
            SysFault::Kill => SysOp::CellDone,
            SysFault::DiskRead | SysFault::DiskWrite | SysFault::DiskCorrupt => SysOp::DiskRequest,
            SysFault::Crash { op } => op,
        }
    }

    /// The kebab-case name used in schedules, journals, and reports.
    pub fn name(self) -> &'static str {
        match self {
            SysFault::JournalWrite => "journal-write",
            SysFault::JournalFsync => "journal-fsync",
            SysFault::JournalTorn => "journal-torn",
            SysFault::StoreRead => "store-read",
            SysFault::StoreWrite => "store-write",
            SysFault::AllocBudget { .. } => "alloc-budget",
            SysFault::WorkerStall { .. } => "worker-stall",
            SysFault::Kill => "kill",
            SysFault::DiskRead => "disk-read",
            SysFault::DiskWrite => "disk-write",
            SysFault::DiskCorrupt => "disk-corrupt",
            SysFault::Crash { .. } => "crash",
        }
    }
}

impl fmt::Display for SysFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysFault::AllocBudget { bytes } => write!(f, "alloc-budget({bytes}B)"),
            SysFault::WorkerStall { millis } => write!(f, "worker-stall({millis}ms)"),
            SysFault::Crash { op } => write!(f, "crash({})", op.name()),
            other => f.write_str(other.name()),
        }
    }
}

/// The instrumented operation classes of the campaign runner. Each class
/// has its own monotone counter in the [`SysInjector`], so a fault's
/// trigger index is stable under schedule minimization: removing a journal
/// fault never shifts when a store fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SysOp {
    /// One cell line (or the trailer) appended to the campaign journal.
    JournalAppend,
    /// One artifact-store request (world / profile / baseline / oracle).
    StoreRequest,
    /// One cell attempt starting.
    AttemptStart,
    /// One cell finishing (any terminal status).
    CellDone,
    /// One journal fsync, tapped *between* the write and the `sync_all`
    /// — the window where a crash leaves a written-but-not-durable line.
    JournalSync,
    /// One persistent-store disk operation (load or save).
    DiskRequest,
}

impl SysOp {
    /// Every operation class.
    pub const ALL: [SysOp; 6] = [
        SysOp::JournalAppend,
        SysOp::StoreRequest,
        SysOp::AttemptStart,
        SysOp::CellDone,
        SysOp::JournalSync,
        SysOp::DiskRequest,
    ];

    /// The kebab-case name used in schedules and the `--sys crash:<op>@N`
    /// CLI syntax.
    pub fn name(self) -> &'static str {
        match self {
            SysOp::JournalAppend => "journal-append",
            SysOp::StoreRequest => "store-request",
            SysOp::AttemptStart => "attempt-start",
            SysOp::CellDone => "cell-done",
            SysOp::JournalSync => "journal-sync",
            SysOp::DiskRequest => "disk-request",
        }
    }

    /// Parses a [`SysOp::name`] back into the op class.
    pub fn parse(name: &str) -> Option<SysOp> {
        SysOp::ALL.into_iter().find(|op| op.name() == name)
    }

    fn index(self) -> usize {
        match self {
            SysOp::JournalAppend => 0,
            SysOp::StoreRequest => 1,
            SysOp::AttemptStart => 2,
            SysOp::CellDone => 3,
            SysOp::JournalSync => 4,
            SysOp::DiskRequest => 5,
        }
    }
}

/// One armed systemic fault: fire `fault` on the `at`-th operation
/// (0-based) of its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SysFaultSpec {
    /// What fails.
    pub fault: SysFault,
    /// The 0-based index within the fault's [`SysOp`] class at which it
    /// fires.
    pub at: u64,
}

impl fmt::Display for SysFaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.fault, self.at)
    }
}

/// The consume-once systemic fault injector threaded through a campaign.
///
/// Tap points call [`SysInjector::advance`] with their operation class;
/// the injector increments that class's counter and returns whichever
/// armed faults fire at the pre-increment index. Counters are atomics so
/// concurrent workers stay safe; with a single worker the op sequence —
/// and therefore the entire fault schedule — is fully deterministic.
#[derive(Debug, Default)]
pub struct SysInjector {
    specs: Vec<SysFaultSpec>,
    fired: Vec<AtomicBool>,
    counters: [AtomicU64; 6],
}

impl SysInjector {
    /// An injector armed with `specs`.
    pub fn new(specs: Vec<SysFaultSpec>) -> SysInjector {
        let fired = specs.iter().map(|_| AtomicBool::new(false)).collect();
        SysInjector {
            specs,
            fired,
            counters: Default::default(),
        }
    }

    /// The armed specs, in arming order.
    pub fn specs(&self) -> &[SysFaultSpec] {
        &self.specs
    }

    /// Records one operation of class `op` and returns the faults firing
    /// at it. Each spec fires at most once over the injector's lifetime.
    pub fn advance(&self, op: SysOp) -> Vec<SysFault> {
        let index = self.counters[op.index()].fetch_add(1, Ordering::Relaxed);
        self.specs
            .iter()
            .enumerate()
            .filter(|(i, spec)| {
                spec.fault.op() == op
                    && spec.at == index
                    && !self.fired[*i].swap(true, Ordering::Relaxed)
            })
            .map(|(_, spec)| spec.fault)
            .collect()
    }

    /// [`SysInjector::advance`], with the kill-anywhere drill's crash
    /// semantics on top: if a [`SysFault::Crash`] fires at this operation
    /// the process aborts on the spot (`SIGABRT`, no unwinding, no
    /// flushing) — the supervisor observes the signal and restarts.
    /// Returns the non-crash faults for the tap site to apply.
    pub fn advance_or_crash(&self, op: SysOp) -> Vec<SysFault> {
        let fired = self.advance(op);
        if fired.iter().any(|f| matches!(f, SysFault::Crash { .. })) {
            std::process::abort();
        }
        fired
    }

    /// How many armed specs have fired so far.
    pub fn fired_count(&self) -> usize {
        self.fired
            .iter()
            .filter(|f| f.load(Ordering::Relaxed))
            .count()
    }

    /// How many operations of class `op` have been observed.
    pub fn observed(&self, op: SysOp) -> u64 {
        self.counters[op.index()].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_at_their_index_and_only_once() {
        let injector = SysInjector::new(vec![
            SysFaultSpec {
                fault: SysFault::JournalWrite,
                at: 1,
            },
            SysFaultSpec {
                fault: SysFault::StoreRead,
                at: 0,
            },
        ]);
        assert!(injector.advance(SysOp::JournalAppend).is_empty());
        assert_eq!(
            injector.advance(SysOp::JournalAppend),
            vec![SysFault::JournalWrite]
        );
        assert!(injector.advance(SysOp::JournalAppend).is_empty());
        assert_eq!(
            injector.advance(SysOp::StoreRequest),
            vec![SysFault::StoreRead]
        );
        assert_eq!(injector.fired_count(), 2);
        assert_eq!(injector.observed(SysOp::JournalAppend), 3);
    }

    #[test]
    fn classes_count_independently() {
        let injector = SysInjector::new(vec![SysFaultSpec {
            fault: SysFault::Kill,
            at: 2,
        }]);
        // Journal and store traffic never advance the CellDone counter.
        for _ in 0..10 {
            assert!(injector.advance(SysOp::JournalAppend).is_empty());
            assert!(injector.advance(SysOp::StoreRequest).is_empty());
        }
        assert!(injector.advance(SysOp::CellDone).is_empty());
        assert!(injector.advance(SysOp::CellDone).is_empty());
        assert_eq!(injector.advance(SysOp::CellDone), vec![SysFault::Kill]);
    }

    #[test]
    fn two_specs_may_share_an_index() {
        let injector = SysInjector::new(vec![
            SysFaultSpec {
                fault: SysFault::JournalFsync,
                at: 0,
            },
            SysFaultSpec {
                fault: SysFault::JournalTorn,
                at: 0,
            },
        ]);
        let fired = injector.advance(SysOp::JournalAppend);
        assert_eq!(fired, vec![SysFault::JournalFsync, SysFault::JournalTorn]);
    }

    #[test]
    fn specs_round_trip_through_serde() {
        let specs = vec![
            SysFaultSpec {
                fault: SysFault::AllocBudget { bytes: 65_536 },
                at: 3,
            },
            SysFaultSpec {
                fault: SysFault::WorkerStall { millis: 250 },
                at: 0,
            },
            SysFaultSpec {
                fault: SysFault::Kill,
                at: 7,
            },
        ];
        for spec in specs {
            let value = serde::Serialize::to_value(&spec);
            let back: SysFaultSpec = serde::Deserialize::from_value(&value).expect("round trips");
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn names_and_display_are_stable() {
        assert_eq!(SysFault::JournalTorn.name(), "journal-torn");
        assert_eq!(SysFault::AllocBudget { bytes: 4096 }.name(), "alloc-budget");
        assert_eq!(
            SysFaultSpec {
                fault: SysFault::WorkerStall { millis: 9 },
                at: 4
            }
            .to_string(),
            "worker-stall(9ms)@4"
        );
        assert_eq!(SysFault::DiskCorrupt.name(), "disk-corrupt");
        assert_eq!(
            SysFaultSpec {
                fault: SysFault::Crash {
                    op: SysOp::JournalSync
                },
                at: 2
            }
            .to_string(),
            "crash(journal-sync)@2"
        );
    }

    #[test]
    fn disk_and_crash_faults_map_to_their_op_classes() {
        assert_eq!(SysFault::DiskRead.op(), SysOp::DiskRequest);
        assert_eq!(SysFault::DiskWrite.op(), SysOp::DiskRequest);
        assert_eq!(SysFault::DiskCorrupt.op(), SysOp::DiskRequest);
        for op in SysOp::ALL {
            assert_eq!(SysFault::Crash { op }.op(), op);
            assert_eq!(SysOp::parse(op.name()), Some(op));
        }
        assert_eq!(SysOp::parse("no-such-op"), None);
    }

    #[test]
    fn crash_specs_round_trip_through_serde() {
        for op in SysOp::ALL {
            let spec = SysFaultSpec {
                fault: SysFault::Crash { op },
                at: 5,
            };
            let value = serde::Serialize::to_value(&spec);
            let back: SysFaultSpec = serde::Deserialize::from_value(&value).expect("round trips");
            assert_eq!(back, spec);
        }
    }
}
