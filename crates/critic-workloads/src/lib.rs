//! Synthetic workload substrate for the CritICs reproduction.
//!
//! The paper profiles ten Play-Store Android apps plus SPEC CPU2006
//! int/float subsets through QEMU/AOSP emulation. Neither the apps, the
//! emulator traces, nor the hardware are available here, so this crate
//! builds the closest synthetic equivalent (see `DESIGN.md` §2):
//!
//! 1. a **static program generator** ([`generate`]) that emits an ARM-like
//!    binary — functions, basic blocks, instructions with genuine register
//!    def-use structure — from per-suite parameters ([`params`]) that encode
//!    the paper's measured characteristics (Fig. 1b gap histogram, Fig. 3c
//!    latency mix, Fig. 5a chain length/spread, i-cache footprint, call
//!    rate);
//! 2. an **execution-path generator** ([`path`]) that walks the control-flow
//!    graph with seeded randomness, producing a block-level path that is
//!    *independent of instruction layout* — the compiler passes in
//!    `critic-compiler` rewrite block bodies but never the CFG, so the same
//!    path replays over the original and optimized binaries;
//! 3. a **trace expander** ([`trace`]) that turns (program, path) into the
//!    dynamic instruction stream with register dependences resolved, memory
//!    addresses attached, and branch outcomes recorded — the input format of
//!    the `critic-pipeline` timing model and the `critic-profiler` analyses.
//!
//! # Example
//!
//! ```
//! use critic_workloads::suite::Suite;
//! use critic_workloads::{ExecutionPath, Trace};
//!
//! let app = Suite::Mobile.apps()[0].clone(); // Acrobat
//! let program = app.generate_program();
//! let path = ExecutionPath::generate(&program, app.path_seed(), 20_000);
//! let trace = Trace::expand(&program, &path);
//! assert!(trace.len() >= 19_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod fault;
pub mod generate;
pub mod ids;
pub mod params;
pub mod path;
pub mod program;
pub mod stream;
pub mod suite;
pub mod sysfault;
pub mod trace;
pub mod validate;

pub use fault::{inject_program, inject_trace, inject_variant, Fault, FaultTarget, InjectError};
pub use generate::ProgramGenerator;
pub use ids::{BlockId, FuncId, InsnRef, InsnUid};
pub use params::GenParams;
pub use path::ExecutionPath;
pub use program::{BasicBlock, Function, Layout, Program, TaggedInsn, Terminator};
pub use stream::{
    StreamConfig, StreamWindow, TraceStream, DEFAULT_LOOKAHEAD, DEFAULT_STREAM_WINDOW,
};
pub use suite::{AppSpec, Suite};
pub use sysfault::{SysFault, SysFaultSpec, SysInjector, SysOp};
pub use trace::{BranchOutcome, DynInsn, Trace, NO_DEP};
pub use validate::{ProgramError, TraceError, MAX_TRACE_LEN};
