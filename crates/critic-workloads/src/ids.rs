//! Newtype identifiers tying the static program and dynamic trace together.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a function within a [`crate::Program`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Index of a basic block within a [`crate::Program`] (global, not
/// per-function: blocks are stored in one arena).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A stable identity for a static instruction.
///
/// Compiler passes move instructions within a block, change their width, and
/// insert new ones; the uid follows the *original* instruction so the trace
/// expander can attach the same memory-address stream to it in every program
/// variant (keeping data-side behaviour identical across design points, as a
/// real rewritten binary would).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct InsnUid(pub u32);

impl fmt::Display for InsnUid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Position of a static instruction: block plus index within the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InsnRef {
    /// The containing block.
    pub block: BlockId,
    /// The index within the block's instruction list.
    pub index: u32,
}

impl InsnRef {
    /// Convenience constructor.
    pub fn new(block: BlockId, index: u32) -> InsnRef {
        InsnRef { block, index }
    }
}

impl fmt::Display for InsnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.block, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_compactly() {
        assert_eq!(FuncId(3).to_string(), "fn3");
        assert_eq!(BlockId(7).to_string(), "bb7");
        assert_eq!(InsnUid(9).to_string(), "i9");
        assert_eq!(InsnRef::new(BlockId(7), 2).to_string(), "bb7[2]");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(BlockId(1) < BlockId(2));
        assert!(FuncId(0) < FuncId(1));
        assert!(InsnRef::new(BlockId(1), 5) < InsnRef::new(BlockId(2), 0));
    }
}
