//! The static program model: functions, basic blocks, tagged instructions,
//! terminators, and binary layout.

use critic_isa::{Insn, Width};
use serde::{Deserialize, Serialize};

use crate::ids::{BlockId, FuncId, InsnRef, InsnUid};
use crate::params::MemProfile;
use crate::suite::Suite;

/// An instruction plus the stable identity the trace expander keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaggedInsn {
    /// The instruction itself.
    pub insn: Insn,
    /// Stable identity preserved across compiler rewrites. Instructions the
    /// compiler *inserts* (CDP switches, switch branches) get fresh uids.
    pub uid: InsnUid,
}

impl TaggedInsn {
    /// Pairs an instruction with its uid.
    pub fn new(insn: Insn, uid: InsnUid) -> TaggedInsn {
        TaggedInsn { insn, uid }
    }
}

/// How control leaves a basic block.
///
/// The terminator is semantic CFG metadata; when it implies an actual branch
/// instruction (conditional branch, call, return), that instruction is also
/// present as the block's last [`TaggedInsn`] so it occupies fetch bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Fall through to the next block — no branch instruction.
    Fallthrough(BlockId),
    /// Conditional branch: `taken` with probability `prob_taken`, else
    /// `not_taken`.
    Branch {
        /// Target when the branch is taken.
        taken: BlockId,
        /// Fallthrough block.
        not_taken: BlockId,
        /// Ground-truth probability the branch is taken, used by the path
        /// generator (the pipeline's predictor sees only outcomes).
        prob_taken: f64,
    },
    /// Unconditional jump.
    Jump(BlockId),
    /// Call into `callee`'s entry block; execution resumes at `return_to`.
    Call {
        /// The called function.
        callee: FuncId,
        /// Block control returns to after the callee returns.
        return_to: BlockId,
    },
    /// Return to the caller (pops the path generator's call stack).
    Return,
    /// End of program.
    Exit,
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// This block's id in the program arena.
    pub id: BlockId,
    /// The function the block belongs to.
    pub func: FuncId,
    /// Instructions in program order (including the terminator's branch
    /// instruction, if any).
    pub insns: Vec<TaggedInsn>,
    /// How control leaves the block.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Bytes the block occupies, honouring each instruction's width.
    pub fn byte_size(&self) -> u64 {
        self.insns.iter().map(|t| t.insn.fetch_bytes()).sum()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the block has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Looks up an instruction by uid.
    pub fn position_of(&self, uid: InsnUid) -> Option<usize> {
        self.insns.iter().position(|t| t.uid == uid)
    }
}

/// A function: a name and the blocks it owns (ids into the program arena).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// This function's id.
    pub id: FuncId,
    /// Human-readable name (e.g. `f12`).
    pub name: String,
    /// Blocks in layout order; `blocks[0]` is the entry.
    pub blocks: Vec<BlockId>,
}

impl Function {
    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.blocks[0]
    }
}

/// A whole static program (one "app binary").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Workload name (e.g. `Acrobat`).
    pub name: String,
    /// The suite this program models.
    pub suite: Suite,
    /// Functions; `functions[0]` is the program entry.
    pub functions: Vec<Function>,
    /// Arena of all basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<BasicBlock>,
    /// Data-memory behaviour baked in by the generator; the trace expander
    /// uses it to attach identical address streams to every compiled variant
    /// of this binary.
    pub mem: MemProfile,
    /// Uids of critical (chain) loads, whose address class follows
    /// [`MemProfile::critical_load_stride`].
    pub load_hints: std::collections::BTreeSet<u32>,
}

impl Program {
    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (program construction guarantees
    /// validity).
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable access for compiler passes.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// The instruction at `r`.
    pub fn insn(&self, r: InsnRef) -> &TaggedInsn {
        &self.block(r.block).insns[r.index as usize]
    }

    /// The entry block of the entry function.
    pub fn entry(&self) -> BlockId {
        self.functions[0].entry()
    }

    /// Total static instruction count.
    pub fn static_insn_count(&self) -> usize {
        self.blocks.iter().map(BasicBlock::len).sum()
    }

    /// Total code bytes under the current encoding widths.
    pub fn code_bytes(&self) -> u64 {
        self.blocks.iter().map(BasicBlock::byte_size).sum()
    }

    /// Fraction of static instructions currently in 16-bit Thumb format.
    pub fn thumb_fraction(&self) -> f64 {
        let total = self.static_insn_count();
        if total == 0 {
            return 0.0;
        }
        let thumbed = self
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .filter(|t| t.insn.width() == Width::Thumb16)
            .count();
        thumbed as f64 / total as f64
    }

    /// Computes the binary layout (byte address of every block and
    /// instruction) under the current encoding widths.
    ///
    /// Layout is recomputed after every compiler pass: converting a chain to
    /// Thumb moves every later instruction, exactly as relinking a real
    /// binary would.
    pub fn layout(&self) -> Layout {
        let mut block_addr = vec![0u64; self.blocks.len()];
        let mut insn_addr: Vec<Vec<u64>> = Vec::with_capacity(self.blocks.len());
        insn_addr.resize_with(self.blocks.len(), Vec::new);
        let mut cursor = CODE_BASE;
        for function in &self.functions {
            // Functions are aligned to 16 bytes, as a linker would.
            cursor = align_up(cursor, 16);
            for &bid in &function.blocks {
                let block = self.block(bid);
                block_addr[bid.index()] = cursor;
                let addrs = &mut insn_addr[bid.index()];
                addrs.reserve(block.insns.len());
                for tagged in &block.insns {
                    addrs.push(cursor);
                    cursor += tagged.insn.fetch_bytes();
                }
            }
        }
        Layout {
            block_addr,
            insn_addr,
            code_end: cursor,
        }
    }
}

/// Base virtual address of the code segment.
pub const CODE_BASE: u64 = 0x0001_0000;

fn align_up(addr: u64, align: u64) -> u64 {
    (addr + align - 1) & !(align - 1)
}

/// Byte addresses of every block and instruction (see [`Program::layout`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    block_addr: Vec<u64>,
    insn_addr: Vec<Vec<u64>>,
    code_end: u64,
}

impl Layout {
    /// Start address of a block.
    pub fn block_addr(&self, id: BlockId) -> u64 {
        self.block_addr[id.index()]
    }

    /// Address of one instruction.
    pub fn insn_addr(&self, r: InsnRef) -> u64 {
        self.insn_addr[r.block.index()][r.index as usize]
    }

    /// Total code-segment bytes (footprint), excluding the base offset.
    pub fn code_bytes(&self) -> u64 {
        self.code_end - CODE_BASE
    }
}

#[cfg(test)]
mod tests {
    use critic_isa::{Opcode, Reg};

    use super::*;

    fn tiny_program() -> Program {
        let b0 = BasicBlock {
            id: BlockId(0),
            func: FuncId(0),
            insns: vec![
                TaggedInsn::new(
                    Insn::alu(Opcode::Add, Reg::R0, &[Reg::R1, Reg::R2]),
                    InsnUid(0),
                ),
                TaggedInsn::new(Insn::load(Opcode::Ldr, Reg::R3, Reg::R0, 4), InsnUid(1)),
            ],
            terminator: Terminator::Fallthrough(BlockId(1)),
        };
        let b1 = BasicBlock {
            id: BlockId(1),
            func: FuncId(0),
            insns: vec![TaggedInsn::new(
                Insn::alu(Opcode::Sub, Reg::R4, &[Reg::R3, Reg::R0]),
                InsnUid(2),
            )],
            terminator: Terminator::Exit,
        };
        Program {
            name: "tiny".into(),
            suite: Suite::Mobile,
            functions: vec![Function {
                id: FuncId(0),
                name: "main".into(),
                blocks: vec![BlockId(0), BlockId(1)],
            }],
            blocks: vec![b0, b1],
            mem: MemProfile::default(),
            load_hints: Default::default(),
        }
    }

    #[test]
    fn layout_is_contiguous_and_width_aware() {
        let mut program = tiny_program();
        let layout = program.layout();
        assert_eq!(layout.block_addr(BlockId(0)), CODE_BASE);
        assert_eq!(layout.insn_addr(InsnRef::new(BlockId(0), 0)), CODE_BASE);
        assert_eq!(layout.insn_addr(InsnRef::new(BlockId(0), 1)), CODE_BASE + 4);
        assert_eq!(layout.block_addr(BlockId(1)), CODE_BASE + 8);
        assert_eq!(layout.code_bytes(), 12);

        // Thumb the first instruction: everything after it shifts down.
        let thumbed = program.blocks[0].insns[0].insn.to_thumb().unwrap();
        program.blocks[0].insns[0].insn = thumbed;
        let layout = program.layout();
        assert_eq!(layout.insn_addr(InsnRef::new(BlockId(0), 1)), CODE_BASE + 2);
        assert_eq!(layout.code_bytes(), 10);
        assert!(program.thumb_fraction() > 0.3);
    }

    #[test]
    fn program_accessors() {
        let program = tiny_program();
        assert_eq!(program.static_insn_count(), 3);
        assert_eq!(program.code_bytes(), 12);
        assert_eq!(program.entry(), BlockId(0));
        let r = InsnRef::new(BlockId(1), 0);
        assert_eq!(program.insn(r).uid, InsnUid(2));
        assert_eq!(program.block(BlockId(0)).position_of(InsnUid(1)), Some(1));
        assert_eq!(program.block(BlockId(0)).position_of(InsnUid(9)), None);
    }

    #[test]
    fn function_alignment_pads_layout() {
        let mut program = tiny_program();
        // Add a second function whose entry should be 16-byte aligned.
        program.blocks.push(BasicBlock {
            id: BlockId(2),
            func: FuncId(1),
            insns: vec![TaggedInsn::new(Insn::nop(), InsnUid(3))],
            terminator: Terminator::Return,
        });
        program.functions.push(Function {
            id: FuncId(1),
            name: "callee".into(),
            blocks: vec![BlockId(2)],
        });
        let layout = program.layout();
        assert_eq!(layout.block_addr(BlockId(2)) % 16, 0);
        assert!(layout.block_addr(BlockId(2)) >= CODE_BASE + 12);
    }
}

impl Program {
    /// Renders a human-readable disassembly listing of one function.
    ///
    /// ```
    /// # use critic_workloads::suite::Suite;
    /// let mut app = Suite::Mobile.apps()[0].clone();
    /// app.params.num_functions = 4;
    /// let program = app.generate_program();
    /// let listing = program.disassemble_function(critic_workloads::FuncId(0));
    /// assert!(listing.contains("f0:"));
    /// ```
    pub fn disassemble_function(&self, func: FuncId) -> String {
        let layout = self.layout();
        let function = &self.functions[func.index()];
        let mut out = format!("{}:\n", function.name);
        for &bid in &function.blocks {
            let block = self.block(bid);
            out.push_str(&format!("  {}:            ; {:?}\n", bid, block.terminator));
            for (index, tagged) in block.insns.iter().enumerate() {
                let addr = layout.insn_addr(InsnRef::new(bid, index as u32));
                let width = match tagged.insn.width() {
                    Width::Arm32 => "  ",
                    Width::Thumb16 => ".n",
                };
                out.push_str(&format!("    {addr:06x}{width} {}\n", tagged.insn));
            }
        }
        out
    }

    /// Renders the whole binary's disassembly.
    pub fn disassemble(&self) -> String {
        self.functions
            .iter()
            .map(|f| self.disassemble_function(f.id))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod disasm_tests {
    use crate::generate::ProgramGenerator;
    use crate::params::GenParams;

    #[test]
    fn disassembly_lists_every_instruction() {
        let mut p = GenParams::mobile(17);
        p.num_functions = 6;
        let program = ProgramGenerator::new(p).generate();
        let text = program.disassemble();
        let lines = text
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
            .count();
        assert_eq!(lines, program.static_insn_count());
        assert!(text.contains("f0:"));
        assert!(text.contains("bb0:"));
    }

    #[test]
    fn thumb_instructions_are_marked() {
        let mut p = GenParams::mobile(18);
        p.num_functions = 4;
        let mut program = ProgramGenerator::new(p).generate();
        // Thumb one instruction and look for the `.n` suffix.
        'outer: for block in &mut program.blocks {
            for t in &mut block.insns {
                if let Ok(thumbed) = t.insn.to_thumb() {
                    t.insn = thumbed;
                    break 'outer;
                }
            }
        }
        assert!(program.disassemble().contains(".n "));
    }
}
