//! Streaming trace expansion with bounded memory.
//!
//! [`TraceStream`] produces the same dynamic stream as [`Trace::expand`](crate::Trace::expand) —
//! entry-for-entry, fanout-for-fanout — while holding only a bounded
//! look-ahead ring instead of the whole trace. It drives the same
//! [`ExpandCursor`](crate::trace) the materialized expander uses, so the
//! entries are identical by construction; the work is in making the two
//! *derived* per-instruction quantities exact under a bounded horizon:
//!
//! * **Direct fanout** ([`Trace::compute_fanout`](crate::Trace::compute_fanout)) needs every future
//!   consumer of an instruction. Consumers resolve through the last-writer
//!   tables, so all of a producer's consumers appear before its register is
//!   overwritten — usually within a few hundred dynamic instructions (the
//!   paper's chain-spread bound, ≤ ~540), but not provably within any fixed
//!   window. The stream counts consumers in a `lookahead`-deep ring and
//!   runs a lightweight dependence-only *prepass* over the path that
//!   records the rare producers with a consumer beyond the look-ahead,
//!   together with their exact final count. At emission the ring count is
//!   used unless the producer heads the exception queue — making the
//!   streamed fanout exact for every window and look-ahead, not just ones
//!   larger than the observed spread.
//! * **Cone fanout** ([`Trace::compute_cone_fanout`](crate::Trace::compute_cone_fanout)) is windowed by
//!   definition (the ROB horizon, ≤ 128). The batch implementation walks
//!   backwards propagating descendant masks; the stream walks forwards
//!   propagating *ancestor* masks — `anc[j]` has bit `k` set iff `j`
//!   transitively depends on `j-1-k` within the window — and increments
//!   each ancestor's cone as it fills. Both compute pure windowed
//!   reachability (any dependence chain between two instructions ≤ `w`
//!   apart has every hop and every intermediate distance < `w`, so the
//!   per-hop trims never drop a surviving bit), hence they agree exactly,
//!   including at `dist == window` and the `dist == 128` shift boundary.
//!   An entry's cone is final once `window` successors have been filled,
//!   so a look-ahead ≥ the cone window suffices ([`TraceStream::new`]
//!   clamps it).
//!
//! Peak memory is O(`lookahead` + `window` + static program), reported
//! exactly by [`TraceStream::resident_bytes`]; the trace is never resident.

use std::collections::VecDeque;

use crate::path::ExecutionPath;
use crate::program::Program;
use crate::trace::{sets_flags, DynInsn, ExpandCursor, NO_DEP};

/// Default entries per emitted window (the `--stream-window` default).
pub const DEFAULT_STREAM_WINDOW: usize = 4096;

/// Default look-ahead depth: comfortably past the paper's observed
/// dependence spread (≤ ~540 dynamic instructions) so the fanout exception
/// queue stays near-empty, and ≥ the 128-entry ROB cone window.
pub const DEFAULT_LOOKAHEAD: usize = 512;

/// How a [`TraceStream`] windows and finalizes the dynamic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Entries per window handed to consumers (≥ 1; clamped).
    pub window: usize,
    /// Look-ahead ring depth for direct-fanout finalization. Clamped up to
    /// the cone window when a cone is requested.
    pub lookahead: usize,
    /// Compute the transitive cone fanout over this horizon (1..=128), or
    /// skip the cone work entirely.
    pub cone_window: Option<usize>,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            window: DEFAULT_STREAM_WINDOW,
            lookahead: DEFAULT_LOOKAHEAD,
            cone_window: None,
        }
    }
}

impl StreamConfig {
    /// The default configuration with a caller-chosen window size.
    pub fn with_window(window: usize) -> StreamConfig {
        StreamConfig {
            window,
            ..StreamConfig::default()
        }
    }
}

/// One finalized window of the stream, borrowed from the stream's reused
/// buffers (valid until the next `next_window` call).
#[derive(Debug)]
pub struct StreamWindow<'a> {
    /// Absolute index of `entries[0]` in the full dynamic stream.
    pub base: usize,
    /// The window's dynamic instructions, in fetch order.
    pub entries: &'a [DynInsn],
    /// Exact direct fanout of each entry ([`Trace::compute_fanout`](crate::Trace::compute_fanout)).
    pub fanout: &'a [u32],
    /// Exact cone fanout of each entry ([`Trace::compute_cone_fanout`](crate::Trace::compute_cone_fanout));
    /// empty when [`StreamConfig::cone_window`] is `None`.
    pub cone: &'a [u32],
}

/// Streaming producer of `(entry, direct fanout, cone fanout)` triples,
/// bit-identical to the materialized `Trace` path at bounded memory.
pub struct TraceStream<'a> {
    cursor: ExpandCursor<'a>,
    window: usize,
    lookahead: usize,
    cone_window: Option<usize>,
    cone_keep: u128,
    mask: usize,
    cap: usize,
    ring: Vec<DynInsn>,
    fanout_ring: Vec<u32>,
    cone_ring: Vec<u32>,
    anc_ring: Vec<u128>,
    /// Entries produced by the cursor so far (absolute).
    filled: u32,
    /// Next absolute index to emit.
    emit_pos: u32,
    /// Set once the cursor is exhausted (== the final length).
    finished: Option<u32>,
    /// Producers whose fanout the ring cannot see completely (a consumer
    /// lies beyond the look-ahead), with their exact final counts, in
    /// emission order.
    exceptions: VecDeque<(u32, u32)>,
    total_len: usize,
    thumb: u64,
    name: String,
    win_entries: Vec<DynInsn>,
    win_fanout: Vec<u32>,
    win_cone: Vec<u32>,
}

impl<'a> TraceStream<'a> {
    /// Opens a stream over `(program, path)`.
    ///
    /// # Panics
    ///
    /// Panics if [`StreamConfig::cone_window`] is outside 1..=128 (the
    /// same contract as [`Trace::compute_cone_fanout`](crate::Trace::compute_cone_fanout)).
    pub fn new(
        program: &'a Program,
        path: &'a ExecutionPath,
        cfg: StreamConfig,
    ) -> TraceStream<'a> {
        if let Some(w) = cfg.cone_window {
            assert!(
                (1..=128).contains(&w),
                "cone window must be 1..=128 (u128 masks)"
            );
        }
        let window = cfg.window.max(1);
        // Cones are only final once `cone_window` successors are visible.
        let lookahead = cfg.lookahead.max(1).max(cfg.cone_window.unwrap_or(0));
        let total_len = path.dyn_insns(program);
        // The ring spans [emit_pos, filled]: a full window awaiting bulk
        // emission, its `lookahead` of finalizing successors, and the one
        // being filled. A window larger than the trace holds the trace.
        let cap = (window.min(total_len) + lookahead + 2).next_power_of_two();
        let cone_keep = match cfg.cone_window {
            Some(128) => u128::MAX,
            Some(w) => (1u128 << w) - 1,
            None => 0,
        };
        let exceptions = fanout_exceptions(program, path, lookahead);
        TraceStream {
            cursor: ExpandCursor::new(program, path),
            window,
            lookahead,
            cone_window: cfg.cone_window,
            cone_keep,
            mask: cap - 1,
            cap,
            ring: Vec::with_capacity(cap),
            fanout_ring: vec![0; cap],
            cone_ring: vec![0; cap],
            anc_ring: if cfg.cone_window.is_some() {
                vec![0; cap]
            } else {
                Vec::new()
            },
            filled: 0,
            emit_pos: 0,
            finished: None,
            exceptions,
            total_len,
            thumb: 0,
            name: program.name.clone(),
            win_entries: Vec::new(),
            win_fanout: Vec::new(),
            win_cone: Vec::new(),
        }
    }

    /// The workload name (copied from the program, like `Trace::name`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total dynamic instructions the stream will produce — known upfront
    /// from the path, without expanding anything.
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// Entries emitted so far.
    pub fn emitted(&self) -> usize {
        self.emit_pos as usize
    }

    /// 16-bit entries emitted so far.
    pub fn thumb_count(&self) -> u64 {
        self.thumb
    }

    /// Fraction of emitted dynamic instructions in the 16-bit format; after
    /// the stream is drained this equals [`Trace::thumb_fraction`](crate::Trace::thumb_fraction) exactly
    /// (same integer counts, same division).
    pub fn thumb_fraction(&self) -> f64 {
        if self.emit_pos == 0 {
            return 0.0;
        }
        self.thumb as f64 / f64::from(self.emit_pos)
    }

    /// The configured window size (after clamping).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Bytes resident in the stream's rings, buffers, and cursor — the
    /// quantity the memory-ceiling regression gates on. O(lookahead +
    /// window + static program), independent of the trace length (the
    /// exception queue is bounded by the count of producers with consumers
    /// beyond the look-ahead, near zero at the default depth).
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.ring.capacity() * size_of::<DynInsn>()
            + self.fanout_ring.capacity() * size_of::<u32>()
            + self.cone_ring.capacity() * size_of::<u32>()
            + self.anc_ring.capacity() * size_of::<u128>()
            + self.exceptions.capacity() * size_of::<(u32, u32)>()
            + self.cursor.resident_bytes()
            + self.win_entries.capacity() * size_of::<DynInsn>()
            + self.win_fanout.capacity() * size_of::<u32>()
            + self.win_cone.capacity() * size_of::<u32>()
    }

    /// Expands one more entry into the ring, wiring its dependence edges
    /// into the pending fanout and cone accumulators.
    fn fill_one(&mut self) {
        let Some(entry) = self.cursor.next() else {
            self.finished = Some(self.filled);
            return;
        };
        let j = self.filled as usize;
        let slot = j & self.mask;
        if self.ring.len() < self.cap {
            debug_assert_eq!(self.ring.len(), slot);
            self.ring.push(entry);
        } else {
            self.ring[slot] = entry;
        }
        self.fanout_ring[slot] = 0;
        self.cone_ring[slot] = 0;

        let mut anc: u128 = 0;
        for d in entry.deps_iter() {
            let dist = (j as u32 - d) as usize;
            if dist <= self.lookahead {
                // In-ring producer: count the direct-fanout edge unless the
                // producer is a flag-setting compare (control, not value,
                // fan-out — the same exclusion as `compute_fanout`).
                // Producers with any consumer beyond the look-ahead are
                // covered by the exception queue instead.
                let ds = (d as usize) & self.mask;
                if !sets_flags(self.ring[ds].op) {
                    self.fanout_ring[ds] += 1;
                }
            }
            if let Some(w) = self.cone_window {
                if dist <= w {
                    // At dist == 128 the producer's own ancestors shift
                    // fully out of the horizon; only the direct bit remains
                    // (mirrors the batch shift guard).
                    let shifted = if dist < 128 {
                        self.anc_ring[(d as usize) & self.mask] << dist
                    } else {
                        0
                    };
                    anc |= shifted | (1u128 << (dist - 1));
                }
            }
        }
        if self.cone_window.is_some() {
            anc &= self.cone_keep;
            self.anc_ring[slot] = anc;
            // Each in-window ancestor gains this entry in its cone.
            let mut bits = anc;
            while bits != 0 {
                let k = bits.trailing_zeros() as usize;
                let ancestor = j - 1 - k;
                self.cone_ring[ancestor & self.mask] += 1;
                bits &= bits - 1;
            }
        }
        self.filled += 1;
    }

    /// Yields the next finalized `(entry, direct fanout, cone fanout)`.
    pub fn next_emitted(&mut self) -> Option<(DynInsn, u32, u32)> {
        // An entry is final once `lookahead` successors are visible (every
        // in-ring consumer counted, every in-window cone member seen) or
        // the stream has ended (no further consumers exist at all).
        while self.finished.is_none()
            && (self.filled as usize) < self.emit_pos as usize + self.lookahead + 1
        {
            self.fill_one();
        }
        if self.emit_pos == self.filled {
            return None;
        }
        let p = self.emit_pos;
        let slot = (p as usize) & self.mask;
        let entry = self.ring[slot];
        let fanout = match self.exceptions.front() {
            Some(&(idx, count)) if idx == p => {
                self.exceptions.pop_front();
                count
            }
            _ => self.fanout_ring[slot],
        };
        let cone = self.cone_ring[slot];
        self.emit_pos += 1;
        if entry.bytes == 2 {
            self.thumb += 1;
        }
        Some((entry, fanout, cone))
    }

    /// Yields the next window (up to [`StreamConfig::window`] entries), or
    /// `None` once the stream is drained. The returned view borrows the
    /// stream's reused window buffers.
    ///
    /// The whole window is finalized in bulk — fill until `lookahead`
    /// successors are visible past the window's end (so every entry's
    /// fanout and cone are closed), then copy the ring span out with at
    /// most two slice copies and patch the exception queue over it —
    /// rather than emitting entry-at-a-time through [`Self::next_emitted`].
    pub fn next_window(&mut self) -> Option<StreamWindow<'_>> {
        self.win_entries.clear();
        self.win_fanout.clear();
        self.win_cone.clear();
        let base = self.emit_pos as usize;
        // `filled` reaching this makes every window entry final.
        let target = base
            .saturating_add(self.window)
            .saturating_add(self.lookahead);
        while self.finished.is_none() && (self.filled as usize) < target {
            self.fill_one();
        }
        let filled = self.filled as usize;
        let emit_end = match self.finished {
            Some(_) => filled.min(base + self.window),
            // Not at EOF: exactly `base + window`, but derive it from the
            // emission rule (`p` is final iff `filled >= p + lookahead + 1`)
            // so the bound stays correct if the fill loop ever changes.
            None => (filled - self.lookahead).min(base + self.window),
        };
        if emit_end == base {
            return None;
        }
        let mut start = base;
        while start < emit_end {
            let slot = start & self.mask;
            let run = (emit_end - start).min(self.cap - slot);
            self.win_entries
                .extend_from_slice(&self.ring[slot..slot + run]);
            self.win_fanout
                .extend_from_slice(&self.fanout_ring[slot..slot + run]);
            if self.cone_window.is_some() {
                self.win_cone
                    .extend_from_slice(&self.cone_ring[slot..slot + run]);
            }
            start += run;
        }
        while let Some(&(idx, count)) = self.exceptions.front() {
            if (idx as usize) >= emit_end {
                break;
            }
            self.win_fanout[idx as usize - base] = count;
            self.exceptions.pop_front();
        }
        self.thumb += self
            .win_entries
            .iter()
            .filter(|entry| entry.bytes == 2)
            .count() as u64;
        self.emit_pos = emit_end as u32;
        Some(StreamWindow {
            base,
            entries: &self.win_entries,
            fanout: &self.win_fanout,
            cone: &self.win_cone,
        })
    }
}

impl std::fmt::Debug for TraceStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStream")
            .field("name", &self.name)
            .field("window", &self.window)
            .field("lookahead", &self.lookahead)
            .field("cone_window", &self.cone_window)
            .field("emitted", &self.emit_pos)
            .field("filled", &self.filled)
            .field("total_len", &self.total_len)
            .finish_non_exhaustive()
    }
}

/// The dependence-only prepass: re-resolves every dependence edge without
/// materializing entries, memory addresses, or branch outcomes, and records
/// each producer whose register survives long enough to be read more than
/// `lookahead` instructions later — the only producers whose ring count
/// would be short — together with its exact total fanout.
///
/// Consumers resolve through the last-writer tables, so a producer's edge
/// set is closed the moment its register is overwritten (or at EOF); each
/// register therefore needs just one open `(producer, count, overflow)`
/// slot, credited *directly* by source-register index. The edge walk
/// mirrors [`resolve_deps`] exactly — same per-instruction producer dedup,
/// same three-edge cap — but skips its output array and the flags edge:
/// predication's flags producer is appended after the register edges (so it
/// never displaces one), and flag-setting compares are excluded from fanout
/// and own no register slot, exactly as in `compute_fanout`.
fn fanout_exceptions(
    program: &Program,
    path: &ExecutionPath,
    lookahead: usize,
) -> VecDeque<(u32, u32)> {
    // Per register: (producer index, edges counted, consumer beyond the
    // look-ahead seen). `slots[r].0 == last_writer[r]` throughout.
    let mut slots: [(u32, u32, bool); 16] = [(NO_DEP, 0, false); 16];
    let mut out: Vec<(u32, u32)> = Vec::new();
    let mut idx: u32 = 0;
    for &bid in &path.blocks {
        for tagged in &program.block(bid).insns {
            let insn = &tagged.insn;
            let mut taken = [NO_DEP; 3];
            let mut nd = 0usize;
            for src in insn.srcs().iter() {
                let r = src.index() as usize;
                let (p, count, overflow) = &mut slots[r];
                if *p != NO_DEP && !taken[..nd].contains(p) && nd < 3 {
                    taken[nd] = *p;
                    nd += 1;
                    *count += 1;
                    if u64::from(idx) > u64::from(*p) + lookahead as u64 {
                        *overflow = true;
                    }
                }
            }
            if let Some(dst) = insn.dst() {
                let r = dst.index() as usize;
                let (p, count, overflow) = slots[r];
                if overflow {
                    out.push((p, count));
                }
                slots[r] = (idx, 0, false);
            }
            idx += 1;
        }
    }
    for &(p, count, overflow) in &slots {
        if overflow {
            out.push((p, count));
        }
    }
    // Slots finalize in overwrite order, not producer order; emission
    // consumes the queue front-to-back by producer index.
    out.sort_unstable();
    out.into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::ProgramGenerator;
    use crate::ids::{BlockId, FuncId, InsnUid};
    use crate::params::GenParams;
    use crate::program::{BasicBlock, Function, TaggedInsn, Terminator};
    use crate::trace::Trace;
    use critic_isa::{Insn, Opcode, Reg};

    fn generated(seed: u64, len: usize) -> (Program, ExecutionPath) {
        let mut p = GenParams::mobile(seed);
        p.num_functions = 20;
        let program = ProgramGenerator::new(p).generate();
        let path = ExecutionPath::generate(&program, seed ^ 1, len);
        (program, path)
    }

    /// One basic block program executed `reps` times.
    fn looped_program(insns: Vec<TaggedInsn>, reps: usize) -> (Program, ExecutionPath) {
        let program = Program {
            name: "stream-pin".into(),
            suite: crate::suite::Suite::Mobile,
            functions: vec![Function {
                id: FuncId(0),
                name: "f".into(),
                blocks: vec![BlockId(0)],
            }],
            blocks: vec![BasicBlock {
                id: BlockId(0),
                func: FuncId(0),
                insns,
                terminator: Terminator::Exit,
            }],
            mem: crate::params::MemProfile::default(),
            load_hints: Default::default(),
        };
        let path = ExecutionPath {
            blocks: vec![BlockId(0); reps],
            seed: 0,
        };
        (program, path)
    }

    fn drain(
        program: &Program,
        path: &ExecutionPath,
        cfg: StreamConfig,
    ) -> (Vec<DynInsn>, Vec<u32>, Vec<u32>) {
        let mut stream = TraceStream::new(program, path, cfg);
        let mut entries = Vec::new();
        let mut fanout = Vec::new();
        let mut cone = Vec::new();
        while let Some(w) = stream.next_window() {
            assert_eq!(w.base, entries.len(), "windows must be contiguous");
            assert!(w.entries.len() <= cfg.window.max(1));
            entries.extend_from_slice(w.entries);
            fanout.extend_from_slice(w.fanout);
            cone.extend_from_slice(w.cone);
        }
        assert_eq!(entries.len(), stream.total_len());
        assert_eq!(stream.emitted(), stream.total_len());
        (entries, fanout, cone)
    }

    fn assert_stream_matches_materialized(
        program: &Program,
        path: &ExecutionPath,
        cfg: StreamConfig,
    ) {
        let trace = Trace::expand(program, path);
        let (entries, fanout, cone) = drain(program, path, cfg);
        assert_eq!(entries, trace.entries, "streamed entries diverge");
        assert_eq!(fanout, trace.compute_fanout(), "streamed fanout diverges");
        if let Some(w) = cfg.cone_window {
            assert_eq!(
                cone,
                trace.compute_cone_fanout(w),
                "streamed cone diverges at window {w}"
            );
        }
    }

    #[test]
    fn streaming_matches_materialized_on_generated_apps() {
        let (program, path) = generated(11, 6_000);
        for cfg in [
            StreamConfig {
                window: 1,
                lookahead: 128,
                cone_window: Some(128),
            },
            StreamConfig {
                window: 17,
                lookahead: 140,
                cone_window: Some(128),
            },
            StreamConfig {
                window: 4096,
                lookahead: 512,
                cone_window: Some(128),
            },
            StreamConfig {
                window: usize::MAX / 2,
                lookahead: 512,
                cone_window: Some(64),
            },
            StreamConfig {
                window: 256,
                lookahead: 1,
                cone_window: None,
            },
        ] {
            assert_stream_matches_materialized(&program, &path, cfg);
        }
    }

    #[test]
    fn lookahead_at_cone_boundary_is_exact() {
        // Look-ahead exactly equal to the cone window: the tightest legal
        // ring — an entry is emitted on the very cycle its cone closes.
        let (program, path) = generated(12, 4_000);
        for w in [1usize, 2, 64, 128] {
            let cfg = StreamConfig {
                window: 33,
                lookahead: w,
                cone_window: Some(w),
            };
            assert_stream_matches_materialized(&program, &path, cfg);
        }
    }

    #[test]
    fn thumb_fraction_matches_materialized() {
        let (program, path) = generated(13, 3_000);
        let trace = Trace::expand(&program, &path);
        let mut stream = TraceStream::new(&program, &path, StreamConfig::with_window(100));
        while stream.next_window().is_some() {}
        assert_eq!(stream.thumb_fraction(), trace.thumb_fraction());
        assert_eq!(stream.name(), trace.name);
    }

    /// Satellite: pin the windowed cone at the exact window boundary — a
    /// dependence pointing exactly `window` back is *inside* the cone
    /// (`dist <= window`), one further is outside, and the streamed
    /// incremental result matches the batch implementation bit-for-bit
    /// even when the cone straddles two emitted stream windows.
    #[test]
    fn cone_pins_dependence_exactly_window_back() {
        // A self-recurrence at distance exactly `block_len` per iteration:
        // r0 += r0 every 4 instructions.
        let insns = vec![
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R0, &[Reg::R0, Reg::R7]),
                InsnUid(0),
            ),
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R1, &[Reg::R7, Reg::R7]),
                InsnUid(1),
            ),
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R2, &[Reg::R7, Reg::R7]),
                InsnUid(2),
            ),
            TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R3, &[Reg::R7, Reg::R7]),
                InsnUid(3),
            ),
        ];
        let (program, path) = looped_program(insns, 12);
        let trace = Trace::expand(&program, &path);
        // dist(r0 -> r0) == 4. window == 4 keeps it, window == 3 drops it.
        let at_window = trace.compute_cone_fanout(4);
        let below_window = trace.compute_cone_fanout(3);
        assert_eq!(at_window[0], 1, "dep exactly `window` back is in-cone");
        assert_eq!(below_window[0], 0, "dep `window + 1` back is out");
        for w in [3usize, 4, 5] {
            // Stream window 3 vs block length 4: every cone straddles two
            // emitted windows.
            let cfg = StreamConfig {
                window: 3,
                lookahead: w,
                cone_window: Some(w),
            };
            assert_stream_matches_materialized(&program, &path, cfg);
        }
    }

    /// Satellite: the `dist == 128` shift boundary (`cmask << 128` would
    /// overflow; both implementations keep only the direct-dependent bit).
    #[test]
    fn cone_pins_distance_128_shift_boundary() {
        let mut insns = vec![TaggedInsn::new(
            Insn::alu(Opcode::Add, Reg::R0, &[Reg::R7, Reg::R7]),
            InsnUid(0),
        )];
        for i in 1..128 {
            insns.push(TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R1, &[Reg::R1, Reg::R7]),
                InsnUid(i),
            ));
        }
        // Reader of r0 at distance exactly 128.
        insns.push(TaggedInsn::new(
            Insn::alu(Opcode::Add, Reg::R2, &[Reg::R0, Reg::R7]),
            InsnUid(128),
        ));
        let (program, path) = looped_program(insns, 2);
        let trace = Trace::expand(&program, &path);
        assert_eq!(trace.compute_cone_fanout(128)[0], 1);
        assert_eq!(trace.compute_cone_fanout(127)[0], 0);
        for cfg in [
            StreamConfig {
                window: 50,
                lookahead: 128,
                cone_window: Some(128),
            },
            StreamConfig {
                window: 129,
                lookahead: 200,
                cone_window: Some(127),
            },
        ] {
            assert_stream_matches_materialized(&program, &path, cfg);
        }
    }

    /// A register read far beyond the look-ahead exercises the exception
    /// queue: the ring count alone would be short.
    #[test]
    fn consumers_beyond_lookahead_are_exact_via_exceptions() {
        let mut insns = vec![TaggedInsn::new(
            Insn::alu(Opcode::Add, Reg::R0, &[Reg::R7, Reg::R7]),
            InsnUid(0),
        )];
        for i in 1..40 {
            insns.push(TaggedInsn::new(
                Insn::alu(Opcode::Add, Reg::R1, &[Reg::R1, Reg::R7]),
                InsnUid(i),
            ));
        }
        // Two readers of r0 at distances 40 and 41 — far past lookahead 8.
        insns.push(TaggedInsn::new(
            Insn::alu(Opcode::Add, Reg::R2, &[Reg::R0, Reg::R7]),
            InsnUid(40),
        ));
        insns.push(TaggedInsn::new(
            Insn::alu(Opcode::Add, Reg::R3, &[Reg::R0, Reg::R7]),
            InsnUid(41),
        ));
        let (program, path) = looped_program(insns, 3);
        let cfg = StreamConfig {
            window: 5,
            lookahead: 8,
            cone_window: Some(8),
        };
        let stream = TraceStream::new(&program, &path, cfg);
        assert!(
            !stream.exceptions.is_empty(),
            "the far readers must be prepass exceptions"
        );
        drop(stream);
        assert_stream_matches_materialized(&program, &path, cfg);
    }

    #[test]
    fn resident_memory_is_bounded_by_lookahead_not_trace() {
        let (program, path) = generated(14, 12_000);
        let cfg = StreamConfig {
            window: 64,
            lookahead: 256,
            cone_window: Some(128),
        };
        let mut stream = TraceStream::new(&program, &path, cfg);
        let mut peak = stream.resident_bytes();
        while stream.next_window().is_some() {
            peak = peak.max(stream.resident_bytes());
        }
        let trace = Trace::expand(&program, &path);
        let materialized = trace.entries.capacity() * std::mem::size_of::<DynInsn>();
        assert!(
            peak * 4 < materialized,
            "streaming peak {peak} not ≪ materialized {materialized}"
        );
    }
}
