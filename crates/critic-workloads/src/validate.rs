//! Structural validation of programs and traces.
//!
//! Construction through [`crate::ProgramGenerator`] and the compiler passes
//! guarantees well-formedness, but programs and traces also arrive from
//! disk, from campaign journals, and from the fault-injection harness
//! ([`crate::fault`]). Validation turns every malformed shape those sources
//! can produce into a typed error instead of a later index-out-of-bounds
//! panic deep inside the profiler or simulator.
//!
//! Two levels exist for programs:
//!
//! * [`Program::validate`] — **structural**: ids consistent, control flow
//!   in range, uids unique, CDP covers well-formed. Deliberately does NOT
//!   require every instruction to be encodable, because the `CritIC.Ideal`
//!   design point force-converts chains into hypothetical 16-bit forms
//!   (paper Sec. IV-D) that the simulator consumes by width alone.
//! * [`Program::validate_encoding`] — **strict**: additionally requires
//!   every instruction to pass [`critic_isa::encode()`], i.e. the binary
//!   could really be emitted. Real (non-Ideal) toolchain output must pass
//!   this.

use std::collections::HashSet;
use std::fmt;

use critic_isa::{encode, EncodeError, Width, MAX_CDP_CHAIN_LEN};
use serde::{Deserialize, Serialize};

use crate::ids::{BlockId, FuncId, InsnRef, InsnUid};
use crate::program::{Program, Terminator};
use crate::trace::Trace;

/// Longest trace [`Trace::validate`] accepts; anything larger indicates a
/// runaway expansion (a cyclic path or a corrupted journal), not a real
/// recorded window.
pub const MAX_TRACE_LEN: usize = 1 << 26;

/// Why a program failed validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProgramError {
    /// The program has no functions.
    NoFunctions,
    /// A function owns no blocks (it has no entry).
    EmptyFunction(FuncId),
    /// `blocks[i].id != i` — the arena's invariant is broken.
    BlockIdMismatch {
        /// The index in the arena.
        index: usize,
        /// The id stored there.
        found: BlockId,
    },
    /// A function references a block outside the arena.
    FunctionBlockOutOfRange {
        /// The function.
        func: FuncId,
        /// The out-of-range reference.
        block: BlockId,
    },
    /// A terminator targets a block outside the arena.
    DanglingTerminator {
        /// The block whose terminator dangles.
        from: BlockId,
        /// The out-of-range target.
        target: BlockId,
    },
    /// A call targets a function outside the program.
    DanglingCall {
        /// The calling block.
        from: BlockId,
        /// The out-of-range callee.
        callee: FuncId,
    },
    /// Two instructions share a uid, breaking trace attachment.
    DuplicateUid(InsnUid),
    /// A CDP's cover count is outside `1..=9`.
    BadCdpCover {
        /// Where the CDP sits.
        at: InsnRef,
        /// The malformed cover count.
        covered: i32,
    },
    /// A CDP covers more instructions than remain in its block.
    CdpCoverRunsOffBlock {
        /// Where the CDP sits.
        at: InsnRef,
        /// Its cover count.
        covered: usize,
        /// Instructions actually remaining after it.
        remaining: usize,
    },
    /// A CDP covers a 32-bit instruction (covered code must be 16-bit).
    CdpCoversWideInsn {
        /// Where the CDP sits.
        at: InsnRef,
        /// The covered 32-bit instruction.
        wide_at: InsnRef,
    },
    /// Strict check only: an instruction has no bit-level encoding.
    Unencodable {
        /// Where it sits.
        at: InsnRef,
        /// Why it cannot be encoded.
        source: EncodeError,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::NoFunctions => write!(f, "program has no functions"),
            ProgramError::EmptyFunction(func) => write!(f, "function {func} owns no blocks"),
            ProgramError::BlockIdMismatch { index, found } => {
                write!(f, "arena slot {index} holds block {found}")
            }
            ProgramError::FunctionBlockOutOfRange { func, block } => {
                write!(f, "function {func} references out-of-range block {block}")
            }
            ProgramError::DanglingTerminator { from, target } => {
                write!(
                    f,
                    "terminator of {from} targets out-of-range block {target}"
                )
            }
            ProgramError::DanglingCall { from, callee } => {
                write!(f, "call in {from} targets out-of-range function {callee}")
            }
            ProgramError::DuplicateUid(uid) => write!(f, "uid {uid} appears twice"),
            ProgramError::BadCdpCover { at, covered } => {
                write!(
                    f,
                    "cdp at {at} covers {covered} (must be 1..={MAX_CDP_CHAIN_LEN})"
                )
            }
            ProgramError::CdpCoverRunsOffBlock {
                at,
                covered,
                remaining,
            } => {
                write!(
                    f,
                    "cdp at {at} covers {covered} but only {remaining} instructions remain"
                )
            }
            ProgramError::CdpCoversWideInsn { at, wide_at } => {
                write!(f, "cdp at {at} covers 32-bit instruction at {wide_at}")
            }
            ProgramError::Unencodable { at, source } => {
                write!(f, "instruction at {at} has no encoding: {source}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// Why a trace failed validation against its program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceError {
    /// The trace has no entries.
    Empty,
    /// The trace exceeds [`MAX_TRACE_LEN`].
    Oversized {
        /// The runaway length.
        len: usize,
    },
    /// An entry references a block outside the program.
    BlockOutOfRange {
        /// The entry's position in the trace.
        step: usize,
        /// The out-of-range block.
        block: BlockId,
    },
    /// An entry's instruction index exceeds its block's length.
    InsnOutOfRange {
        /// The entry's position in the trace.
        step: usize,
        /// The out-of-range reference.
        at: InsnRef,
    },
    /// An entry's uid disagrees with the static instruction it points at.
    UidMismatch {
        /// The entry's position in the trace.
        step: usize,
        /// The uid recorded in the trace.
        found: InsnUid,
        /// The uid of the static instruction at the entry's position.
        expected: InsnUid,
    },
    /// A dependence points at the entry itself or a later entry.
    ForwardDep {
        /// The entry's position in the trace.
        step: usize,
        /// The non-causal dependence index.
        dep: u32,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace is empty"),
            TraceError::Oversized { len } => {
                write!(f, "trace length {len} exceeds the {MAX_TRACE_LEN} cap")
            }
            TraceError::BlockOutOfRange { step, block } => {
                write!(f, "entry {step} references out-of-range block {block}")
            }
            TraceError::InsnOutOfRange { step, at } => {
                write!(f, "entry {step} references out-of-range instruction {at}")
            }
            TraceError::UidMismatch {
                step,
                found,
                expected,
            } => {
                write!(
                    f,
                    "entry {step} carries uid {found} but the program has {expected}"
                )
            }
            TraceError::ForwardDep { step, dep } => {
                write!(f, "entry {step} depends on non-earlier entry {dep}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl Program {
    /// Checks the program's structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found, in a deterministic
    /// (arena-order) scan.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.functions.is_empty() {
            return Err(ProgramError::NoFunctions);
        }
        let nblocks = self.blocks.len();
        let nfuncs = self.functions.len();
        for function in &self.functions {
            if function.blocks.is_empty() {
                return Err(ProgramError::EmptyFunction(function.id));
            }
            if let Some(&block) = function.blocks.iter().find(|b| b.index() >= nblocks) {
                return Err(ProgramError::FunctionBlockOutOfRange {
                    func: function.id,
                    block,
                });
            }
        }
        let mut seen_uids: HashSet<InsnUid> = HashSet::new();
        for (index, block) in self.blocks.iter().enumerate() {
            if block.id.index() != index {
                return Err(ProgramError::BlockIdMismatch {
                    index,
                    found: block.id,
                });
            }
            let out_of_range = |target: BlockId| target.index() >= nblocks;
            match block.terminator {
                Terminator::Fallthrough(t) | Terminator::Jump(t) if out_of_range(t) => {
                    return Err(ProgramError::DanglingTerminator {
                        from: block.id,
                        target: t,
                    });
                }
                Terminator::Branch {
                    taken, not_taken, ..
                } => {
                    for t in [taken, not_taken] {
                        if out_of_range(t) {
                            return Err(ProgramError::DanglingTerminator {
                                from: block.id,
                                target: t,
                            });
                        }
                    }
                }
                Terminator::Call { callee, return_to } => {
                    if callee.index() >= nfuncs {
                        return Err(ProgramError::DanglingCall {
                            from: block.id,
                            callee,
                        });
                    }
                    if out_of_range(return_to) {
                        return Err(ProgramError::DanglingTerminator {
                            from: block.id,
                            target: return_to,
                        });
                    }
                }
                _ => {}
            }
            for (i, tagged) in block.insns.iter().enumerate() {
                if !seen_uids.insert(tagged.uid) {
                    return Err(ProgramError::DuplicateUid(tagged.uid));
                }
                if let Some(covered) = tagged.insn.cdp_covered_len() {
                    let at = InsnRef::new(block.id, i as u32);
                    if !(1..=MAX_CDP_CHAIN_LEN).contains(&covered) {
                        return Err(ProgramError::BadCdpCover {
                            at,
                            covered: tagged.insn.imm().unwrap_or(0),
                        });
                    }
                    let remaining = block.insns.len() - i - 1;
                    if covered > remaining {
                        return Err(ProgramError::CdpCoverRunsOffBlock {
                            at,
                            covered,
                            remaining,
                        });
                    }
                    for k in 1..=covered {
                        if block.insns[i + k].insn.width() != Width::Thumb16 {
                            return Err(ProgramError::CdpCoversWideInsn {
                                at,
                                wide_at: InsnRef::new(block.id, (i + k) as u32),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks [`Program::validate`] plus bit-level encodability of every
    /// instruction.
    ///
    /// The `CritIC.Ideal` design point intentionally fails this (its
    /// force-converted chains have no real 16-bit encoding) while passing
    /// the structural check — the split is what lets the campaign runner
    /// validate Ideal variants without rejecting them.
    ///
    /// # Errors
    ///
    /// Returns the first structural or [`ProgramError::Unencodable`] error.
    pub fn validate_encoding(&self) -> Result<(), ProgramError> {
        self.validate()?;
        for block in &self.blocks {
            for (i, tagged) in block.insns.iter().enumerate() {
                if let Err(source) = encode(&tagged.insn) {
                    return Err(ProgramError::Unencodable {
                        at: InsnRef::new(block.id, i as u32),
                        source,
                    });
                }
            }
        }
        Ok(())
    }
}

impl Trace {
    /// Checks the trace's invariants against the program it claims to be an
    /// execution of.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] found in stream order.
    pub fn validate(&self, program: &Program) -> Result<(), TraceError> {
        if self.entries.is_empty() {
            return Err(TraceError::Empty);
        }
        if self.entries.len() > MAX_TRACE_LEN {
            return Err(TraceError::Oversized {
                len: self.entries.len(),
            });
        }
        for (step, entry) in self.entries.iter().enumerate() {
            let block =
                program
                    .blocks
                    .get(entry.at.block.index())
                    .ok_or(TraceError::BlockOutOfRange {
                        step,
                        block: entry.at.block,
                    })?;
            let tagged = block
                .insns
                .get(entry.at.index as usize)
                .ok_or(TraceError::InsnOutOfRange { step, at: entry.at })?;
            if tagged.uid != entry.uid {
                return Err(TraceError::UidMismatch {
                    step,
                    found: entry.uid,
                    expected: tagged.uid,
                });
            }
            if let Some(dep) = entry.deps_iter().find(|&d| d as usize >= step) {
                return Err(TraceError::ForwardDep { step, dep });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use critic_isa::{Insn, Opcode, Reg};

    use super::*;
    use crate::generate::ProgramGenerator;
    use crate::params::GenParams;
    use crate::path::ExecutionPath;
    use crate::program::TaggedInsn;

    fn generated() -> Program {
        let mut p = GenParams::mobile(23);
        p.num_functions = 10;
        ProgramGenerator::new(p).generate()
    }

    #[test]
    fn generated_programs_validate() {
        let program = generated();
        program.validate().expect("generator output is structural");
        program
            .validate_encoding()
            .expect("generator output is encodable");
    }

    #[test]
    fn expanded_traces_validate() {
        let program = generated();
        let path = ExecutionPath::generate(&program, 3, 5_000);
        let trace = Trace::expand(&program, &path);
        trace
            .validate(&program)
            .expect("expander output is well-formed");
    }

    #[test]
    fn empty_trace_is_rejected() {
        let program = generated();
        let trace = Trace {
            name: "empty".into(),
            entries: Vec::new(),
        };
        assert_eq!(trace.validate(&program), Err(TraceError::Empty));
    }

    #[test]
    fn dangling_terminator_is_caught() {
        let mut program = generated();
        let bogus = BlockId(program.blocks.len() as u32 + 17);
        program.blocks[0].terminator = Terminator::Jump(bogus);
        assert!(matches!(
            program.validate(),
            Err(ProgramError::DanglingTerminator { target, .. }) if target == bogus
        ));
    }

    #[test]
    fn duplicate_uid_is_caught() {
        let mut program = generated();
        let block = program
            .blocks
            .iter()
            .position(|b| b.insns.len() >= 2)
            .expect("some block has two instructions");
        let uid = program.blocks[block].insns[0].uid;
        program.blocks[block].insns[1].uid = uid;
        assert_eq!(program.validate(), Err(ProgramError::DuplicateUid(uid)));
    }

    #[test]
    fn overlong_cdp_cover_is_caught() {
        let mut program = generated();
        program.blocks[0]
            .insns
            .insert(0, TaggedInsn::new(Insn::cdp_raw(12), InsnUid(9_999_990)));
        assert!(matches!(
            program.validate(),
            Err(ProgramError::BadCdpCover { covered: 12, .. })
        ));
    }

    #[test]
    fn cdp_off_the_block_end_is_caught() {
        let mut program = generated();
        let block = &mut program.blocks[0];
        block
            .insns
            .push(TaggedInsn::new(Insn::cdp_raw(4), InsnUid(9_999_991)));
        assert!(matches!(
            program.validate(),
            Err(ProgramError::CdpCoverRunsOffBlock {
                covered: 4,
                remaining: 0,
                ..
            })
        ));
    }

    #[test]
    fn cdp_covering_wide_insn_is_caught() {
        let mut program = generated();
        let block = program
            .blocks
            .iter()
            .position(|b| !b.insns.is_empty() && b.insns[0].insn.width() == Width::Arm32)
            .expect("some block starts with a 32-bit instruction");
        program.blocks[block]
            .insns
            .insert(0, TaggedInsn::new(Insn::cdp_raw(1), InsnUid(9_999_992)));
        assert!(matches!(
            program.validate(),
            Err(ProgramError::CdpCoversWideInsn { .. })
        ));
    }

    #[test]
    fn strict_check_rejects_unencodable_imm() {
        let mut program = generated();
        program.blocks[0].insns.insert(
            0,
            TaggedInsn::new(
                Insn::alu_imm(Opcode::Add, Reg::R0, Reg::R1, 100_000),
                InsnUid(9_999_993),
            ),
        );
        program.validate().expect("structurally fine");
        assert!(matches!(
            program.validate_encoding(),
            Err(ProgramError::Unencodable {
                source: EncodeError::ImmOutOfRange(100_000),
                ..
            })
        ));
    }

    #[test]
    fn trace_mismatch_against_wrong_program_is_caught() {
        let program = generated();
        let path = ExecutionPath::generate(&program, 3, 2_000);
        let trace = Trace::expand(&program, &path);
        // Truncate the program: the trace now refers past the arena.
        let mut truncated = program.clone();
        truncated.blocks.truncate(1);
        truncated.functions.truncate(1);
        truncated.functions[0].blocks.retain(|b| b.index() < 1);
        if truncated.functions[0].blocks.is_empty() {
            truncated.functions[0].blocks.push(BlockId(0));
        }
        assert!(trace.validate(&truncated).is_err());
    }

    #[test]
    fn forward_dep_is_caught() {
        let program = generated();
        let path = ExecutionPath::generate(&program, 3, 2_000);
        let mut trace = Trace::expand(&program, &path);
        trace.entries[0].deps[0] = 5;
        assert_eq!(
            trace.validate(&program),
            Err(TraceError::ForwardDep { step: 0, dep: 5 })
        );
    }

    #[test]
    fn errors_render_useful_messages() {
        let message = ProgramError::DanglingTerminator {
            from: BlockId(3),
            target: BlockId(99),
        }
        .to_string();
        assert!(message.contains("bb3") && message.contains("bb99"));
        let message = TraceError::UidMismatch {
            step: 7,
            found: InsnUid(1),
            expected: InsnUid(2),
        }
        .to_string();
        assert!(message.contains('7') && message.contains("i1") && message.contains("i2"));
    }
}
