//! Integration drills for the chaos harness: whole-invocation
//! reproducibility, hand-crafted schedule probes, and — behind the
//! `chaos-planted-bug` feature — proof that the minimizer isolates a real
//! planted supervision bug down to the single responsible fault.
//!
//! Run the feature-gated half with:
//!
//! ```text
//! cargo test -p critic-bench --features chaos-planted-bug --test chaos
//! ```

#[cfg(feature = "chaos-planted-bug")]
use critic_bench::chaos::minimize_schedule;
use critic_bench::chaos::{probe_schedule, run_chaos, ChaosConfig, ScheduleEntry};
use critic_workloads::{SysFault, SysFaultSpec};

fn tiny_config(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        cells: 4,
        smoke: true,
        minimize: false,
    }
}

/// The schedule the planted-bug drill runs: two journal decoys around the
/// store-write fault the planted bug keys on.
fn planted_bug_schedule() -> Vec<ScheduleEntry> {
    vec![
        ScheduleEntry::Sys(SysFaultSpec {
            fault: SysFault::JournalFsync,
            at: 0,
        }),
        ScheduleEntry::Sys(SysFaultSpec {
            fault: SysFault::StoreWrite,
            at: 1,
        }),
        ScheduleEntry::Sys(SysFaultSpec {
            fault: SysFault::JournalWrite,
            at: 2,
        }),
    ]
}

/// The whole invocation — schedule, per-cell records, violations — is
/// bit-reproducible from the seed.
#[test]
fn chaos_runs_are_bit_reproducible_per_seed() {
    let first = run_chaos(&tiny_config(5)).expect("chaos runs");
    let second = run_chaos(&tiny_config(5)).expect("chaos runs");
    assert_eq!(first, second);
    assert!(
        first.ok(),
        "seed 5 must pass on a healthy runner: {:?}",
        first.violations
    );
}

/// Without the planted bug, the drill schedule is absorbed: one attempt
/// fails on the store-write, the retry heals, the journal decoys are
/// resume-tolerated, and every invariant holds.
#[cfg(not(feature = "chaos-planted-bug"))]
#[test]
fn planted_bug_schedule_is_harmless_on_a_healthy_runner() {
    let violations = probe_schedule(&tiny_config(0), &planted_bug_schedule()).expect("probe runs");
    assert!(violations.is_empty(), "{violations:?}");
}

/// With the planted bug compiled in (a worker silently drops a finished
/// record after a store-write fault), the accounting invariant breaks —
/// and ddmin isolates exactly the store-write entry out of the three.
#[cfg(feature = "chaos-planted-bug")]
#[test]
fn minimizer_isolates_the_planted_supervision_bug() {
    let config = tiny_config(0);
    let schedule = planted_bug_schedule();
    let violations = probe_schedule(&config, &schedule).expect("probe runs");
    assert!(
        violations.iter().any(|v| v.invariant == "accounting"),
        "the planted record drop must break accounting: {violations:?}"
    );

    let minimal = minimize_schedule(&schedule, |subset| {
        probe_schedule(&config, subset)
            .map(|vs| vs.iter().any(|v| v.invariant == "accounting"))
            .unwrap_or(false)
    });
    assert_eq!(
        minimal,
        vec![ScheduleEntry::Sys(SysFaultSpec {
            fault: SysFault::StoreWrite,
            at: 1,
        })],
        "ddmin must isolate the single responsible fault"
    );
}
