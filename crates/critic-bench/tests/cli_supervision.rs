//! End-to-end CLI drill for the acceptance path: a campaign run with
//! journal/store systemic faults and a tripped breaker completes with
//! every cell accounted, exits through the failed-cells code, and the
//! degrade/trip/shed events are visible in `critic stats --json`.

use std::process::Command;

use critic_workloads::Suite;

fn critic() -> Command {
    Command::new(env!("CARGO_BIN_EXE_critic"))
}

/// Pulls the integer after `"key":` out of the stats JSON. The
/// supervision counter names are unique within the report, so plain text
/// search is unambiguous.
fn field_u64(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = json
        .find(&needle)
        .unwrap_or_else(|| panic!("`{key}` missing from stats JSON:\n{json}"));
    let rest = json[at + needle.len()..].trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("`{key}` is not a number in stats JSON:\n{json}"))
}

#[test]
fn supervised_campaign_under_faults_is_accounted_and_visible_in_stats() {
    let victim = Suite::Mobile.apps()[0].name.clone();
    let journal = std::env::temp_dir().join(format!(
        "critic_cli_supervision_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal);

    // 2 apps x 4 schemes; every scheme of the first app is sabotaged with
    // a data fault, a journal-write fault eats the first journal line, and
    // a store-read fault fails one attempt mid-grid.
    let mut cmd = critic();
    cmd.args([
        "campaign",
        "--apps",
        "2",
        "--schemes",
        "critic,opp16,hoist,ideal",
        "--trace-len",
        "2500",
        "--workers",
        "1",
        "--retries",
        "1",
        "--stats",
        "--breaker",
        "2",
        "--degrade",
        "--sys",
        "journal-write@0",
        "--sys",
        "store-read@2",
    ]);
    cmd.args(["--journal", journal.to_str().expect("utf-8 temp path")]);
    for scheme in ["critic", "opp16", "hoist", "ideal"] {
        cmd.args([
            "--inject",
            &format!("{victim}:{scheme}:dangling-terminator"),
        ]);
    }
    let run = cmd.output().expect("campaign invocation runs");
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert_eq!(
        run.status.code(),
        Some(6),
        "terminal cell failures exit through code 6\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&run.stderr)
    );
    assert!(
        stdout.contains("circuit breaker open"),
        "shed reason is printed, not silently dropped:\n{stdout}"
    );

    let stats = critic()
        .args([
            "stats",
            "--journal",
            journal.to_str().expect("utf-8 temp path"),
            "--json",
        ])
        .output()
        .expect("stats invocation runs");
    let json = String::from_utf8_lossy(&stats.stdout);
    assert!(
        stats.status.success(),
        "stats must roll up a fault-scarred journal\nstdout:\n{json}\nstderr:\n{}",
        String::from_utf8_lossy(&stats.stderr)
    );

    // The journal-write fault ate exactly one cell line; the other seven
    // cells and the telemetry trailer survived. Of the victim's four
    // cells: two fail and trip the breaker, the third runs (and fails) as
    // the half-open probe, the fourth sheds.
    assert_eq!(field_u64(&json, "cells"), 7, "{json}");
    assert_eq!(field_u64(&json, "ok"), 4, "{json}");
    assert_eq!(field_u64(&json, "failed"), 3, "{json}");

    // Both systemic faults, the breaker trip, and its shed are visible.
    assert_eq!(field_u64(&json, "sys_faults"), 2, "{json}");
    assert_eq!(field_u64(&json, "trips"), 1, "{json}");
    assert_eq!(field_u64(&json, "sheds"), 1, "{json}");
    assert!(field_u64(&json, "degrades") >= 2, "{json}");

    let _ = std::fs::remove_file(&journal);
}
