//! End-to-end drill of the `critic drill` subcommand: a handful of seeded
//! kill points must actually crash and restart child campaigns, hold the
//! durable-warm and no-lost-ack invariants, and serialise a report.

use std::process::Command;

fn critic() -> Command {
    Command::new(env!("CARGO_BIN_EXE_critic"))
}

/// Pulls the integer after `"key":` out of the report JSON.
fn field_u64(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = json
        .find(&needle)
        .unwrap_or_else(|| panic!("`{key}` missing from drill JSON:\n{json}"));
    let rest = json[at + needle.len()..].trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("`{key}` is not a number in drill JSON:\n{json}"))
}

#[test]
fn drill_smoke_crashes_restarts_and_holds_the_durability_invariants() {
    let out_path = std::env::temp_dir().join(format!("critic_drill_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&out_path);

    let mut cmd = critic();
    cmd.args(["drill", "--seed", "3", "--points", "6", "--smoke"]);
    cmd.arg("-o").arg(&out_path);
    let run = cmd.output().expect("drill invocation runs");
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert_eq!(
        run.status.code(),
        Some(0),
        "a healthy runner passes the drill\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&run.stderr)
    );
    assert!(
        stdout.contains("durable-warm and no-lost-ack held"),
        "{stdout}"
    );

    let json = std::fs::read_to_string(&out_path).expect("report written");
    // Points 0..6 sweep all six op classes at occurrence 0 — every child
    // must die at its planted crash, and every verification pass must be
    // served from the surviving disk store.
    assert_eq!(field_u64(&json, "crashed"), 6, "{json}");
    assert_eq!(field_u64(&json, "clean"), 0, "{json}");
    assert!(field_u64(&json, "disk_hits") > 0, "{json}");
    assert!(json.contains("\"violations\": []"), "{json}");
    let _ = std::fs::remove_file(&out_path);
}
