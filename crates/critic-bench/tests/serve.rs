//! End-to-end service tests: an in-process server driven by the real
//! loadgen client over a loopback socket, the wire protocol spoken by
//! hand, and — behind the real binary — a smoke soak with SIGKILL,
//! restart, and the no-lost-ack audit.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use critic_bench::loadgen::{run_loadgen, LoadgenConfig};
use critic_bench::serve::{self, Reply};
use critic_bench::soak::{run_sharded_soak, run_soak, ShardedSoakConfig, SoakConfig};
use critic_core::service::{CampaignService, ServiceConfig};
use critic_obs::Telemetry;

fn tiny_service(queue_capacity: usize) -> CampaignService {
    let mut config = ServiceConfig::new(400);
    config.workers = 2;
    config.queue_capacity = queue_capacity;
    config.degrade_watermarks = [2, 4, 8];
    config.admission_rate = 0;
    config.breaker_threshold = 0;
    config.telemetry = Telemetry::off();
    CampaignService::open(config).expect("in-memory service opens")
}

/// Binds an ephemeral loopback port, serves `service` on a background
/// thread, and hands the address plus the switch that stops the accept
/// loop to the test body.
fn with_server(
    service: CampaignService,
    body: impl FnOnce(&str),
) -> (CampaignService, serve::ServeSummary) {
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let service = Arc::new(service);
    let thread_service = Arc::clone(&service);
    let thread_shutdown = Arc::clone(&shutdown);
    let server = std::thread::spawn(move || {
        serve::serve_on(
            listener,
            &thread_service,
            &thread_shutdown,
            &serve::ShardContext::default(),
        )
    });
    body(&addr);
    shutdown.store(true, Ordering::SeqCst);
    let summary = server.join().expect("server thread panicked");
    let service = Arc::try_unwrap(service)
        .unwrap_or_else(|_| panic!("server thread still holds the service"));
    (service, summary)
}

#[test]
fn loadgen_round_trips_through_a_live_server() {
    let (service, summary) = with_server(tiny_service(256), |addr| {
        let mut config = LoadgenConfig::new(addr);
        config.clients = 3;
        config.requests_per_client = 4;
        config.rate = 64.0;
        config.seed = 11;
        let outcome = run_loadgen(&config).expect("loadgen runs");
        assert_eq!(outcome.report.done, 12, "every submission answered");
        assert_eq!(outcome.report.unanswered, 0);
        assert_eq!(outcome.report.connect_failures, 0);
        assert_eq!(outcome.acked.len(), 12, "one acked cell per done reply");
        assert!(outcome.report.p50_ms > 0.0);
        assert!(outcome.report.p99_ms >= outcome.report.p50_ms);
    });
    assert_eq!(summary.connections, 3);
    assert_eq!(summary.accepted, 12);
    assert_eq!(summary.responded, 12);
    assert_eq!(service.responded(), 12);
}

#[test]
fn wire_protocol_answers_ping_stats_and_rejects_after_shutdown() {
    let (_service, summary) = with_server(tiny_service(256), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut line = String::new();

        stream.write_all(b"{\"ping\":true}\n").expect("write ping");
        reader.read_line(&mut line).expect("read pong");
        assert!(
            matches!(serve::parse_reply(&line), Some(Reply::Pong)),
            "expected pong, got {line:?}"
        );

        line.clear();
        stream
            .write_all(b"{\"stats\":true}\n")
            .expect("write stats");
        reader.read_line(&mut line).expect("read stats");
        let Some(Reply::Stats(stats)) = serve::parse_reply(&line) else {
            panic!("expected stats_reply, got {line:?}");
        };
        assert!(!stats.draining);
        assert_eq!(stats.accepted, 0);

        line.clear();
        stream.write_all(b"not json at all\n").expect("write junk");
        reader.read_line(&mut line).expect("read error");
        assert!(
            matches!(serve::parse_reply(&line), Some(Reply::Error(_))),
            "expected error reply, got {line:?}"
        );

        line.clear();
        stream
            .write_all(b"{\"shutdown\":true}\n")
            .expect("write shutdown");
        reader.read_line(&mut line).expect("read draining");
        assert!(
            matches!(serve::parse_reply(&line), Some(Reply::Draining)),
            "expected draining ack, got {line:?}"
        );
    });
    assert_eq!(summary.connections, 1);
    assert_eq!(summary.accepted, 0);
}

#[test]
fn overloaded_server_rejects_with_retry_hints_instead_of_queueing() {
    // One worker, a two-deep queue, and a burst far beyond both: the
    // server must shed the excess synchronously with retry hints, not
    // grow the queue.
    let mut config = ServiceConfig::new(400);
    config.workers = 1;
    config.queue_capacity = 2;
    config.degrade_watermarks = [1, 2, 0];
    config.admission_rate = 0;
    config.client_window = 0;
    config.breaker_threshold = 0;
    config.telemetry = Telemetry::off();
    let service = CampaignService::open(config).expect("service opens");

    let (service, _summary) = with_server(service, |addr| {
        let mut config = LoadgenConfig::new(addr);
        config.clients = 4;
        config.requests_per_client = 8;
        config.rate = 1_000.0; // effectively "all at once"
        config.seed = 5;
        let outcome = run_loadgen(&config).expect("loadgen runs");
        assert_eq!(outcome.report.unanswered, 0, "every request got a verdict");
        assert!(
            outcome.report.rejected > 0,
            "a 32-deep burst into a 2-deep queue must reject"
        );
        assert!(
            outcome.report.mean_retry_after_ms > 0.0,
            "rejects must carry retry hints"
        );
        assert_eq!(
            outcome.report.done + outcome.report.rejected,
            outcome.report.requests
        );
    });
    assert!(service.queue_depth() == 0 && service.in_flight() == 0);
}

#[test]
fn shard_wire_verbs_answer_heartbeat_fetch_and_index() {
    let (_service, _summary) = with_server(tiny_service(256), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut line = String::new();

        stream
            .write_all(b"{\"heartbeat\":true}\n")
            .expect("write heartbeat");
        reader.read_line(&mut line).expect("read heartbeat reply");
        let Some(Reply::Heartbeat(beat)) = serve::parse_reply(&line) else {
            panic!("expected heartbeat_reply, got {line:?}");
        };
        assert_eq!(beat.shard, None, "no --shard flag, no shard id");
        assert!(!beat.draining);

        // No persistent store behind this service: the index is empty and
        // any fetch answers found:false — a rebuilding peer just moves on.
        line.clear();
        stream
            .write_all(b"{\"list_artifacts\":true}\n")
            .expect("write list");
        reader.read_line(&mut line).expect("read index");
        let Some(Reply::ArtifactIndex(index)) = serve::parse_reply(&line) else {
            panic!("expected artifact_index, got {line:?}");
        };
        assert!(index.is_empty());

        line.clear();
        stream
            .write_all(b"{\"fetch_artifact\":{\"class\":\"profile\",\"key\":42}}\n")
            .expect("write fetch");
        reader.read_line(&mut line).expect("read artifact");
        let Some(Reply::Artifact(body)) = serve::parse_reply(&line) else {
            panic!("expected artifact reply, got {line:?}");
        };
        assert!(!body.found);
        assert!(body.payload.is_none());
    });
}

#[test]
fn peer_rebuild_pulls_artifacts_crc_checked() {
    let scratch = std::env::temp_dir().join(format!("critic_rebuild_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Server A: disk-backed, runs one cell so its store holds a profile
    // and a baseline.
    let mut config = ServiceConfig::new(400);
    config.workers = 1;
    config.queue_capacity = 16;
    config.admission_rate = 0;
    config.breaker_threshold = 0;
    config.telemetry = Telemetry::off();
    config.store_dir = Some(scratch.join("a"));
    let service_a = CampaignService::open(config).expect("service A opens");
    let (_service_a, _summary) = with_server(service_a, |addr| {
        let mut config = LoadgenConfig::new(addr);
        config.clients = 1;
        config.requests_per_client = 2;
        config.rate = 64.0;
        let outcome = run_loadgen(&config).expect("loadgen runs");
        assert_eq!(outcome.report.done, 2, "seed cells must complete");

        // Server B: fresh disk in the same fleet, rebuilds from A.
        let mut config = ServiceConfig::new(400);
        config.telemetry = Telemetry::off();
        config.store_dir = Some(scratch.join("b"));
        let service_b = CampaignService::open(config).expect("service B opens");
        let fetched = std::sync::atomic::AtomicU64::new(0);
        let report = serve::rebuild_from_peers(service_b.store(), &[addr.to_string()], &fetched);
        assert_eq!(report.peers_consulted, 1);
        assert!(report.fetched > 0, "B must pull A's artifacts");
        assert_eq!(report.rejected, 0, "clean payloads never reject");
        assert_eq!(fetched.load(Ordering::SeqCst), report.fetched);

        // A second rebuild is a no-op: everything is already local.
        let again = serve::rebuild_from_peers(service_b.store(), &[addr.to_string()], &fetched);
        assert_eq!(again.fetched, 0, "rebuild is idempotent");
    });
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn loadgen_retries_rejected_cells_with_hints() {
    // Same shedding setup as the overload test, but with retries armed:
    // rejected cells come back and the hinted counter proves the client
    // used the server's retry_after_ms rather than blind backoff.
    let mut config = ServiceConfig::new(400);
    config.workers = 1;
    config.queue_capacity = 2;
    config.degrade_watermarks = [1, 2, 0];
    config.admission_rate = 0;
    config.client_window = 0;
    config.breaker_threshold = 0;
    config.telemetry = Telemetry::off();
    let service = CampaignService::open(config).expect("service opens");

    let (_service, _summary) = with_server(service, |addr| {
        let mut config = LoadgenConfig::new(addr);
        config.clients = 4;
        config.requests_per_client = 8;
        config.rate = 1_000.0;
        config.seed = 5;
        config.retries = 3;
        let outcome = run_loadgen(&config).expect("loadgen runs");
        assert_eq!(outcome.report.unanswered, 0, "every request got a verdict");
        assert!(
            outcome.report.rejected > 0,
            "the burst must shed before retries drain it"
        );
        assert!(
            outcome.report.hinted_retries > 0,
            "server hints must drive the retries: {:?}",
            outcome.report
        );
        // Retries re-submit, so done + finally-rejected can exceed the
        // original request count; completion of the bulk is the signal.
        assert!(
            outcome.report.done > 0,
            "retries must convert some rejects into completions"
        );
    });
}

#[test]
fn smoke_soak_survives_sigkill_restart_and_overload() {
    let config = SoakConfig {
        seconds: 4,
        clients: 3,
        rate: 3.0,
        kill: true,
        sys: vec!["journal-write@3".to_string()],
        smoke: true,
        seed: 9,
        binary: Some(std::path::PathBuf::from(env!("CARGO_BIN_EXE_critic"))),
    };
    let report = run_soak(&config).expect("soak orchestration runs");
    assert!(
        report.ok(),
        "soak invariants broken: {:?}",
        report.violations
    );
    assert!(report.killed);
    assert!(report.acked_before_kill > 0);
    assert!(report.disk_hits_after_restart > 0);
    assert_eq!(report.server_exit_code, Some(9));
    assert!(report.phase_overload.rejected > 0);
}

#[test]
fn sharded_smoke_soak_kills_a_shard_and_rejoins_disk_warm() {
    let config = ShardedSoakConfig {
        seconds: 6,
        clients: 4,
        rate: 4.0,
        shards: 3,
        smoke: true,
        seed: 7,
        binary: Some(std::path::PathBuf::from(env!("CARGO_BIN_EXE_critic"))),
        max_p99_ms: None,
    };
    let report = run_sharded_soak(&config).expect("sharded soak orchestration runs");
    assert!(
        report.ok(),
        "sharded soak invariants broken: {:?}",
        report.violations
    );
    assert!(report.killed_shard.is_some());
    assert!(report.acked_before_kill > 0);
    assert!(
        report.fetched_artifacts > 0,
        "the restarted shard must rejoin warm via peer fetch"
    );
    assert_eq!(report.resimulated, 0, "nothing acked pre-kill re-simulates");
    assert_eq!(
        report.oracle_mismatches, 0,
        "sharding never changes results"
    );
    assert!(report.oracle_compared > 0);
    assert_eq!(report.router_exit_code, Some(9));
}
