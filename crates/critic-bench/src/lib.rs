//! Shared scaffolding for the benchmark harness: scaled-down experiment
//! parameters used by both the Criterion benches and smoke tests, the
//! perf-regression harness behind `critic bench` (see [`perf`]), and the
//! chaos harness behind `critic chaos` (see [`chaos`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod drill;
pub mod perf;

/// Trace length used by Criterion benches (small enough for statistics).
pub const BENCH_TRACE_LEN: usize = 60_000;

/// Apps per suite used by Criterion benches.
pub const BENCH_APPS: usize = 2;
