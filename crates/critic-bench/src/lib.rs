//! Shared scaffolding for the benchmark harness: scaled-down experiment
//! parameters used by both the Criterion benches and smoke tests, the
//! perf-regression harness behind `critic bench` (see [`perf`]), the
//! chaos harness behind `critic chaos` (see [`chaos`]), and the service
//! stack behind `critic serve` / `loadgen` / `soak` (see [`serve`],
//! [`loadgen`], [`soak`]) plus the sharded front tier behind
//! `critic router` (see [`router`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod drill;
pub mod loadgen;
pub mod perf;
pub mod router;
pub mod serve;
pub mod soak;

/// Trace length used by Criterion benches (small enough for statistics).
pub const BENCH_TRACE_LEN: usize = 60_000;

/// Apps per suite used by Criterion benches.
pub const BENCH_APPS: usize = 2;
