//! Shared scaffolding for the benchmark harness: scaled-down experiment
//! parameters used by both the Criterion benches and smoke tests, plus the
//! perf-regression harness behind `critic bench` (see [`perf`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

/// Trace length used by Criterion benches (small enough for statistics).
pub const BENCH_TRACE_LEN: usize = 60_000;

/// Apps per suite used by Criterion benches.
pub const BENCH_APPS: usize = 2;
