//! Shared scaffolding for the benchmark harness: scaled-down experiment
//! parameters used by both the Criterion benches and smoke tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Trace length used by Criterion benches (small enough for statistics).
pub const BENCH_TRACE_LEN: usize = 60_000;

/// Apps per suite used by Criterion benches.
pub const BENCH_APPS: usize = 2;
