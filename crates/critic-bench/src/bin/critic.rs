//! `critic` — the end-to-end driver of the paper's Fig. 7 framework:
//! generate (or pick) a workload, profile it, compile it, and report.
//!
//! ```text
//! critic list                          # Table II workloads
//! critic profile <app> [-o FILE]      # run the offline profiler
//! critic compile <app> [--scheme S]   # apply a pass and diff the binary
//! critic run <app> [--scheme S]       # simulate baseline vs scheme
//! critic disasm <app> [function]      # dump the generated binary
//! ```
//!
//! Schemes: critic (default), hoist, ideal, branch-switch, opp16, compress,
//! opp16+critic.

use critic_core::design::DesignPoint;
use critic_core::runner::Workbench;
use critic_profiler::{save_profile, Profiler, ProfilerConfig};
use critic_workloads::suite::Suite;
use critic_workloads::AppSpec;

const TRACE_LEN: usize = 120_000;

fn find_app(name: &str) -> Option<AppSpec> {
    Suite::ALL
        .iter()
        .flat_map(|s| s.apps())
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

fn scheme_point(scheme: &str) -> Option<DesignPoint> {
    Some(match scheme {
        "critic" => DesignPoint::critic(),
        "hoist" => DesignPoint::hoist(),
        "ideal" => DesignPoint::critic_ideal(),
        "branch-switch" => DesignPoint::critic_branch_switch(),
        "opp16" => DesignPoint::opp16(),
        "compress" => DesignPoint::compress(),
        "opp16+critic" => DesignPoint::opp16_plus_critic(),
        _ => return None,
    })
}

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || {
        eprintln!("usage: critic <list|profile|compile|run|disasm> [app] [options]");
        std::process::exit(2);
    };
    let Some(command) = args.first() else { return usage() };
    match command.as_str() {
        "list" => {
            for suite in Suite::ALL {
                for app in suite.apps() {
                    println!("{:12} {:10} {}", app.name, suite.label(), app.domain);
                }
            }
        }
        "profile" => {
            let Some(app) = args.get(1).and_then(|n| find_app(n)) else { return usage() };
            let bench = Workbench::new(&app, TRACE_LEN);
            let profile = Profiler::new(ProfilerConfig::default())
                .build_profile(&bench.program, bench.baseline_trace());
            println!(
                "{}: {} chains selected, {:.1}% dynamic coverage, {:.1}% convertible",
                app.name,
                profile.chains.len(),
                profile.dynamic_coverage * 100.0,
                profile.stats.convertible_frac * 100.0
            );
            if let Some(path) = arg_after(&args, "-o") {
                save_profile(&profile, std::path::Path::new(&path)).expect("profile written");
                println!("wrote {path}");
            }
        }
        "compile" | "run" => {
            let Some(app) = args.get(1).and_then(|n| find_app(n)) else { return usage() };
            let scheme = arg_after(&args, "--scheme").unwrap_or_else(|| "critic".into());
            let Some(point) = scheme_point(&scheme) else { return usage() };
            let mut bench = Workbench::new(&app, TRACE_LEN);
            let base = bench.run(&DesignPoint::baseline());
            let run = bench.run(&point);
            println!(
                "{} [{}]: applied {} chains, {} insns to 16-bit, {} skipped (legality)",
                app.name,
                point.label(),
                run.pass.chains_applied,
                run.pass.insns_converted,
                run.pass.chains_skipped_legality
            );
            if command == "run" {
                println!(
                    "cycles {} -> {} ({:+.2}%), IPC {:.2} -> {:.2}, 16-bit dyn {:.1}%",
                    base.sim.cycles,
                    run.sim.cycles,
                    (run.sim.speedup_over(&base.sim) - 1.0) * 100.0,
                    base.sim.ipc(),
                    run.sim.ipc(),
                    run.thumb_dyn_frac * 100.0
                );
                println!(
                    "energy: CPU {:+.2}%, system {:+.2}%",
                    run.energy.cpu_saving(&base.energy) * 100.0,
                    run.energy.system_saving(&base.energy) * 100.0
                );
            }
        }
        "disasm" => {
            let Some(app) = args.get(1).and_then(|n| find_app(n)) else { return usage() };
            let program = app.generate_program();
            match args.get(2) {
                Some(fname) => {
                    let func = program
                        .functions
                        .iter()
                        .find(|f| f.name == *fname)
                        .unwrap_or_else(|| {
                            eprintln!("no function `{fname}`");
                            std::process::exit(2);
                        });
                    print!("{}", program.disassemble_function(func.id));
                }
                None => print!("{}", program.disassemble()),
            }
        }
        _ => usage(),
    }
}
